"""Main-memory model: capacity accounting plus a shared memory bus.

Two concerns, matching the paper's "memory bandwidth bottleneck" framing:

* **Capacity** — scale-up MapReduce holds the whole input plus the
  intermediate container in RAM (384 GB on the testbed).  Allocations are
  tracked and overcommit raises, because a run that would have swapped is
  a different experiment, not a slower one.
* **Bandwidth** — merge-phase key scans stream through the memory bus.
  Each scanning thread is capped at a per-thread rate (calibrated in the
  cost model) while the bus enforces an aggregate ceiling; this is what
  produces the step-down utilization curve of iterative 2-way merging
  (fewer threads each round => lower aggregate scan rate).
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.simhw.events import SimEvent, Simulator
from repro.simhw.resources import BandwidthResource


class MemoryBus:
    """RAM with a fluid-flow bus and strict capacity accounting."""

    def __init__(
        self,
        sim: Simulator,
        capacity_bytes: float,
        bus_bw: float,
        name: str = "mem",
    ) -> None:
        if capacity_bytes <= 0:
            raise SimulationError(f"{name}: capacity must be positive")
        self.sim = sim
        self.name = name
        self.capacity_bytes = float(capacity_bytes)
        self._chan = BandwidthResource(sim, bus_bw, name=f"{name}.bus")
        self._allocated = 0.0
        self.peak_allocated = 0.0

    # -- capacity ---------------------------------------------------------

    @property
    def allocated(self) -> float:
        return self._allocated

    @property
    def available(self) -> float:
        return self.capacity_bytes - self._allocated

    def allocate(self, nbytes: float) -> None:
        """Claim ``nbytes`` of RAM; raises on overcommit."""
        if nbytes < 0:
            raise SimulationError(f"{self.name}: negative allocation")
        if self._allocated + nbytes > self.capacity_bytes:
            raise SimulationError(
                f"{self.name}: out of memory — requested {nbytes:.3e} B with "
                f"{self.available:.3e} B free of {self.capacity_bytes:.3e} B"
            )
        self._allocated += nbytes
        self.peak_allocated = max(self.peak_allocated, self._allocated)

    def free(self, nbytes: float) -> None:
        """Return ``nbytes`` of RAM."""
        if nbytes < 0 or nbytes > self._allocated + 1e-6:
            raise SimulationError(
                f"{self.name}: freeing {nbytes:.3e} B but only "
                f"{self._allocated:.3e} B allocated"
            )
        self._allocated = max(0.0, self._allocated - nbytes)

    # -- bandwidth ---------------------------------------------------------

    def scan(self, nbytes: float, per_thread_bw: float) -> SimEvent:
        """Stream ``nbytes`` through the bus at most ``per_thread_bw`` B/s."""
        if per_thread_bw <= 0:
            raise SimulationError(f"{self.name}: per-thread bandwidth must be positive")
        return self._chan.transfer(nbytes, cap=per_thread_bw, tag="scan")

    @property
    def bus_utilization(self) -> float:
        return self._chan.utilization

    @property
    def active_scans(self) -> int:
        return self._chan.active_flows
