"""collectl-style CPU utilization sampler.

The paper's figures plot *total CPU utilization* split into user, sys and
IO-wait classes, sampled by the ``collectl`` daemon at fixed intervals.
:class:`UtilizationMonitor` reproduces that: it samples a
:class:`~repro.simhw.cpu.CpuBank` (and optionally a disk) every
``interval`` simulated seconds and accumulates a trace.

The paper notes (footnote 3) that collectl's sampling interval was too
coarse to catch short 100%-utilization map bursts; the monitor reproduces
that artifact faithfully — it takes instantaneous point samples rather
than interval averages, so sub-interval bursts can be missed, exactly as
on the real testbed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import SimulationError
from repro.simhw.cpu import CpuBank, CpuClass
from repro.simhw.events import SimEvent, Simulator


@dataclass(frozen=True)
class UtilizationSample:
    """One collectl sample: percentages in [0, 100]."""

    time: float
    user_pct: float
    sys_pct: float
    iowait_pct: float
    disk_active: int = 0
    disk_write_active: int = 0

    @property
    def total_pct(self) -> float:
        """Total utilization as plotted in the paper (user+sys+iowait)."""
        return self.user_pct + self.sys_pct + self.iowait_pct

    @property
    def busy_pct(self) -> float:
        """CPU actually executing (user+sys), excluding iowait."""
        return self.user_pct + self.sys_pct


class UtilizationMonitor:
    """Periodic sampler producing a list of :class:`UtilizationSample`."""

    def __init__(
        self,
        sim: Simulator,
        cpu: CpuBank,
        disk: Any = None,
        interval: float = 1.0,
        name: str = "collectl",
    ) -> None:
        if interval <= 0:
            raise SimulationError(f"{name}: interval must be positive")
        self.sim = sim
        self.cpu = cpu
        self.disk = disk
        self.interval = interval
        self.name = name
        self.samples: list[UtilizationSample] = []
        self._running = False

    def start(self) -> None:
        """Begin sampling at t=now, then every ``interval`` seconds."""
        if self._running:
            raise SimulationError(f"{self.name}: already running")
        self._running = True
        self._sample_and_reschedule()

    def stop(self) -> None:
        """Stop after the currently scheduled sample (idempotent)."""
        self._running = False

    def _sample_and_reschedule(self) -> None:
        if not self._running:
            return
        self.samples.append(self._take_sample())
        ev = SimEvent(self.sim, f"{self.name}:tick")
        ev.callbacks.append(lambda _ev: self._sample_and_reschedule())
        ev.trigger(None, delay=self.interval)

    def _take_sample(self) -> UtilizationSample:
        disk_active = 0
        disk_write_active = 0
        if self.disk is not None:
            disk_active = getattr(self.disk, "active_reads", 0)
            disk_write_active = getattr(self.disk, "active_writes", 0)
        return UtilizationSample(
            time=self.sim.now,
            user_pct=100.0 * self.cpu.fraction(CpuClass.USER),
            sys_pct=100.0 * self.cpu.fraction(CpuClass.SYS),
            iowait_pct=100.0 * self.cpu.iowait_fraction(),
            disk_active=disk_active,
            disk_write_active=disk_write_active,
        )

    # -- convenience reductions (used by tests and analysis) ---------------

    def mean_total_pct(self, t0: float = 0.0, t1: float = float("inf")) -> float:
        """Mean total utilization % over a time window."""
        window = [s for s in self.samples if t0 <= s.time <= t1]
        if not window:
            return 0.0
        return sum(s.total_pct for s in window) / len(window)

    def mean_busy_pct(self, t0: float = 0.0, t1: float = float("inf")) -> float:
        """Mean busy (user+sys) % over a time window."""
        window = [s for s in self.samples if t0 <= s.time <= t1]
        if not window:
            return 0.0
        return sum(s.busy_pct for s in window) / len(window)
