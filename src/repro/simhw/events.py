"""Simulation kernel: virtual clock, event heap, and triggerable events.

The kernel is deliberately SimPy-shaped but built from scratch: a
:class:`Simulator` owns a binary-heap agenda of ``(time, priority, seq)``
entries; :class:`SimEvent` is the one primitive that processes can wait
on. Determinism matters for reproducible experiments, so ties are broken
by a monotonically increasing sequence number — two events scheduled for
the same instant always fire in schedule order.

Times are floats in **seconds** of simulated wall-clock time.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable, Iterator

from repro.errors import SimulationError

#: Event priority for "urgent" bookkeeping that must run before normal
#: events at the same timestamp (e.g. fluid-flow rate recomputation).
PRIORITY_URGENT = 0
#: Default event priority.
PRIORITY_NORMAL = 1

Callback = Callable[["SimEvent"], None]


class SimEvent:
    """A one-shot occurrence processes can wait on.

    An event is *triggered* with a value (scheduled to fire) and later
    *processed* (its callbacks run).  Waiting is done by appending a
    callback; :class:`repro.simhw.process.Process` uses this to resume a
    coroutine when the event it yielded fires.
    """

    __slots__ = ("sim", "callbacks", "_value", "_triggered", "_processed", "name")

    #: Sentinel distinguishing "no value yet" from a legitimate ``None``.
    _PENDING = object()

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self.callbacks: list[Callback] = []
        self._value: Any = SimEvent._PENDING
        self._triggered = False
        self._processed = False

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have been run."""
        return self._processed

    @property
    def value(self) -> Any:
        if self._value is SimEvent._PENDING:
            raise SimulationError(f"event {self!r} has no value yet")
        return self._value

    def trigger(self, value: Any = None, *, delay: float = 0.0) -> "SimEvent":
        """Schedule this event to fire ``delay`` seconds from now."""
        if self._triggered:
            raise SimulationError(f"event {self!r} triggered twice")
        self._triggered = True
        self._value = value
        self.sim._schedule(delay, self)
        return self

    def _process(self) -> None:
        if self._processed:
            raise SimulationError(f"event {self!r} processed twice")
        self._processed = True
        callbacks, self.callbacks = self.callbacks, []
        for cb in callbacks:
            cb(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self._processed else (
            "triggered" if self._triggered else "pending"
        )
        label = self.name or type(self).__name__
        return f"<{label} {state} at t={self.sim.now:.6f}>"


class Simulator:
    """Discrete-event simulator: clock plus an agenda of pending events.

    Usage::

        sim = Simulator()
        sim.process(my_generator(sim))
        sim.run()            # until the agenda drains
        sim.run(until=10.0)  # or until a virtual deadline
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._agenda: list[tuple[float, int, int, SimEvent]] = []
        #: Number of events processed so far (diagnostics / loop guards).
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- scheduling ------------------------------------------------------

    def _schedule(
        self, delay: float, event: SimEvent, priority: int = PRIORITY_NORMAL
    ) -> None:
        if delay < 0 or math.isnan(delay):
            raise SimulationError(f"cannot schedule event {delay!r}s in the past")
        self._seq += 1
        heapq.heappush(self._agenda, (self._now + delay, priority, self._seq, event))

    def event(self, name: str = "") -> SimEvent:
        """Create a fresh, untriggered event bound to this simulator."""
        return SimEvent(self, name)

    def timeout(self, delay: float, value: Any = None) -> SimEvent:
        """An event that fires ``delay`` seconds from now."""
        ev = SimEvent(self, f"timeout({delay:g})")
        ev.trigger(value, delay=delay)
        return ev

    def call_at(self, when: float, fn: Callable[[], None]) -> SimEvent:
        """Run ``fn()`` at absolute simulated time ``when``."""
        if when < self._now:
            raise SimulationError(f"call_at({when}) is in the past (now={self._now})")
        ev = self.timeout(when - self._now)
        ev.callbacks.append(lambda _ev: fn())
        return ev

    def process(self, generator: Iterator[Any], name: str = "") -> "Any":
        """Spawn a coroutine process (see :mod:`repro.simhw.process`)."""
        from repro.simhw.process import Process

        return Process(self, generator, name=name)

    # -- main loop -------------------------------------------------------

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._agenda[0][0] if self._agenda else math.inf

    def step(self) -> None:
        """Process exactly one event."""
        if not self._agenda:
            raise SimulationError("step() on an empty agenda")
        when, _prio, _seq, event = heapq.heappop(self._agenda)
        if when < self._now:
            raise SimulationError("agenda went backwards in time")
        self._now = when
        self.events_processed += 1
        event._process()

    def run(self, until: float | None = None, max_events: int = 50_000_000) -> float:
        """Run until the agenda drains or ``until`` is reached.

        Returns the simulation time when the run stopped.  ``max_events``
        guards against runaway models (an exception, not a silent stop).
        """
        budget = max_events
        while self._agenda:
            if until is not None and self.peek() > until:
                self._now = until
                return self._now
            if budget <= 0:
                raise SimulationError(
                    f"exceeded {max_events} events; model is likely livelocked"
                )
            budget -= 1
            self.step()
        if until is not None:
            self._now = max(self._now, until)
        return self._now
