"""Shared resources for the simulation kernel.

The workhorse is :class:`BandwidthResource`, a *fluid-flow* (processor
sharing) model of a shared channel: ``n`` concurrent transfers share the
channel's total rate, each capped at an optional per-flow maximum, with
max-min fair (water-filling) allocation.  This is exactly the behaviour
the paper's bottleneck analysis relies on — one sequential reader gets the
RAID-0's full 384 MB/s, two concurrent readers get half each, and a thread
can never use more than one CPU context no matter how idle the others are.

Since the QoS work, the *allocation policy* is pluggable: the channel
delegates rate computation to a :class:`repro.qos.allocator
.BandwidthAllocator` (default :class:`~repro.qos.allocator
.MaxMinFairShare`, whose water-fill loop is the verbatim twin of the one
this module used to inline — simulated timings are bit-identical).  The
same allocator classes drive the real service's dispatch-time bandwidth
shares, so multi-tenant slowdown predictions and real throttled runs
share one arithmetic.

Also provided: a counting :class:`Semaphore`, a producer/consumer
:class:`Store`, and a broadcast :class:`Gate` used for pipeline barriers.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Deque

from repro.errors import SimulationError
from repro.qos.allocator import BandwidthAllocator, MaxMinFairShare
from repro.simhw.events import PRIORITY_URGENT, SimEvent, Simulator

#: Completion slop for float accumulation, in resource units (bytes,
#: cpu-seconds, ...).  Anything below this is considered fully delivered.
_EPSILON = 1e-9
#: Completion slop in *time*: a flow whose remaining transfer would take
#: less than this many seconds is complete.  Guards against Zeno
#: livelock — float rounding in `now + horizon` can leave a residual
#: that shrinks asymptotically but never reaches zero.
_TIME_EPSILON = 1e-9


class _Flow:
    __slots__ = (
        "remaining", "weight", "cap", "tag", "event", "rate", "priority"
    )

    def __init__(
        self,
        amount: float,
        weight: float,
        cap: float,
        tag: str,
        event: SimEvent,
        priority: int = 0,
    ) -> None:
        self.remaining = amount
        self.weight = weight
        self.cap = cap
        self.tag = tag
        self.event = event
        self.rate = 0.0
        self.priority = priority


class BandwidthResource:
    """A channel delivering ``total_rate`` units/second, shared fluidly.

    Parameters
    ----------
    sim:
        Owning simulator.
    total_rate:
        Aggregate capacity in units/second (bytes/s for disks and links,
        context-seconds/s for CPU banks).
    per_flow_cap:
        Maximum rate a single flow may receive (default: no cap).  A CPU
        bank sets this to 1.0 so one thread occupies at most one context.
    allocator:
        The :class:`~repro.qos.allocator.BandwidthAllocator` that turns
        the active flow set into per-flow rates (default: a fresh
        :class:`~repro.qos.allocator.MaxMinFairShare`, the historical
        behaviour).  Pass a :class:`~repro.qos.allocator.PriorityLevels`
        to model strict-priority devices; ``transfer(priority=...)``
        feeds it.
    name:
        Diagnostic label.
    """

    def __init__(
        self,
        sim: Simulator,
        total_rate: float,
        *,
        per_flow_cap: float = math.inf,
        allocator: "BandwidthAllocator | None" = None,
        name: str = "channel",
    ) -> None:
        if total_rate <= 0:
            raise SimulationError(f"{name}: total_rate must be positive")
        if per_flow_cap <= 0:
            raise SimulationError(f"{name}: per_flow_cap must be positive")
        self.sim = sim
        self.total_rate = float(total_rate)
        self.per_flow_cap = float(per_flow_cap)
        self.allocator = (
            allocator if allocator is not None
            else MaxMinFairShare(total_rate)
        )
        self.name = name
        self._flows: list[_Flow] = []
        self._last_update = 0.0
        self._wakeup_seq = 0
        #: Cumulative units delivered (for throughput assertions in tests).
        self.delivered = 0.0

    # -- public API ------------------------------------------------------

    def transfer(
        self,
        amount: float,
        *,
        weight: float = 1.0,
        cap: float | None = None,
        tag: str = "",
        priority: int = 0,
    ) -> SimEvent:
        """Move ``amount`` units through the channel; returns a completion event.

        ``priority`` is forwarded to the channel's allocator; the default
        max-min policy ignores it, a ``PriorityLevels`` allocator serves
        higher values first.
        """
        if amount < 0:
            raise SimulationError(f"{self.name}: negative transfer {amount!r}")
        if weight <= 0:
            raise SimulationError(f"{self.name}: weight must be positive")
        event = self.sim.event(f"{self.name}:transfer({amount:g})")
        if amount <= _EPSILON:
            self.delivered += amount
            event.trigger(amount)
            return event
        flow = _Flow(amount, weight, cap if cap is not None else self.per_flow_cap,
                     tag, event, priority=priority)
        self._advance()
        self._flows.append(flow)
        self._reallocate()
        return event

    def set_rate(self, total_rate: float) -> None:
        """Change the aggregate capacity mid-simulation (fault injection).

        In-flight transfers are integrated up to *now* at the old rate,
        then re-share the new capacity max-min fairly — the fluid-flow
        equivalent of a device slowing down or recovering under load.
        """
        if total_rate <= 0:
            raise SimulationError(f"{self.name}: total_rate must be positive")
        self._advance()
        self.total_rate = float(total_rate)
        if self._flows:
            self._reallocate()

    @property
    def active_flows(self) -> int:
        """Number of in-flight transfers right now."""
        return len(self._flows)

    def allocated_rate(self, tag: str | None = None) -> float:
        """Instantaneous aggregate rate, optionally restricted to one tag."""
        self._advance()
        return sum(f.rate for f in self._flows if tag is None or f.tag == tag)

    @property
    def utilization(self) -> float:
        """Fraction of total capacity currently allocated, in [0, 1]."""
        return min(1.0, self.allocated_rate() / self.total_rate)

    # -- fluid-flow mechanics ---------------------------------------------

    def _advance(self) -> None:
        """Integrate progress from the last rate change to now."""
        now = self.sim.now
        dt = now - self._last_update
        self._last_update = now
        if dt <= 0 or not self._flows:
            return
        finished: list[_Flow] = []
        for flow in self._flows:
            moved = flow.rate * dt
            flow.remaining -= moved
            self.delivered += moved
            if flow.remaining <= _EPSILON or (
                flow.rate > 0 and flow.remaining <= flow.rate * _TIME_EPSILON
            ):
                flow.remaining = 0.0
                finished.append(flow)
        if finished:
            done = set(map(id, finished))
            self._flows = [f for f in self._flows if id(f) not in done]
            for flow in finished:
                flow.event.trigger(None)

    def _reallocate(self) -> None:
        """Recompute per-flow rates via the allocator, then schedule the
        next completion wakeup.

        A flow's *demand* on the allocator is its rate cap (how fast it
        could possibly go), so the default max-min policy reproduces the
        historical inline water-fill bit for bit.
        """
        if not self._flows:
            return
        alloc = self.allocator
        alloc.reset()
        alloc.set_capacity(self.total_rate)
        for flow in self._flows:
            alloc.register(
                id(flow), flow.cap, weight=flow.weight,
                priority=flow.priority,
            )
        rates = alloc.allocate()
        for flow in self._flows:
            flow.rate = rates[id(flow)]
        # Schedule an internal wakeup at the earliest completion. A
        # generation counter invalidates stale wakeups after reallocation.
        self._wakeup_seq += 1
        seq = self._wakeup_seq
        horizon = min(
            (f.remaining / f.rate for f in self._flows if f.rate > 0),
            default=math.inf,
        )
        if math.isinf(horizon):
            raise SimulationError(
                f"{self.name}: flows exist but no capacity allocated "
                "(per_flow_cap too small or channel overcommitted?)"
            )
        wake = SimEvent(self.sim, f"{self.name}:wake")
        wake.callbacks.append(lambda _ev, seq=seq: self._on_wake(seq))
        wake._triggered = True
        wake._value = None
        self.sim._schedule(max(horizon, _TIME_EPSILON), wake,
                           priority=PRIORITY_URGENT)

    def _on_wake(self, seq: int) -> None:
        if seq != self._wakeup_seq:
            return  # superseded by a later reallocation
        self._advance()
        if self._flows:
            self._reallocate()


class Semaphore:
    """Counting semaphore with FIFO wakeup order."""

    def __init__(self, sim: Simulator, capacity: int, name: str = "sem") -> None:
        if capacity < 1:
            raise SimulationError(f"{name}: capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: Deque[SimEvent] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    def acquire(self) -> SimEvent:
        """Returns an event that fires once a slot is held."""
        event = self.sim.event(f"{self.name}:acquire")
        if self._in_use < self.capacity:
            self._in_use += 1
            event.trigger(None)
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Free one slot, waking the oldest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError(f"{self.name}: release without acquire")
        if self._waiters:
            self._waiters.popleft().trigger(None)
        else:
            self._in_use -= 1


class Store:
    """Unbounded FIFO hand-off queue between producer and consumer processes."""

    def __init__(self, sim: Simulator, name: str = "store") -> None:
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[SimEvent] = deque()

    def put(self, item: Any) -> None:
        """Deposit an item, waking the oldest blocked getter."""
        if self._getters:
            self._getters.popleft().trigger(item)
        else:
            self._items.append(item)

    def get(self) -> SimEvent:
        """An event that fires with the next available item."""
        event = self.sim.event(f"{self.name}:get")
        if self._items:
            event.trigger(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def __len__(self) -> int:
        return len(self._items)


class Gate:
    """A reusable broadcast barrier: waiters block until `open()` is called."""

    def __init__(self, sim: Simulator, name: str = "gate") -> None:
        self.sim = sim
        self.name = name
        self._waiters: list[SimEvent] = []
        self._open = False

    @property
    def is_open(self) -> bool:
        return self._open

    def wait(self) -> SimEvent:
        """An event firing when (or immediately if) the gate is open."""
        event = self.sim.event(f"{self.name}:wait")
        if self._open:
            event.trigger(None)
        else:
            self._waiters.append(event)
        return event

    def open(self) -> None:
        """Open the gate, releasing every waiter."""
        self._open = True
        waiters, self._waiters = self._waiters, []
        for event in waiters:
            event.trigger(None)

    def reset(self) -> None:
        """Close the gate again for reuse."""
        self._open = False
