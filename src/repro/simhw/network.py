"""Network model: point-to-point links with fluid bandwidth sharing.

Only what the paper's HDFS case study needs: the 32-node scale-out store
sits *behind one 1 Gbit Ethernet link*, so ingest bandwidth is capped by
that link (~119 MB/s of goodput after framing/TCP overhead) no matter how
many datanodes serve stripes in parallel.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.simhw.events import SimEvent, Simulator
from repro.simhw.resources import BandwidthResource

GBIT = 1e9 / 8.0  # bytes/second per gigabit of line rate

#: Fraction of line rate delivered as application goodput (Ethernet +
#: IP + TCP framing overhead, a conventional ~95%).
DEFAULT_GOODPUT = 0.95


class Link:
    """A duplex link; each direction is an independent shared channel."""

    def __init__(
        self,
        sim: Simulator,
        line_rate: float,
        goodput: float = DEFAULT_GOODPUT,
        name: str = "link",
    ) -> None:
        if line_rate <= 0:
            raise SimulationError(f"{name}: line rate must be positive")
        if not 0 < goodput <= 1:
            raise SimulationError(f"{name}: goodput must be in (0, 1]")
        self.sim = sim
        self.name = name
        self.line_rate = float(line_rate)
        self.goodput = goodput
        rate = line_rate * goodput
        self._rx = BandwidthResource(sim, rate, name=f"{name}.rx")
        self._tx = BandwidthResource(sim, rate, name=f"{name}.tx")

    @property
    def effective_rate(self) -> float:
        return self.line_rate * self.goodput

    def degrade(self, factor: float) -> None:
        """Scale both directions to ``factor`` of nominal (a flap)."""
        if factor <= 0:
            raise SimulationError(f"{self.name}: degrade factor must be > 0")
        self._rx.set_rate(self.effective_rate * factor)
        self._tx.set_rate(self.effective_rate * factor)

    def restore(self) -> None:
        """Return both directions to nominal rate."""
        self._rx.set_rate(self.effective_rate)
        self._tx.set_rate(self.effective_rate)

    def receive(self, nbytes: float) -> SimEvent:
        """Pull ``nbytes`` across the link toward this host."""
        return self._rx.transfer(nbytes, tag="rx")

    def send(self, nbytes: float) -> SimEvent:
        """Push ``nbytes`` out over the link."""
        return self._tx.transfer(nbytes, tag="tx")

    @property
    def rx_utilization(self) -> float:
        return self._rx.utilization

    @property
    def active_receives(self) -> int:
        return self._rx.active_flows
