"""Disk and RAID-0 models.

A :class:`Disk` is a fluid-flow bandwidth channel; :class:`Raid0` stripes
across member disks, so its aggregate sequential bandwidth is the sum of
the members' and — because stripes interleave — a *single* sequential
stream can saturate the whole array.  The paper's testbed reports a 3-HDD
RAID-0 sustaining 384 MB/s reads, i.e. 128 MB/s per spindle.

Concurrent streams share the array fluidly; this is what makes the ingest
phase a *bottleneck* rather than a fixed cost: an ingest thread reading
chunk ``i+1`` while nothing else touches the disk gets the full 384 MB/s.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.qos.allocator import make_allocator
from repro.simhw.events import SimEvent, Simulator
from repro.simhw.resources import BandwidthResource

MB = 1024 * 1024
GB = 1024 * MB


class Disk:
    """A single spindle with symmetric sequential bandwidth.

    ``qos_policy`` selects the contention model for concurrent streams
    (a :data:`repro.qos.allocator.POLICIES` name); the default
    ``max-min`` water-filling is the paper's processor-sharing model.
    """

    def __init__(
        self,
        sim: Simulator,
        read_bw: float,
        write_bw: float | None = None,
        name: str = "hdd",
        qos_policy: str = "max-min",
    ) -> None:
        if read_bw <= 0:
            raise SimulationError(f"{name}: read bandwidth must be positive")
        self.sim = sim
        self.name = name
        self.qos_policy = qos_policy
        self.read_bw = float(read_bw)
        self.write_bw = float(write_bw if write_bw is not None else read_bw)
        self._read_chan = BandwidthResource(
            sim, self.read_bw, name=f"{name}.rd",
            allocator=make_allocator(qos_policy, self.read_bw),
        )
        self._write_chan = BandwidthResource(
            sim, self.write_bw, name=f"{name}.wr",
            allocator=make_allocator(qos_policy, self.write_bw),
        )

    def read(self, nbytes: float, priority: int = 0) -> SimEvent:
        """Transfer ``nbytes`` off the spindle (shared fluidly)."""
        return self._read_chan.transfer(nbytes, tag="read", priority=priority)

    def write(self, nbytes: float, priority: int = 0) -> SimEvent:
        """Transfer ``nbytes`` onto the spindle."""
        return self._write_chan.transfer(
            nbytes, tag="write", priority=priority
        )

    def degrade(self, factor: float) -> None:
        """Scale both channels to ``factor`` of nominal (fault injection)."""
        if factor <= 0:
            raise SimulationError(f"{self.name}: degrade factor must be > 0")
        self._read_chan.set_rate(self.read_bw * factor)
        self._write_chan.set_rate(self.write_bw * factor)

    def restore(self) -> None:
        """Return both channels to nominal bandwidth."""
        self._read_chan.set_rate(self.read_bw)
        self._write_chan.set_rate(self.write_bw)

    @property
    def read_utilization(self) -> float:
        return self._read_chan.utilization

    @property
    def write_utilization(self) -> float:
        return self._write_chan.utilization

    @property
    def active_reads(self) -> int:
        return self._read_chan.active_flows

    @property
    def active_writes(self) -> int:
        return self._write_chan.active_flows


class Raid0:
    """Striped array: aggregate bandwidth, shared fluidly among streams."""

    def __init__(
        self,
        disks: list[Disk],
        name: str = "raid0",
        qos_policy: str = "max-min",
    ) -> None:
        if not disks:
            raise SimulationError(f"{name}: need at least one member disk")
        sims = {d.sim for d in disks}
        if len(sims) != 1:
            raise SimulationError(f"{name}: member disks span simulators")
        self.sim = disks[0].sim
        self.disks = disks
        self.name = name
        self.qos_policy = qos_policy
        self.read_bw = sum(d.read_bw for d in disks)
        self.write_bw = sum(d.write_bw for d in disks)
        self._alive = len(disks)
        # Striping interleaves every stream across all members, so the
        # array behaves as one channel with the summed rate.
        self._read_chan = BandwidthResource(
            self.sim, self.read_bw, name=f"{name}.rd",
            allocator=make_allocator(qos_policy, self.read_bw),
        )
        self._write_chan = BandwidthResource(
            self.sim, self.write_bw, name=f"{name}.wr",
            allocator=make_allocator(qos_policy, self.write_bw),
        )

    def read(self, nbytes: float, priority: int = 0) -> SimEvent:
        """Read ``nbytes`` across the stripe set."""
        return self._read_chan.transfer(nbytes, tag="read", priority=priority)

    def write(self, nbytes: float, priority: int = 0) -> SimEvent:
        """Write ``nbytes`` across the stripe set."""
        return self._write_chan.transfer(
            nbytes, tag="write", priority=priority
        )

    @property
    def alive_members(self) -> int:
        """Member disks still contributing bandwidth."""
        return self._alive

    def degrade(self, factor: float) -> None:
        """Scale the array's channels to ``factor`` of current capacity."""
        if factor <= 0:
            raise SimulationError(f"{self.name}: degrade factor must be > 0")
        self._read_chan.set_rate(self.read_bw * factor)
        self._write_chan.set_rate(self.write_bw * factor)

    def restore(self) -> None:
        """Return the array to its full (alive-member) bandwidth."""
        self._read_chan.set_rate(self.read_bw)
        self._write_chan.set_rate(self.write_bw)

    def fail_member(self) -> int:
        """Lose one spindle; returns how many survive.

        RAID-0 has no parity, so a real member loss kills the volume —
        the model is softer on purpose: it represents the recovery mode
        of re-reading from a mirror/backup at the surviving spindles'
        aggregate rate, which is what degraded-mode experiments measure.
        """
        if self._alive <= 1:
            raise SimulationError(f"{self.name}: cannot fail the last member")
        per_disk_read = self.read_bw / len(self.disks)
        per_disk_write = self.write_bw / len(self.disks)
        self._alive -= 1
        self.read_bw = per_disk_read * self._alive
        self.write_bw = per_disk_write * self._alive
        self._read_chan.set_rate(self.read_bw)
        self._write_chan.set_rate(self.write_bw)
        return self._alive

    @property
    def read_utilization(self) -> float:
        return self._read_chan.utilization

    @property
    def write_utilization(self) -> float:
        return self._write_chan.utilization

    @property
    def active_reads(self) -> int:
        return self._read_chan.active_flows

    @property
    def active_writes(self) -> int:
        return self._write_chan.active_flows
