"""Assembled machine models, including the paper's testbed.

:class:`ScaleUpMachine` wires a :class:`~repro.simhw.cpu.CpuBank`,
a :class:`~repro.simhw.disk.Raid0`, a :class:`~repro.simhw.memory.MemoryBus`
and a :class:`~repro.simhw.monitor.UtilizationMonitor` to one simulator,
and provides the generator helpers simulated runtimes drive with
``yield from``:

* :meth:`ScaleUpMachine.compute` — hold a context for CPU work;
* :meth:`ScaleUpMachine.read_disk` — blocking disk read (counts iowait);
* :meth:`ScaleUpMachine.scan_memory` — a context-holding memory-bus scan
  (what merge threads do);
* :meth:`ScaleUpMachine.spawn_wave` / :meth:`join_wave` — thread costs.

``paper_machine()`` builds the evaluation testbed: RHEL 6, 2x8-core with
hyperthreading (32 hardware contexts), 384 GB RAM, 3 data HDDs in RAID-0
reading at 384 MB/s max.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import ConfigError
from repro.simhw.cpu import CpuBank, CpuClass
from repro.simhw.disk import GB, MB, Disk, Raid0
from repro.simhw.events import Simulator
from repro.simhw.memory import MemoryBus
from repro.simhw.monitor import UtilizationMonitor
from repro.simhw.threadlib import ThreadCosts, charge_join, charge_spawn


@dataclass(frozen=True)
class MachineSpec:
    """Static description of a scale-up box."""

    name: str = "scale-up"
    sockets: int = 2
    cores_per_socket: int = 8
    hyperthreads: int = 2
    ram_bytes: float = 384 * GB
    data_disks: int = 3
    disk_read_bw: float = 128 * MB  # per spindle; RAID-0 sums these
    disk_write_bw: float = 110 * MB
    mem_bus_bw: float = 40 * GB  # aggregate memory bandwidth ceiling
    thread_costs: ThreadCosts = field(default_factory=ThreadCosts)
    monitor_interval: float = 1.0

    def __post_init__(self) -> None:
        if min(self.sockets, self.cores_per_socket, self.hyperthreads) < 1:
            raise ConfigError("sockets/cores/hyperthreads must be >= 1")
        if self.data_disks < 1:
            raise ConfigError("need at least one data disk")
        if self.ram_bytes <= 0 or self.disk_read_bw <= 0 or self.mem_bus_bw <= 0:
            raise ConfigError("capacities and bandwidths must be positive")

    @property
    def contexts(self) -> int:
        """Hardware contexts visible to the OS scheduler."""
        return self.sockets * self.cores_per_socket * self.hyperthreads

    @property
    def raid_read_bw(self) -> float:
        return self.data_disks * self.disk_read_bw


class ScaleUpMachine:
    """A simulated scale-up node: CPU bank + RAID-0 + memory + monitor."""

    def __init__(self, sim: Simulator, spec: MachineSpec) -> None:
        self.sim = sim
        self.spec = spec
        self.cpu = CpuBank(sim, spec.contexts, name=f"{spec.name}.cpu")
        disks = [
            Disk(sim, spec.disk_read_bw, spec.disk_write_bw, name=f"hdd{i}")
            for i in range(spec.data_disks)
        ]
        self.disk = Raid0(disks, name=f"{spec.name}.raid0")
        self.memory = MemoryBus(
            sim, spec.ram_bytes, spec.mem_bus_bw, name=f"{spec.name}.mem"
        )
        self.monitor = UtilizationMonitor(
            sim, self.cpu, disk=self.disk, interval=spec.monitor_interval
        )

    # -- activity helpers (generators for `yield from`) ---------------------

    def compute(self, seconds: float, cls: CpuClass = CpuClass.USER) -> Iterator:
        """Occupy one context for ``seconds`` of class ``cls`` work."""
        yield from self.cpu.occupy(seconds, cls)

    def read_disk(self, nbytes: float) -> Iterator:
        """Blocking read from the RAID-0; the caller shows up as iowait."""
        self.cpu.io_blocked += 1
        try:
            yield self.disk.read(nbytes)
        finally:
            self.cpu.io_blocked -= 1

    def read_source(self, source, nbytes: float) -> Iterator:
        """Blocking read from an arbitrary ingest source (disk, HDFS, ...).

        ``source`` must expose ``read(nbytes) -> SimEvent``.
        """
        self.cpu.io_blocked += 1
        try:
            yield source.read(nbytes)
        finally:
            self.cpu.io_blocked -= 1

    def scan_memory(
        self,
        nbytes: float,
        per_thread_bw: float,
        cls: CpuClass = CpuClass.USER,
    ) -> Iterator:
        """Stream ``nbytes`` through the memory bus while holding a context.

        This models a merge thread: it is *busy* (shows as user CPU) but
        its progress rate is bounded by per-thread scan bandwidth and the
        shared bus.
        """
        hold = self.cpu.occupied(cls)
        yield from hold.acquire()
        try:
            yield self.memory.scan(nbytes, per_thread_bw)
        finally:
            hold.release()

    def spawn_wave(self, nthreads: int) -> Iterator:
        """Charge kernel time for spawning a wave of worker threads."""
        yield from charge_spawn(self.cpu, self.spec.thread_costs, nthreads)

    def join_wave(self, nthreads: int) -> Iterator:
        """Charge kernel time for joining a wave of worker threads."""
        yield from charge_join(self.cpu, self.spec.thread_costs, nthreads)


def paper_machine(
    sim: Simulator, monitor_interval: float = 1.0, **overrides
) -> ScaleUpMachine:
    """The evaluation testbed from section VI.A of the paper."""
    spec = MachineSpec(
        name="paper-testbed", monitor_interval=monitor_interval, **overrides
    )
    return ScaleUpMachine(sim, spec)
