"""Simulated HDFS cluster behind a single link (paper section VI.C.3).

The case study runs word count on a scale-up node that ingests 30 GB via
``libhdfs`` from a 32-node HDFS cluster connected by 1 Gbit Ethernet
*behind one link*.  The datanodes collectively serve far more than a
gigabit, so the compute node's link is the ingest bottleneck (~119 MB/s).

:class:`HdfsCluster` models the namenode trivially (block lookup is
latency we fold into per-request overhead) and the datanodes as disks;
:class:`HdfsReader` exposes the ``read(nbytes) -> SimEvent``-style
interface that :meth:`repro.simhw.machine.ScaleUpMachine.read_source`
consumes, pulling blocks from datanodes in parallel and funnelling them
through the client link.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError, SimulationError
from repro.simhw.disk import MB, Disk
from repro.simhw.events import SimEvent, Simulator
from repro.simhw.network import GBIT, Link
from repro.simhw.process import AllOf


@dataclass(frozen=True)
class HdfsSpec:
    """Cluster shape for the case study."""

    nodes: int = 32
    node_disk_bw: float = 100 * MB
    block_size: float = 64 * MB  # HDFS default of the era
    link_gbits: float = 1.0
    #: Per-block client overhead (namenode lookup + connection setup), s.
    per_block_overhead_s: float = 2e-3
    #: Per-``read()``-call overhead: a libhdfs pread opens streams to the
    #: datanodes serving the range.  The original runtime pays this once;
    #: SupMR pays it once per ingest chunk, which is part of why the
    #: paper's case-study speedup is only ~7 s despite full map overlap.
    per_read_overhead_s: float = 0.18

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ConfigError("HDFS needs at least one datanode")
        if self.block_size <= 0 or self.node_disk_bw <= 0 or self.link_gbits <= 0:
            raise ConfigError("HDFS bandwidths and block size must be positive")


class HdfsCluster:
    """Datanode disks plus the single client-facing link."""

    def __init__(self, sim: Simulator, spec: HdfsSpec | None = None) -> None:
        self.sim = sim
        self.spec = spec or HdfsSpec()
        self.datanodes = [
            Disk(sim, self.spec.node_disk_bw, name=f"dn{i}")
            for i in range(self.spec.nodes)
        ]
        self._alive = [True] * self.spec.nodes
        self.link = Link(sim, self.spec.link_gbits * GBIT, name="client-link")
        self._rr = 0  # round-robin block placement cursor

    def reader(self) -> "HdfsReader":
        """A new client read handle onto this cluster."""
        return HdfsReader(self)

    @property
    def aggregate_disk_bw(self) -> float:
        return sum(
            d.read_bw for d, alive in zip(self.datanodes, self._alive) if alive
        )

    # -- degraded mode ----------------------------------------------------

    @property
    def surviving(self) -> int:
        """Datanodes still serving blocks."""
        return sum(self._alive)

    def is_alive(self, index: int) -> bool:
        """Whether datanode ``index`` still serves blocks."""
        return self._alive[index]

    def fail_datanode(self, index: int | None = None) -> int:
        """Kill one datanode; returns its index.

        ``index=None`` kills the next alive node in ring order (matching
        the placement cursor, so losses spread like real rack failures).
        Refuses to kill the last survivor — an HDFS cluster with zero
        datanodes is an outage, not degraded mode — raising
        :class:`~repro.errors.SimulationError` instead.
        """
        if self.surviving <= 1:
            raise SimulationError(
                "cannot fail the last surviving datanode; "
                "degraded mode needs at least one"
            )
        if index is None:
            probe = self._rr
            while not self._alive[probe % len(self.datanodes)]:
                probe += 1
            index = probe % len(self.datanodes)
        if not 0 <= index < len(self.datanodes):
            raise SimulationError(f"no datanode dn{index}")
        if not self._alive[index]:
            raise SimulationError(f"datanode dn{index} is already dead")
        self._alive[index] = False
        return index

    def _next_alive(self) -> Disk:
        """Round-robin placement over the surviving datanodes only."""
        while True:
            candidate = self._rr % len(self.datanodes)
            self._rr += 1
            if self._alive[candidate]:
                return self.datanodes[candidate]


class HdfsReader:
    """Streams bytes block-by-block: datanode disk, then the shared link.

    The two stages run per block; because the aggregate datanode bandwidth
    (32 x 100 MB/s) dwarfs the ~119 MB/s link, the link governs the
    delivered rate — which is the whole point of the case study.
    """

    def __init__(self, cluster: HdfsCluster) -> None:
        self.cluster = cluster

    def read(self, nbytes: float) -> SimEvent:
        """Stream ``nbytes`` block-by-block; returns a completion event."""
        if nbytes < 0:
            raise SimulationError("negative HDFS read")
        sim = self.cluster.sim
        return sim.process(self._read(nbytes), name="hdfs-read")

    def _read(self, nbytes: float):
        sim = self.cluster.sim
        spec = self.cluster.spec
        yield sim.timeout(spec.per_read_overhead_s)
        blocks: list[float] = []
        remaining = nbytes
        while remaining > 0:
            take = min(spec.block_size, remaining)
            blocks.append(take)
            remaining -= take
        if blocks:
            parts = [
                sim.process(self._read_block(b), name="hdfs-block")
                for b in blocks
            ]
            yield AllOf(sim, parts)
        return nbytes

    def _read_block(self, nbytes: float):
        sim = self.cluster.sim
        spec = self.cluster.spec
        # Replica selection skips dead datanodes: with 3-way replication
        # a block lost with its primary is still served by a survivor,
        # so reads rebalance over the remaining nodes.
        node = self.cluster._next_alive()
        yield sim.timeout(spec.per_block_overhead_s)
        # Cut-through streaming: the datanode's disk read and the link
        # transfer pipeline; the slower stage governs.
        yield AllOf(sim, [node.read(nbytes), self.cluster.link.receive(nbytes)])
        return nbytes
