"""CPU model: a bank of hardware contexts with utilization accounting.

The paper's testbed exposes 32 hardware contexts (2 sockets x 8 cores x 2
hyperthreads).  A simulated thread must *hold a context* to make progress;
contexts are granted FIFO, so oversubscribing (more runnable threads than
contexts) queues the excess exactly like a run queue.

Utilization accounting follows collectl's classes: ``user`` (application
work), ``sys`` (kernel work — thread spawn/teardown, synchronization), and
``iowait`` (contexts idle while at least one thread is blocked on IO).
The :class:`repro.simhw.monitor.UtilizationMonitor` samples these counters.

Hyperthreading is folded into the calibrated throughput rates of the cost
model (see ``repro.simrt.costmodel``): the paper reports aggregate phase
throughputs on the HT-enabled box, so rates per context already embed HT
efficiency.
"""

from __future__ import annotations

import enum
from typing import Iterator

from repro.errors import SimulationError
from repro.simhw.events import Simulator
from repro.simhw.resources import Semaphore


class CpuClass(str, enum.Enum):
    """collectl-style CPU time classes."""

    USER = "user"
    SYS = "sys"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class CpuBank:
    """A fixed pool of hardware contexts with busy/iowait accounting."""

    def __init__(self, sim: Simulator, contexts: int, name: str = "cpu") -> None:
        if contexts < 1:
            raise SimulationError(f"{name}: need at least one context")
        self.sim = sim
        self.contexts = contexts
        self.name = name
        self._sem = Semaphore(sim, contexts, name=f"{name}.contexts")
        self._busy: dict[CpuClass, int] = {CpuClass.USER: 0, CpuClass.SYS: 0}
        #: Threads currently blocked on an IO device (drives iowait%).
        self.io_blocked = 0
        #: Cumulative context-seconds consumed, per class.
        self.consumed: dict[CpuClass, float] = {CpuClass.USER: 0.0, CpuClass.SYS: 0.0}

    # -- instantaneous state (sampled by the monitor) ----------------------

    def busy(self, cls: CpuClass) -> int:
        """Number of contexts currently executing ``cls`` work."""
        return self._busy[cls]

    @property
    def busy_total(self) -> int:
        return sum(self._busy.values())

    @property
    def idle(self) -> int:
        return self.contexts - self.busy_total

    def fraction(self, cls: CpuClass) -> float:
        """Instantaneous utilization fraction for one class, in [0, 1]."""
        return self._busy[cls] / self.contexts

    def iowait_fraction(self) -> float:
        """collectl iowait: idle contexts attributable to outstanding IO."""
        return min(self.io_blocked, self.idle) / self.contexts

    # -- execution primitives (generators; drive with `yield from`) --------

    def occupy(self, seconds: float, cls: CpuClass = CpuClass.USER) -> Iterator:
        """Hold one context for ``seconds`` of work of class ``cls``.

        Queues FIFO behind other runnable threads when all contexts are
        busy.  Usable from process bodies via ``yield from``.
        """
        if seconds < 0:
            raise SimulationError(f"{self.name}: negative compute time {seconds!r}")
        yield self._sem.acquire()
        self._busy[cls] += 1
        try:
            yield self.sim.timeout(seconds)
            self.consumed[cls] += seconds
        finally:
            self._busy[cls] -= 1
            self._sem.release()

    def occupied(self, cls: CpuClass = CpuClass.USER) -> "_ContextHold":
        """Acquire a context for a custom activity (e.g. a memory scan).

        Returns a helper whose ``acquire()``/``release()`` generators must
        bracket the activity::

            hold = cpu.occupied(CpuClass.USER)
            yield from hold.acquire()
            try:
                yield membus.transfer(...)
            finally:
                hold.release()
        """
        return _ContextHold(self, cls)


class _ContextHold:
    """RAII-ish helper for holding a context across arbitrary waits."""

    __slots__ = ("bank", "cls", "_held", "_acquired_at")

    def __init__(self, bank: CpuBank, cls: CpuClass) -> None:
        self.bank = bank
        self.cls = cls
        self._held = False
        self._acquired_at = 0.0

    def acquire(self) -> Iterator:
        if self._held:
            raise SimulationError("context already held")
        yield self.bank._sem.acquire()
        self.bank._busy[self.cls] += 1
        self._held = True
        self._acquired_at = self.bank.sim.now

    def release(self) -> None:
        if not self._held:
            raise SimulationError("release without acquire")
        self.bank.consumed[self.cls] += self.bank.sim.now - self._acquired_at
        self.bank._busy[self.cls] -= 1
        self.bank._sem.release()
        self._held = False
