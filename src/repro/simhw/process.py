"""Coroutine processes for the simulation kernel.

A *process* is a Python generator that yields :class:`~repro.simhw.events.SimEvent`
instances (or the combinators below).  Yielding suspends the process until
the event fires; the event's value becomes the result of the ``yield``
expression.  A process is itself a ``SimEvent`` that fires when the
generator returns, carrying the generator's return value — so processes
can wait on each other, which is how fork/join parallelism is written::

    def worker(sim, n):
        yield sim.timeout(n)
        return n * 2

    def parent(sim):
        kids = [sim.process(worker(sim, i)) for i in range(4)]
        results = yield AllOf(sim, kids)   # join

Failures propagate: if a process raises, the exception is re-thrown into
any process waiting on it (wrapped events carry the exception as value).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from repro.errors import SimulationError
from repro.simhw.events import SimEvent, Simulator


class _Failure:
    """Wrapper marking an event value as an exception to re-raise."""

    __slots__ = ("exc",)

    def __init__(self, exc: BaseException) -> None:
        self.exc = exc


class Process(SimEvent):
    """A running coroutine; also an event that fires on completion."""

    __slots__ = ("_generator", "_waiting_on", "alive")

    def __init__(self, sim: Simulator, generator: Iterator[Any], name: str = "") -> None:
        super().__init__(sim, name or getattr(generator, "__name__", "process"))
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"process body must be a generator, got {type(generator).__name__}"
            )
        self._generator = generator
        self._waiting_on: SimEvent | None = None
        self.alive = True
        # Kick off on the next kernel step at the current time.
        boot = sim.event(f"boot:{self.name}")
        boot.callbacks.append(self._resume)
        boot.trigger(None)

    def _resume(self, event: SimEvent) -> None:
        self._waiting_on = None
        value = event._value
        try:
            if isinstance(value, _Failure):
                target = self._generator.throw(value.exc)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            self.alive = False
            self.trigger(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - deliberate fault plumbing
            self.alive = False
            self.trigger(_Failure(exc))
            return
        yielded = _as_event(self.sim, target)
        self._waiting_on = yielded
        if yielded.processed:
            # Already fired: resume on a fresh zero-delay event so that
            # control returns through the kernel (keeps ordering fair).
            relay = self.sim.event("relay")
            relay.callbacks.append(self._resume)
            relay.trigger(yielded._value)
        else:
            yielded.callbacks.append(self._resume)

    # Waiting on a Process re-raises its failure in the waiter:
    def _process(self) -> None:
        had_waiters = bool(self.callbacks)
        super()._process()  # note: clears self.callbacks
        if isinstance(self._value, _Failure) and not had_waiters:
            # Nobody was waiting: surface the error instead of losing it.
            raise self._value.exc


def _as_event(sim: Simulator, target: Any) -> SimEvent:
    if isinstance(target, SimEvent):
        return target
    raise SimulationError(
        f"process yielded {target!r}; expected a SimEvent (use sim.timeout, "
        "resource requests, AllOf/AnyOf, or another process)"
    )


def Timeout(sim: Simulator, delay: float, value: Any = None) -> SimEvent:
    """Convenience alias for :meth:`Simulator.timeout`."""
    return sim.timeout(delay, value)


class AllOf(SimEvent):
    """Fires when every child event has fired; value is the list of values.

    If any child fails, the failure propagates as soon as it happens.
    """

    __slots__ = ("_pending", "_children")

    def __init__(self, sim: Simulator, events: Iterable[SimEvent]) -> None:
        super().__init__(sim, "AllOf")
        self._children = list(events)
        self._pending = len(self._children)
        if self._pending == 0:
            self.trigger([])
            return
        for child in self._children:
            if child.processed:
                self._on_child(child)
            else:
                child.callbacks.append(self._on_child)

    def _on_child(self, child: SimEvent) -> None:
        if self.triggered:
            return
        if isinstance(child._value, _Failure):
            self.trigger(child._value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.trigger([c._value for c in self._children])


class AnyOf(SimEvent):
    """Fires when the first child fires; value is ``(index, value)``."""

    __slots__ = ("_children",)

    def __init__(self, sim: Simulator, events: Iterable[SimEvent]) -> None:
        super().__init__(sim, "AnyOf")
        self._children = list(events)
        if not self._children:
            raise SimulationError("AnyOf needs at least one event")
        for idx, child in enumerate(self._children):
            if child.processed:
                self._on_child(idx, child)
                break
            child.callbacks.append(
                lambda ev, idx=idx: self._on_child(idx, ev)
            )

    def _on_child(self, idx: int, child: SimEvent) -> None:
        if self.triggered:
            return
        if isinstance(child._value, _Failure):
            self.trigger(child._value)
            return
        self.trigger((idx, child._value))


def join_all(sim: Simulator, processes: Iterable[Process]) -> AllOf:
    """Fork/join helper: an event firing when all processes finish."""
    return AllOf(sim, processes)
