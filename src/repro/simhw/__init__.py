"""Discrete-event simulated scale-up hardware.

This subpackage is a from-scratch discrete-event simulation substrate —
an event loop with coroutine processes (:mod:`repro.simhw.events`,
:mod:`repro.simhw.process`), fluid-flow shared-bandwidth resources
(:mod:`repro.simhw.resources`), and hardware models built on top of them:
CPUs with hardware contexts (:mod:`repro.simhw.cpu`), disks and RAID-0
arrays (:mod:`repro.simhw.disk`), a memory bus (:mod:`repro.simhw.memory`),
network links (:mod:`repro.simhw.network`), thread-operation costs
(:mod:`repro.simhw.threadlib`), and a collectl-style utilization sampler
(:mod:`repro.simhw.monitor`).

:mod:`repro.simhw.machine` assembles these into the paper's testbed (two
8-core hyperthreaded processors = 32 hardware contexts, 384 GB RAM, 3-HDD
RAID-0 reading at 384 MB/s) and :mod:`repro.simhw.hdfs` models the 32-node
HDFS cluster behind one 1 Gbit link used in the paper's case study.
"""

from repro.simhw.cpu import CpuBank, CpuClass
from repro.simhw.disk import Disk, Raid0
from repro.simhw.events import Simulator
from repro.simhw.machine import MachineSpec, ScaleUpMachine, paper_machine
from repro.simhw.memory import MemoryBus
from repro.simhw.monitor import UtilizationMonitor, UtilizationSample
from repro.simhw.network import Link
from repro.simhw.process import Process, Timeout
from repro.simhw.resources import BandwidthResource, Gate, Semaphore, Store

__all__ = [
    "Simulator",
    "Process",
    "Timeout",
    "BandwidthResource",
    "Semaphore",
    "Store",
    "Gate",
    "CpuBank",
    "CpuClass",
    "Disk",
    "Raid0",
    "MemoryBus",
    "Link",
    "UtilizationMonitor",
    "UtilizationSample",
    "MachineSpec",
    "ScaleUpMachine",
    "paper_machine",
]
