"""Crash-safe job journal: checkpoint completed work, resume after kill -9.

A :class:`JobJournal` lives in ``RuntimeOptions.checkpoint_dir`` and
records, with the same atomic-rename + CRC discipline the spill run
files use, everything a restarted job needs to skip work it already
finished:

* **completed ingest rounds** — after each mapper wave the container's
  cumulative contents are snapshotted (``Container.drain`` is
  non-destructive) to a CRC-framed pickle blob, and the round index is
  journaled;
* **sealed spill runs** — the spill manager writes its runs inside the
  checkpoint directory, and the journal tracks the inventory so a
  resume re-adopts them after re-verifying each run's checksum;
* **reduced partitions** — once the reducers finish, their sorted runs
  are persisted so a crash during the merge phase resumes straight into
  the merge.

Every journal update is a write-to-temp + ``os.replace``: a ``kill -9``
at any instant leaves either the old journal or the new one, never a
torn file.  The journal also stores a **fingerprint** of the job and
options; resuming against a different job, input, or chunking setup
raises :class:`~repro.errors.CheckpointError` instead of silently
merging incompatible state.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import shutil
import struct
import zlib
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.containers.base import Container, ContainerDelta
from repro.errors import CheckpointError
from repro.spill.manager import RunInfo

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.job import JobSpec
    from repro.core.options import RuntimeOptions
    from repro.spill.manager import SpillManager

#: Journal file format version (bumped on incompatible layout changes).
JOURNAL_VERSION = 1

#: Stages a journaled job moves through, in order.
STAGE_MAPPING = "mapping"
STAGE_REDUCED = "reduced"
STAGE_COMPLETE = "complete"

_BLOB_MAGIC = b"JCKP"
_BLOB_HEADER = struct.Struct(">4sIQ")  # magic, crc32, payload length


def job_fingerprint(job: "JobSpec", options: "RuntimeOptions") -> str:
    """A stable digest of everything that must match to resume a job.

    Covers the job name, the input files (paths and byte sizes), and
    every option that shapes the intermediate state: chunking, reducer
    count, merge algorithm, memory budget, and the fault plan's seed
    and sites.  Wall-clock knobs (deadline, lease length) and the
    mapper count deliberately stay out — resuming with a longer
    deadline or on a halved worker pool (the degradation ladder's
    half-width retry) is legitimate, since the journaled container
    state is independent of how many mappers produced it.
    """
    inputs = [
        (str(path), os.path.getsize(path)) for path in job.inputs
    ]
    plan = options.fault_plan
    material = repr((
        job.name,
        inputs,
        options.chunk_strategy.value,
        options.chunk_bytes,
        options.files_per_chunk,
        options.chunk_schedule,
        options.num_reducers,
        options.merge_algorithm.value,
        options.memory_budget,
        (plan.seed, plan.sites()) if plan is not None else None,
    ))
    return hashlib.sha256(material.encode()).hexdigest()


def _write_blob(path: Path, obj: Any) -> None:
    """Atomically persist ``obj`` as a CRC-framed pickle blob."""
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    header = _BLOB_HEADER.pack(_BLOB_MAGIC, zlib.crc32(payload), len(payload))
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(header)
        fh.write(payload)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def _read_blob(path: Path) -> Any:
    """Load a CRC-framed blob; :class:`CheckpointError` on any damage."""
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint blob {path}: {exc}") from exc
    if len(raw) < _BLOB_HEADER.size:
        raise CheckpointError(f"{path}: truncated checkpoint blob")
    magic, crc, length = _BLOB_HEADER.unpack_from(raw)
    payload = raw[_BLOB_HEADER.size:]
    if magic != _BLOB_MAGIC or len(payload) != length:
        raise CheckpointError(f"{path}: misframed checkpoint blob")
    if zlib.crc32(payload) != crc:
        raise CheckpointError(f"{path}: checkpoint blob failed its CRC check")
    return pickle.loads(payload)


class JobJournal:
    """One job's durable progress record inside a checkpoint directory.

    Construct with ``resume=False`` to wipe any previous state and start
    fresh, or ``resume=True`` to load it (fingerprint-checked).  All
    mutating methods journal atomically, so the recorded state is always
    a consistent prefix of the job.
    """

    JOURNAL_NAME = "journal.json"

    def __init__(
        self,
        directory: "str | Path",
        fingerprint: str,
        resume: bool = False,
    ) -> None:
        self.directory = Path(directory)
        self.fingerprint = fingerprint
        self.directory.mkdir(parents=True, exist_ok=True)
        self.spill_dir.mkdir(parents=True, exist_ok=True)
        self._state: dict[str, Any] = {
            "version": JOURNAL_VERSION,
            "fingerprint": fingerprint,
            "stage": STAGE_MAPPING,
            "completed_rounds": [],
            "map_tasks": 0,
            "snapshot": None,
            "spill_runs": [],
            "reduced": None,
        }
        self.resumed = False
        existing = self._load_existing() if resume else None
        if existing is not None:
            if existing.get("version") != JOURNAL_VERSION:
                raise CheckpointError(
                    f"journal version {existing.get('version')!r} does not "
                    f"match this runtime (expected {JOURNAL_VERSION})"
                )
            if existing.get("fingerprint") != fingerprint:
                raise CheckpointError(
                    "checkpoint fingerprint mismatch: the journal in "
                    f"{self.directory} was written by a different job, "
                    "input, or option set; refusing to resume"
                )
            if existing.get("stage") == STAGE_COMPLETE:
                # A finished job's journal holds nothing to resume; run
                # fresh rather than replaying a completed run's tail.
                existing = None
        if existing is not None:
            self._state = existing
            self.resumed = bool(
                existing["completed_rounds"] or existing["reduced"]
            )
        else:
            self._wipe()
            self._persist()

    # -- paths -------------------------------------------------------------

    @property
    def spill_dir(self) -> Path:
        """Where the spill manager must write runs to make them durable."""
        return self.directory / "spill"

    @property
    def journal_path(self) -> Path:
        return self.directory / self.JOURNAL_NAME

    # -- state queries ------------------------------------------------------

    @property
    def stage(self) -> str:
        """Current journaled stage (mapping | reduced | complete)."""
        return self._state["stage"]

    @property
    def completed_rounds(self) -> frozenset[int]:
        """Ingest-round indices whose mapper waves are fully journaled."""
        return frozenset(self._state["completed_rounds"])

    @property
    def map_tasks(self) -> int:
        """Map tasks launched across the journaled rounds."""
        return int(self._state["map_tasks"])

    # -- persistence --------------------------------------------------------

    def _load_existing(self) -> dict[str, Any] | None:
        path = self.journal_path
        if not path.exists():
            return None
        try:
            envelope = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            raise CheckpointError(f"{path}: unreadable journal: {exc}") from exc
        payload = envelope.get("payload")
        encoded = json.dumps(
            payload, sort_keys=True, separators=(",", ":")
        ).encode()
        if envelope.get("crc32") != zlib.crc32(encoded):
            raise CheckpointError(f"{path}: journal failed its CRC check")
        return payload

    def _persist(self) -> None:
        encoded = json.dumps(
            self._state, sort_keys=True, separators=(",", ":")
        ).encode()
        envelope = {"crc32": zlib.crc32(encoded), "payload": self._state}
        tmp = self.journal_path.with_suffix(".tmp")
        with open(tmp, "w") as fh:
            json.dump(envelope, fh, sort_keys=True)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.journal_path)

    def _wipe(self) -> None:
        """Remove every prior checkpoint artifact (fresh start)."""
        for entry in self.directory.iterdir():
            if entry == self.spill_dir:
                shutil.rmtree(entry, ignore_errors=True)
                self.spill_dir.mkdir(parents=True, exist_ok=True)
            elif entry.is_file():
                entry.unlink(missing_ok=True)

    # -- recording ----------------------------------------------------------

    def record_round(
        self,
        round_index: int,
        container: Container,
        map_tasks: int,
        spill_mgr: "SpillManager | None" = None,
    ) -> None:
        """Checkpoint one completed mapper wave.

        Snapshots the container's cumulative contents (its in-memory
        part; spilled runs are already durable on disk) and journals the
        round, the task counter, and the current spill-run inventory.
        The snapshot is written before the journal flips, so a crash
        between the two leaves the previous consistent state.
        """
        snapshot_name = f"snapshot-{round_index:05d}.bin"
        previous = self._state["snapshot"]
        _write_blob(self.directory / snapshot_name, container.drain())
        self._state["completed_rounds"] = sorted(
            set(self._state["completed_rounds"]) | {round_index}
        )
        self._state["map_tasks"] = int(map_tasks)
        self._state["snapshot"] = snapshot_name
        if spill_mgr is not None:
            self._state["spill_runs"] = [
                {
                    "index": info.index,
                    "name": info.path.name,
                    "records": info.records,
                    "payload_bytes": info.payload_bytes,
                }
                for info in spill_mgr.runs
            ]
        self._persist()
        if previous and previous != snapshot_name:
            (self.directory / previous).unlink(missing_ok=True)

    def record_reduced(self, runs: list[list[Any]]) -> None:
        """Checkpoint the reducers' sorted output runs (pre-merge)."""
        name = "reduced.bin"
        _write_blob(self.directory / name, runs)
        self._state["reduced"] = name
        self._state["stage"] = STAGE_REDUCED
        self._persist()

    def finalize(self) -> None:
        """Mark the job complete and drop the now-redundant blobs."""
        self._state["stage"] = STAGE_COMPLETE
        self._persist()
        for key in ("snapshot", "reduced"):
            name = self._state[key]
            if name:
                (self.directory / name).unlink(missing_ok=True)

    # -- garbage collection --------------------------------------------------

    def purge(self) -> None:
        """Delete this journal's directory and every artifact in it.

        Used once a job's result has been retrieved (the journal holds
        nothing a finished job needs); the directory itself is removed,
        so a later job may reuse the path from scratch.
        """
        shutil.rmtree(self.directory, ignore_errors=True)

    @classmethod
    def peek_stage(cls, directory: "str | Path") -> str | None:
        """The journaled stage under ``directory``, or None when no
        intact journal exists there.

        Skips the fingerprint check — garbage collection must be able to
        classify journals written by arbitrary jobs.
        """
        path = Path(directory) / cls.JOURNAL_NAME
        if not path.exists():
            return None
        try:
            envelope = json.loads(path.read_text())
            payload = envelope["payload"]
            encoded = json.dumps(
                payload, sort_keys=True, separators=(",", ":")
            ).encode()
            if envelope.get("crc32") != zlib.crc32(encoded):
                return None
            return str(payload.get("stage"))
        except (OSError, ValueError, KeyError, TypeError):
            return None

    @classmethod
    def purge_dir(
        cls, directory: "str | Path", require_complete: bool = False
    ) -> bool:
        """Remove one checkpoint directory; returns True when removed.

        With ``require_complete=True`` only directories whose journal
        reached the ``complete`` stage are touched (the safe default for
        ``repro gc`` over one-shot checkpoint dirs — an interrupted
        job's resumable state is never collected).
        """
        directory = Path(directory)
        if not directory.exists():
            return False
        if require_complete and cls.peek_stage(directory) != STAGE_COMPLETE:
            return False
        shutil.rmtree(directory, ignore_errors=True)
        return True

    # -- restoring ----------------------------------------------------------

    def restore(
        self,
        container: Container,
        spill_mgr: "SpillManager | None" = None,
    ) -> bool:
        """Rebuild ``container`` (and the spill inventory) from disk.

        Returns True when any journaled mapper state was restored.  Runs
        are re-verified against their checksums before adoption; the
        snapshot blob's CRC guards the in-memory part.
        """
        if not self._state["completed_rounds"]:
            return False
        if spill_mgr is not None and self._state["spill_runs"]:
            infos = [
                RunInfo(
                    index=entry["index"],
                    path=self.spill_dir / entry["name"],
                    records=entry["records"],
                    payload_bytes=entry["payload_bytes"],
                )
                for entry in self._state["spill_runs"]
            ]
            spill_mgr.adopt_runs(infos)
        snapshot = self._state["snapshot"]
        if snapshot:
            delta = _read_blob(self.directory / snapshot)
            if not isinstance(delta, ContainerDelta):
                raise CheckpointError(
                    f"{snapshot}: snapshot does not hold a container delta"
                )
            container.begin_round()
            container.absorb(delta)
        return True

    def load_reduced(self) -> list[list[Any]]:
        """The journaled reduced runs (only valid at stage ``reduced``)."""
        name = self._state["reduced"]
        if not name:
            raise CheckpointError("no reduced partitions are journaled")
        runs = _read_blob(self.directory / name)
        if not isinstance(runs, list):
            raise CheckpointError(f"{name}: reduced blob is not a run list")
        return runs
