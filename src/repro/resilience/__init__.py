"""Supervision and durability for long scale-up jobs (``repro.resilience``).

PR 2 made *records* survivable (retry, quarantine) and PR 3 made the
runtime *parallel* (forked workers); this package makes the job itself
survive the failures those two create room for:

* :mod:`~repro.resilience.supervisor` — forked waves under per-task
  leases: dead workers are respawned, orphaned tasks re-dispatched,
  hung tasks killed at lease expiry, and poison tasks quarantined
  through the existing skip budget;
* :mod:`~repro.resilience.journal` — a crash-safe
  :class:`~repro.resilience.journal.JobJournal` (atomic rename + CRC)
  checkpointing completed ingest rounds, sealed spill runs, and reduced
  partitions, so ``--resume`` after a ``kill -9`` skips finished work
  and produces byte-identical output;
* :mod:`~repro.resilience.degrade` — the graceful-degradation ladder
  (process → thread → serial on unrecoverable pool failure) and the
  whole-job :class:`~repro.resilience.degrade.Deadline`;
* :mod:`~repro.resilience.gates` — the serial/thread-side fault gates
  that keep the ``worker.crash`` / ``task.hang`` schedule identical
  across backends.
"""

from repro.resilience.degrade import (
    Deadline,
    next_backend,
    run_with_degradation,
)
from repro.resilience.gates import gate_worker_sites, worker_sites_armed
from repro.resilience.journal import JobJournal, job_fingerprint
from repro.resilience.supervisor import (
    SupervisedForkExecutor,
    SupervisionResult,
    Supervisor,
    supervised_fork_map,
)

__all__ = [
    "Deadline",
    "JobJournal",
    "SupervisedForkExecutor",
    "SupervisionResult",
    "Supervisor",
    "gate_worker_sites",
    "job_fingerprint",
    "next_backend",
    "run_with_degradation",
    "supervised_fork_map",
    "worker_sites_armed",
]
