"""Supervised fork pool: leases, respawn, and poison-task quarantine.

:func:`fork_map` (PR 3) aborts the whole wave the moment one worker
dies; this module is the Hadoop-style answer for a shared-memory
runtime.  :func:`supervised_fork_map` runs the same fork-at-call-time
contract — ``fn``, ``items`` and their closures are inherited
copy-on-write, only packed results cross a pipe — but the parent keeps
a **lease** per dispatched task (deadline + the result queue as the
heartbeat), detects dead or hung workers, respawns them with fresh
inboxes, and re-dispatches orphaned tasks with a bounded attempt count.

A task that repeatedly kills its worker is *poison*: after the retry
budget is spent it is routed through the injector's skip-budget
quarantine (when the wave allows skips) instead of failing the job.

:class:`WorkerPool` is the persistent form of the same machinery: the
workers are forked **once per job** around a job-level handler closure
(COW-inheriting the job exactly as a per-wave fork would) and each wave
then feeds them small picklable task descriptors over their inboxes —
``Supervisor`` drives any number of waves over one pool, with results
epoch-tagged so a lease-killed straggler's late frame can never bleed
into the next wave.  Results travel through a :mod:`repro.xfer`
transport, so under shared memory a multi-megabyte container delta
crosses as a segment name instead of a pipe-borne pickle.

The parent never polls: it blocks in ``multiprocessing.connection.wait``
on the result pipe, every worker sentinel, and the earliest lease
expiry, so results, deaths, and hangs each wake it exactly when they
happen.

Determinism contract: the ``worker.crash`` / ``task.hang`` fault sites
are decided **in the parent at dispatch time** — the worker is merely
told to die (``os._exit``) or stall (sleep past its lease) — and the
fault-log sequence per task (injected → retried… → recovered /
exhausted → quarantined) is emitted exactly as the serial backend's
pre-task gate (:func:`repro.resilience.gates.gate_worker_sites`) emits
it, so outputs *and fault counters* stay identical across backends.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_mod
import time
from dataclasses import dataclass
from multiprocessing import connection as mp_connection
from typing import Any, Callable, Hashable, Iterable, Sequence, TypeVar

from repro.errors import (
    FaultInjected,
    ParallelError,
    RetryExhausted,
)
from repro.faults.injector import FaultInjector
from repro.faults.log import (
    ACTION_EXHAUSTED,
    ACTION_RECOVERED,
    ACTION_RESPAWNED,
    ACTION_RETRIED,
)
from repro.faults.plan import SITE_TASK_HANG, SITE_WORKER_CRASH
from repro.faults.policy import RecoveryPolicy
from repro.parallel.backends import require_process_backend
from repro.xfer.segments import SegmentLost
from repro.xfer.transport import PipeTransport, ShmTransport

T = TypeVar("T")
R = TypeVar("R")

#: Exit code a worker uses when told to crash (distinct from genuine
#: faults' codes so logs can tell injected deaths from organic ones).
_CRASH_EXIT = 37

#: Fallback wake-up interval when nothing is in flight (a state the
#: main loop cannot normally reach; this only guards against a hang).
_IDLE_WAKE_S = 1.0

#: Dispatch modes a worker understands.
_MODE_RUN = "run"
_MODE_CRASH = "crash"
_MODE_HANG = "hang"


def _scope_str(scope: Hashable) -> str:
    return repr(scope) if scope != () else ""


@dataclass
class _TaskState:
    """Parent-side bookkeeping for one item of the wave."""

    index: int
    scope: Hashable
    #: Per-site retry attempt counters (mirror the serial gate's
    #: independent retry loops).
    crash_attempt: int = 0
    hang_attempt: int = 0
    #: A site is resolved once one of its checks passed clean.
    crash_resolved: bool = False
    hang_resolved: bool = False
    #: Genuine (non-injected) dispatch failures, bounded separately.
    organic_failures: int = 0
    #: Mode of the in-flight dispatch (only meaningful while running).
    mode: str = _MODE_RUN
    #: Set once the per-task ``pre_run`` hook has been invoked.
    pre_run_done: bool = False
    #: The packed task payload, built once at first real dispatch and
    #: reused verbatim on every re-dispatch; released at wave end.
    frame: "tuple | None" = None


@dataclass
class _Worker:
    """One supervised worker process and its dispatch inbox."""

    proc: multiprocessing.process.BaseProcess
    inbox: Any
    busy: _TaskState | None = None
    lease_expiry: float = 0.0

    @property
    def idle(self) -> bool:
        return self.busy is None


@dataclass
class SupervisionResult:
    """What one supervised wave produced, plus its survival record."""

    #: Per-item results in item order; ``None`` at quarantined indices.
    results: list[Any]
    #: Indices of tasks skipped via poison-task quarantine.
    skipped: tuple[int, ...] = ()
    #: Workers respawned after a death or a lease kill.
    respawns: int = 0
    #: Worker deaths observed (injected and organic).
    crashes: int = 0
    #: Leases that expired (hung workers killed by the supervisor).
    hangs: int = 0
    #: Orphaned tasks re-dispatched after their worker died or hung.
    redispatches: int = 0

    def completed(self) -> list[Any]:
        """The non-skipped results, in item order."""
        skipped = set(self.skipped)
        return [r for i, r in enumerate(self.results) if i not in skipped]


def _worker_main(
    handler: Callable[[Any], Any],
    inbox: Any,
    results: Any,
    transport: "PipeTransport | ShmTransport",
) -> None:
    """Worker body: serve dispatches until the ``None`` sentinel.

    ``(epoch, index, mode, frame)`` messages run one task each.
    ``crash`` exits the process without cleanup (the deterministic
    stand-in for an OOM kill); ``hang`` sleeps past any lease (a wedged
    I/O call); ``run`` unpacks the task frame and posts
    ``(epoch, index, ok, payload)`` back through the transport, packing
    synchronously so unpicklable results downgrade to a transportable
    :class:`~repro.errors.ParallelError`.
    """
    while True:
        msg = inbox.get()
        if msg is None:
            return
        epoch, index, mode, task_frame = msg
        if mode == _MODE_CRASH:
            os._exit(_CRASH_EXIT)
        if mode == _MODE_HANG:
            while True:  # pragma: no cover - killed by the supervisor
                time.sleep(3600)
        try:
            task = transport.unpack(task_frame)
            payload = (epoch, index, True, handler(task))
        except BaseException as exc:  # noqa: BLE001 - transported to parent
            payload = (epoch, index, False, exc)
        try:
            frame = transport.pack(payload)
        except Exception:  # noqa: BLE001 - unpicklable result or error
            kind = "result" if payload[2] else "error"
            frame = transport.pack((
                epoch, index, False,
                ParallelError(
                    f"worker {kind} for item {index} could not be pickled: "
                    f"{payload[3]!r}"
                ),
            ))
        results.put(frame)


class WorkerPool:
    """A persistent pool of forked workers serving task descriptors.

    Forked lazily, once, around ``handler`` — a job-level closure that
    COW-inherits whatever it captures (the job, the loaded input, the
    container factory) exactly as a per-wave fork would.  Waves are then
    driven through :meth:`run_wave`, which pays only a queue round-trip
    per task instead of ``workers`` forks per wave.  The pool survives
    worker deaths (the supervisor respawns through :meth:`spawn`) and is
    closed once per job via :meth:`close`.
    """

    def __init__(
        self,
        handler: Callable[[Any], Any],
        workers: int,
        *,
        transport: "PipeTransport | ShmTransport | None" = None,
        worker_name: str = "repro-pool",
    ) -> None:
        if workers < 1:
            raise ParallelError("WorkerPool needs at least one worker")
        require_process_backend()
        self._handler = handler
        self.requested = workers
        self.transport = transport or PipeTransport()
        self._worker_name = worker_name
        self._ctx = multiprocessing.get_context("fork")
        self.results_q = self._ctx.Queue()
        self.workers: list[_Worker] = []
        self._next_worker_id = 0
        self.epoch = 0
        self._closed = False

    def ensure_started(self, workers: int) -> None:
        """Grow the pool to ``workers`` processes (it never shrinks)."""
        if self._closed:
            raise ParallelError("worker pool is closed")
        while len(self.workers) < min(workers, self.requested):
            self.spawn()

    def spawn(self) -> _Worker:
        """Fork one worker (initial fill and post-death respawn)."""
        inbox = self._ctx.Queue()
        wid = self._next_worker_id
        self._next_worker_id += 1
        proc = self._ctx.Process(
            target=_worker_main,
            args=(self._handler, inbox, self.results_q, self.transport),
            daemon=True,
            name=f"{self._worker_name}-{wid}",
        )
        proc.start()
        worker = _Worker(proc=proc, inbox=inbox)
        self.workers.append(worker)
        return worker

    def discard(self, worker: _Worker) -> None:
        """Drop a dead/killed worker, its inbox, and its stray segments."""
        pid = worker.proc.pid
        worker.inbox.cancel_join_thread()
        worker.inbox.close()
        self.workers.remove(worker)
        # The worker is confirmed dead, so any segment it created and
        # never delivered is unreachable; unlink before its replacement
        # starts writing.
        self.transport.reap(pid)

    def begin_wave(self) -> int:
        """Advance the wave epoch (stale-frame fencing) and return it."""
        self.epoch += 1
        return self.epoch

    def run_wave(
        self,
        tasks: Sequence[Any],
        *,
        workers: "int | None" = None,
        policy: "RecoveryPolicy | None" = None,
        injector: "FaultInjector | None" = None,
        scope_of: "Callable[[int], Hashable] | None" = None,
        allow_skip: bool = False,
        pre_run: "Callable[[int], None] | None" = None,
    ) -> SupervisionResult:
        """Run one supervised wave of ``handler(task)`` over this pool."""
        return Supervisor(
            None, list(tasks), workers or self.requested,
            policy=policy or RecoveryPolicy(),
            injector=injector,
            scope_of=scope_of,
            allow_skip=allow_skip,
            pre_run=pre_run,
            pool=self,
        ).run()

    def close(self) -> None:
        """Shut every worker down and drop the queues (once per job)."""
        if self._closed:
            return
        self._closed = True
        for worker in self.workers:
            try:
                worker.inbox.put(None)
            except (ValueError, OSError):  # pragma: no cover
                pass
        for worker in self.workers:
            worker.proc.join(timeout=5.0)
        for worker in self.workers:
            if worker.proc.is_alive():  # pragma: no cover - defensive
                worker.proc.kill()
                worker.proc.join(timeout=1.0)
        for worker in self.workers:
            worker.inbox.cancel_join_thread()
            worker.inbox.close()
        self.results_q.close()
        self.workers.clear()


class Supervisor:
    """Drives one wave of items through leased, respawnable fork workers.

    Use through :func:`supervised_fork_map` (ephemeral, fork-per-wave)
    or :meth:`WorkerPool.run_wave` (persistent pool); the class exists
    so tests can poke at the dispatch protocol directly.
    """

    def __init__(
        self,
        fn: "Callable[[Any], Any] | None",
        items: Sequence[Any],
        workers: int,
        policy: RecoveryPolicy,
        injector: FaultInjector | None = None,
        scope_of: Callable[[int], Hashable] | None = None,
        allow_skip: bool = False,
        pre_run: Callable[[int], None] | None = None,
        worker_name: str = "repro-sup",
        pool: "WorkerPool | None" = None,
        transport: "PipeTransport | ShmTransport | None" = None,
    ) -> None:
        self._fn = fn
        self._items = list(items)
        self._policy = policy
        self._injector = injector
        self._allow_skip = allow_skip
        self._pre_run = pre_run
        self._worker_name = worker_name
        self._n_workers = max(
            1, min(workers, len(self._items) or 1, (os.cpu_count() or 1) * 4)
        )
        self._pool = pool
        self._owns_pool = pool is None
        if pool is not None:
            self._transport = pool.transport
        else:
            self._transport = transport or PipeTransport()
        scope = scope_of or (lambda i: (i,))
        self._states = [
            _TaskState(index=i, scope=scope(i))
            for i in range(len(self._items))
        ]
        self._pending: list[int] = list(range(len(self._items)))
        self._done: set[int] = set()
        self._skipped: set[int] = set()
        self._failures: dict[int, BaseException] = {}
        self._out: list[Any] = [None] * len(self._items)
        self._respawns = 0
        self._crashes = 0
        self._hangs = 0
        self._redispatches = 0
        self._epoch = 0

    # -- worker lifecycle --------------------------------------------------

    def _respawn_after(self, worker: _Worker, site: str, detail: str) -> None:
        self._pool.discard(worker)
        self._respawns += 1
        if self._injector is not None:
            self._injector.log.record(
                site, ACTION_RESPAWNED,
                f"worker {worker.proc.name} replaced: {detail}",
            )
        if self._respawns > self._policy.worker_respawn_budget:
            raise ParallelError(
                f"supervised pool exceeded its respawn budget "
                f"({self._policy.worker_respawn_budget}): {detail}"
            )
        self._pool.spawn()

    # -- fault protocol ----------------------------------------------------

    def _decide_mode(self, state: _TaskState) -> str:
        """Resolve the task's fault sites for this dispatch (parent side).

        Mirrors the serial gate exactly: the crash site's retry loop
        runs to resolution before the hang site is consulted, each with
        its own attempt counter, and a clean check after a failed
        attempt logs the recovery.
        """
        injector = self._injector
        if injector is None:
            return _MODE_RUN
        if not state.crash_resolved:
            if injector.armed(SITE_WORKER_CRASH):
                decision = injector.check(
                    SITE_WORKER_CRASH, state.scope, state.crash_attempt
                )
                if decision is not None:
                    return _MODE_CRASH
                if state.crash_attempt > 0:
                    injector.log.record(
                        SITE_WORKER_CRASH, ACTION_RECOVERED,
                        f"succeeded on attempt {state.crash_attempt + 1}",
                        scope=_scope_str(state.scope),
                        attempt=state.crash_attempt,
                    )
            state.crash_resolved = True
        if not state.hang_resolved:
            if injector.armed(SITE_TASK_HANG):
                decision = injector.check(
                    SITE_TASK_HANG, state.scope, state.hang_attempt
                )
                if decision is not None:
                    return _MODE_HANG
                if state.hang_attempt > 0:
                    injector.log.record(
                        SITE_TASK_HANG, ACTION_RECOVERED,
                        f"succeeded on attempt {state.hang_attempt + 1}",
                        scope=_scope_str(state.scope),
                        attempt=state.hang_attempt,
                    )
            state.hang_resolved = True
        return _MODE_RUN

    def _site_failure(self, state: _TaskState, site: str, attempt: int) -> None:
        """An injected fault killed/hung the dispatch; retry or give up.

        Emits the same log sequence as the serial gate's
        ``injector.retrying`` loop: ``retried`` while budget remains,
        ``exhausted`` (then quarantine, when allowed) past it.
        """
        injector = self._injector
        assert injector is not None
        if attempt < self._policy.max_retries:
            delay = self._policy.backoff_s(attempt)
            injector.log.record(
                site, ACTION_RETRIED,
                f"attempt {attempt + 1} failed (injected {site}); "
                f"backing off {delay:.3g}s",
                scope=_scope_str(state.scope), attempt=attempt,
            )
            if site == SITE_WORKER_CRASH:
                state.crash_attempt += 1
            else:
                state.hang_attempt += 1
            self._redispatches += 1
            self._pending.append(state.index)
            return
        injector.log.record(
            site, ACTION_EXHAUSTED,
            f"giving up after {attempt + 1} attempt(s): injected {site}",
            scope=_scope_str(state.scope), attempt=attempt,
        )
        if self._allow_skip:
            injector.quarantine(
                site,
                repr(self._items[state.index]).encode()[:64],
                scope=state.scope,
            )
            self._skipped.add(state.index)
            self._done.add(state.index)
            return
        raise RetryExhausted(
            f"{site}: {attempt + 1} attempt(s) failed "
            f"(retry budget {self._policy.max_retries}); "
            f"last error: injected {site}",
            site=site,
            attempts=attempt + 1,
        ) from FaultInjected(f"injected {site}", site=site)

    def _organic_failure(self, state: _TaskState, detail: str) -> None:
        """A worker died (or hung) with no injected fault to blame."""
        state.organic_failures += 1
        if state.organic_failures > self._policy.max_retries:
            raise ParallelError(
                f"task {state.index} killed its worker "
                f"{state.organic_failures} time(s) ({detail}); "
                "out of retries"
            )
        if self._injector is not None:
            self._injector.log.record(
                SITE_WORKER_CRASH, ACTION_RETRIED,
                f"re-dispatching task {state.index} after {detail}",
                scope=_scope_str(state.scope),
                attempt=state.organic_failures - 1,
            )
        self._redispatches += 1
        self._pending.append(state.index)

    # -- dispatch / wait / sweep -------------------------------------------

    def _task_payload(self, index: int) -> Any:
        """What crosses the inbox: the descriptor (pool) or index (owned).

        In owned mode the worker's handler closes over ``items`` via
        fork, so the index alone suffices; a pool's workers predate the
        wave, so the item itself must travel.
        """
        return self._items[index] if not self._owns_pool else index

    def _dispatch_ready(self) -> None:
        """Hand pending tasks to idle workers, resolving fault modes."""
        for worker in self._pool.workers:
            if not worker.idle:
                continue
            while self._pending:
                index = self._pending.pop(0)
                state = self._states[index]
                if index in self._done:
                    continue
                mode = self._decide_mode(state)
                if mode == _MODE_RUN:
                    if not state.pre_run_done:
                        state.pre_run_done = True
                        if self._pre_run is not None:
                            # Hook failures (e.g. an exhausted map.task
                            # gate) propagate: they fail the wave exactly
                            # as the serial backend's in-task gate would.
                            self._pre_run(index)
                    if state.frame is None:
                        # Packed once; re-dispatches reuse the same
                        # frame (and, under shm, the same segment).
                        state.frame = self._transport.pack(
                            self._task_payload(index), keep=True
                        )
                state.mode = mode
                worker.busy = state
                worker.lease_expiry = (
                    time.monotonic() + self._policy.lease_timeout_s
                )
                worker.inbox.put((self._epoch, index, mode, state.frame))
                break

    def _wait(self) -> None:
        """Block until a result frame, a worker death, or a lease expiry.

        The timeout is the earliest outstanding lease — not a polling
        interval — so an idle supervisor costs nothing and a hang is
        detected the moment its lease lapses.
        """
        reader = self._pool.results_q._reader
        if reader.poll():
            return
        sentinels = [w.proc.sentinel for w in self._pool.workers]
        expiries = [
            w.lease_expiry for w in self._pool.workers if w.busy is not None
        ]
        if expiries:
            timeout = max(0.0, min(expiries) - time.monotonic()) + 0.005
        else:
            timeout = _IDLE_WAKE_S
        mp_connection.wait([reader, *sentinels], timeout=timeout)

    def _sweep(self) -> None:
        """Detect dead workers and expired leases; recover each.

        Swept in busy-task order, not worker-list order: a persistent
        pool's list carries respawn reshuffles from earlier waves, and
        two simultaneously-dead workers must produce fault-log rows in
        the same task order a fresh fork-per-wave pool would — the
        fault-sequence determinism contract of the transport matrix.
        """
        snapshot = sorted(
            enumerate(self._pool.workers),
            key=lambda pos_w: (0, pos_w[1].busy.index)
            if pos_w[1].busy is not None else (1, pos_w[0]),
        )
        for _pos, worker in snapshot:
            state = worker.busy
            if (
                state is not None
                and state.mode == _MODE_CRASH
                and worker.proc.is_alive()
            ):
                # An injected crash is certain death (the worker
                # ``os._exit``s on receipt).  Wait for it here so that
                # simultaneous crashes are all recovered in this sweep —
                # in task order — instead of whichever subset the OS
                # happened to have reaped first.
                worker.proc.join(timeout=5.0)
        for _pos, worker in snapshot:
            state = worker.busy
            if not worker.proc.is_alive():
                self._crashes += 1
                detail = (
                    f"{worker.proc.name} exited with code "
                    f"{worker.proc.exitcode}"
                )
                if state is not None:
                    worker.busy = None
                    if state.mode == _MODE_CRASH:
                        self._site_failure(
                            state, SITE_WORKER_CRASH, state.crash_attempt
                        )
                    else:
                        self._organic_failure(state, detail)
                self._respawn_after(worker, SITE_WORKER_CRASH, detail)
                continue
            if state is not None and time.monotonic() > worker.lease_expiry:
                self._hangs += 1
                worker.proc.kill()
                worker.proc.join(timeout=5.0)
                detail = (
                    f"{worker.proc.name} exceeded its "
                    f"{self._policy.lease_timeout_s:.3g}s lease"
                )
                worker.busy = None
                if state.mode == _MODE_HANG:
                    self._site_failure(
                        state, SITE_TASK_HANG, state.hang_attempt
                    )
                else:
                    self._organic_failure(state, detail)
                self._respawn_after(worker, SITE_TASK_HANG, detail)

    def _collect(self) -> None:
        """Drain every result frame the queue currently holds."""
        while True:
            try:
                frame = self._pool.results_q.get_nowait()
            except queue_mod.Empty:
                return
            try:
                epoch, index, ok, payload = self._transport.unpack(frame)
            except SegmentLost:
                # Posted by a worker that died after delivery and whose
                # segments were reaped; its task was re-dispatched (or
                # already done), so the frame is droppable by design.
                continue
            except Exception as exc:  # noqa: BLE001 - corrupt transport
                raise ParallelError(
                    f"could not decode a supervised worker result: {exc!r}"
                ) from exc
            if epoch != self._epoch:
                continue  # straggler from an earlier wave on this pool
            for worker in self._pool.workers:
                if worker.busy is not None and worker.busy.index == index:
                    worker.busy = None
                    break
            if index in self._done:
                continue  # stale duplicate from a lease-killed straggler
            self._done.add(index)
            if ok:
                self._out[index] = payload
            else:
                self._failures[index] = payload

    # -- main loop ---------------------------------------------------------

    def run(self) -> SupervisionResult:
        """Drive the wave to completion; the supervised ``fork_map``."""
        if not self._items:
            return SupervisionResult(results=[])
        require_process_backend()
        if self._owns_pool:
            fn, items = self._fn, self._items
            self._pool = WorkerPool(
                lambda index: fn(items[index]),
                self._n_workers,
                transport=self._transport,
                worker_name=self._worker_name,
            )
        self._epoch = self._pool.begin_wave()
        try:
            self._pool.ensure_started(self._n_workers)
            while len(self._done) < len(self._items):
                self._dispatch_ready()
                self._wait()
                self._collect()
                self._sweep()
        finally:
            # Dispatch frames are wave-scoped; drop them (and their
            # segments) whether the wave finished or raised.
            for state in self._states:
                if state.frame is not None:
                    self._transport.release(state.frame)
                    state.frame = None
            if self._owns_pool:
                self._pool.close()
                self._pool = None
        if self._failures:
            raise self._failures[min(self._failures)]
        return SupervisionResult(
            results=self._out,
            skipped=tuple(sorted(self._skipped)),
            respawns=self._respawns,
            crashes=self._crashes,
            hangs=self._hangs,
            redispatches=self._redispatches,
        )


def supervised_fork_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    workers: int,
    *,
    policy: RecoveryPolicy | None = None,
    injector: FaultInjector | None = None,
    scope_of: Callable[[int], Hashable] | None = None,
    allow_skip: bool = False,
    pre_run: Callable[[int], None] | None = None,
    transport: "PipeTransport | ShmTransport | None" = None,
) -> SupervisionResult:
    """:func:`~repro.parallel.fork_pool.fork_map` under supervision.

    Same zero-pickle input contract, but worker death no longer aborts
    the wave: orphaned tasks are re-dispatched (bounded by
    ``policy.max_retries``), dead workers are respawned (bounded by
    ``policy.worker_respawn_budget``), and a hung task is killed when
    its ``policy.lease_timeout_s`` lease expires.  With an armed
    ``injector``, the ``worker.crash`` / ``task.hang`` sites are decided
    here in the parent per ``scope_of(index)`` — emitting the identical
    fault-log sequence the serial gate emits — and a poison task is
    quarantined against the skip budget when ``allow_skip`` is set.

    ``pre_run(index)`` runs in the parent exactly once per task, after
    its worker-fault sites resolved clean and before its first real
    dispatch (the hook point for the ``map.task`` gate, preserving the
    serial backend's site ordering).
    """
    return Supervisor(
        fn, list(items), workers,
        policy=policy or RecoveryPolicy(),
        injector=injector,
        scope_of=scope_of,
        allow_skip=allow_skip,
        pre_run=pre_run,
        transport=transport,
    ).run()


class SupervisedForkExecutor:
    """Executor facade over :func:`supervised_fork_map` for the sort library.

    Drop-in for :class:`~repro.parallel.fork_pool.ForkExecutor` where
    the caller wants merge workers supervised too (respawn on death)
    without any fault-site checking.
    """

    def __init__(
        self,
        workers: int,
        policy: RecoveryPolicy | None = None,
        transport: "PipeTransport | ShmTransport | None" = None,
    ) -> None:
        if workers < 1:
            raise ParallelError("SupervisedForkExecutor needs at least one worker")
        self.workers = workers
        self.policy = policy or RecoveryPolicy()
        self.transport = transport

    def map(self, fn: Callable[..., R], *iterables: Iterable[Any]) -> list[R]:
        """`Executor.map` semantics (results in order, eager)."""
        if len(iterables) == 1:
            items = list(iterables[0])
        else:
            items = list(zip(*iterables))
            original_fn = fn
            fn = lambda args: original_fn(*args)  # noqa: E731
        return supervised_fork_map(
            fn, items, self.workers, policy=self.policy,
            transport=self.transport,
        ).results
