"""Supervised fork pool: leases, respawn, and poison-task quarantine.

:func:`fork_map` (PR 3) aborts the whole wave the moment one worker
dies; this module is the Hadoop-style answer for a shared-memory
runtime.  :func:`supervised_fork_map` runs the same fork-at-call-time
contract — ``fn``, ``items`` and their closures are inherited
copy-on-write, only pickled results cross a pipe — but the parent keeps
a **lease** per dispatched task (deadline + the result queue as the
heartbeat), detects dead or hung workers, respawns them with fresh
inboxes, and re-dispatches orphaned tasks with a bounded attempt count.

A task that repeatedly kills its worker is *poison*: after the retry
budget is spent it is routed through the injector's skip-budget
quarantine (when the wave allows skips) instead of failing the job.

Determinism contract: the ``worker.crash`` / ``task.hang`` fault sites
are decided **in the parent at dispatch time** — the worker is merely
told to die (``os._exit``) or stall (sleep past its lease) — and the
fault-log sequence per task (injected → retried… → recovered /
exhausted → quarantined) is emitted exactly as the serial backend's
pre-task gate (:func:`repro.resilience.gates.gate_worker_sites`) emits
it, so outputs *and fault counters* stay identical across backends.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue as queue_mod
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterable, Sequence, TypeVar

from repro.errors import (
    FaultInjected,
    ParallelError,
    RetryExhausted,
)
from repro.faults.injector import FaultInjector
from repro.faults.log import (
    ACTION_EXHAUSTED,
    ACTION_RECOVERED,
    ACTION_RESPAWNED,
    ACTION_RETRIED,
)
from repro.faults.plan import SITE_TASK_HANG, SITE_WORKER_CRASH
from repro.faults.policy import RecoveryPolicy
from repro.parallel.backends import require_process_backend

T = TypeVar("T")
R = TypeVar("R")

#: Seconds between supervisor liveness/lease sweeps.
_POLL_S = 0.05
#: Exit code a worker uses when told to crash (distinct from genuine
#: faults' codes so logs can tell injected deaths from organic ones).
_CRASH_EXIT = 37

#: Dispatch modes a worker understands.
_MODE_RUN = "run"
_MODE_CRASH = "crash"
_MODE_HANG = "hang"


def _scope_str(scope: Hashable) -> str:
    return repr(scope) if scope != () else ""


@dataclass
class _TaskState:
    """Parent-side bookkeeping for one item of the wave."""

    index: int
    scope: Hashable
    #: Per-site retry attempt counters (mirror the serial gate's
    #: independent retry loops).
    crash_attempt: int = 0
    hang_attempt: int = 0
    #: A site is resolved once one of its checks passed clean.
    crash_resolved: bool = False
    hang_resolved: bool = False
    #: Genuine (non-injected) dispatch failures, bounded separately.
    organic_failures: int = 0
    #: Mode of the in-flight dispatch (only meaningful while running).
    mode: str = _MODE_RUN
    #: Set once the per-task ``pre_run`` hook has been invoked.
    pre_run_done: bool = False


@dataclass
class _Worker:
    """One supervised worker process and its dispatch inbox."""

    proc: multiprocessing.process.BaseProcess
    inbox: Any
    busy: _TaskState | None = None
    lease_expiry: float = 0.0

    @property
    def idle(self) -> bool:
        return self.busy is None


@dataclass
class SupervisionResult:
    """What one supervised wave produced, plus its survival record."""

    #: Per-item results in item order; ``None`` at quarantined indices.
    results: list[Any]
    #: Indices of tasks skipped via poison-task quarantine.
    skipped: tuple[int, ...] = ()
    #: Workers respawned after a death or a lease kill.
    respawns: int = 0
    #: Worker deaths observed (injected and organic).
    crashes: int = 0
    #: Leases that expired (hung workers killed by the supervisor).
    hangs: int = 0
    #: Orphaned tasks re-dispatched after their worker died or hung.
    redispatches: int = 0

    def completed(self) -> list[Any]:
        """The non-skipped results, in item order."""
        skipped = set(self.skipped)
        return [r for i, r in enumerate(self.results) if i not in skipped]


def _worker_main(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    inbox: Any,
    results: Any,
) -> None:
    """Worker body: serve dispatches until the ``None`` sentinel.

    ``(index, mode)`` messages run one task each.  ``crash`` exits the
    process without cleanup (the deterministic stand-in for an OOM
    kill); ``hang`` sleeps past any lease (a wedged I/O call); ``run``
    computes ``fn(items[index])`` and posts ``(index, ok, payload)``
    back, pickling synchronously so unpicklable results downgrade to a
    transportable :class:`~repro.errors.ParallelError`.
    """
    while True:
        msg = inbox.get()
        if msg is None:
            return
        index, mode = msg
        if mode == _MODE_CRASH:
            os._exit(_CRASH_EXIT)
        if mode == _MODE_HANG:
            while True:  # pragma: no cover - killed by the supervisor
                time.sleep(3600)
        try:
            payload = (index, True, fn(items[index]))
        except BaseException as exc:  # noqa: BLE001 - transported to parent
            payload = (index, False, exc)
        try:
            blob = pickle.dumps(payload)
        except Exception:  # noqa: BLE001 - unpicklable result or error
            kind = "result" if payload[1] else "error"
            blob = pickle.dumps((
                index, False,
                ParallelError(
                    f"worker {kind} for item {index} could not be pickled: "
                    f"{payload[2]!r}"
                ),
            ))
        results.put(blob)


class Supervisor:
    """Drives one wave of items through leased, respawnable fork workers.

    Use through :func:`supervised_fork_map`; the class exists so tests
    can poke at the dispatch protocol directly.
    """

    def __init__(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        workers: int,
        policy: RecoveryPolicy,
        injector: FaultInjector | None = None,
        scope_of: Callable[[int], Hashable] | None = None,
        allow_skip: bool = False,
        pre_run: Callable[[int], None] | None = None,
        worker_name: str = "repro-sup",
    ) -> None:
        self._fn = fn
        self._items = list(items)
        self._policy = policy
        self._injector = injector
        self._allow_skip = allow_skip
        self._pre_run = pre_run
        self._worker_name = worker_name
        self._n_workers = max(
            1, min(workers, len(self._items), (os.cpu_count() or 1) * 4)
        )
        self._ctx = multiprocessing.get_context("fork")
        self._results_q = self._ctx.Queue()
        scope = scope_of or (lambda i: (i,))
        self._states = [
            _TaskState(index=i, scope=scope(i))
            for i in range(len(self._items))
        ]
        self._pending: list[int] = list(range(len(self._items)))
        self._done: set[int] = set()
        self._skipped: set[int] = set()
        self._failures: dict[int, BaseException] = {}
        self._out: list[Any] = [None] * len(self._items)
        self._respawns = 0
        self._crashes = 0
        self._hangs = 0
        self._redispatches = 0
        self._workers: list[_Worker] = []
        self._next_worker_id = 0

    # -- worker lifecycle --------------------------------------------------

    def _spawn(self) -> _Worker:
        inbox = self._ctx.Queue()
        wid = self._next_worker_id
        self._next_worker_id += 1
        proc = self._ctx.Process(
            target=_worker_main,
            args=(self._fn, self._items, inbox, self._results_q),
            daemon=True,
            name=f"{self._worker_name}-{wid}",
        )
        proc.start()
        worker = _Worker(proc=proc, inbox=inbox)
        self._workers.append(worker)
        return worker

    def _discard(self, worker: _Worker) -> None:
        """Drop a dead/killed worker and its inbox without blocking."""
        worker.inbox.cancel_join_thread()
        worker.inbox.close()
        self._workers.remove(worker)

    def _respawn_after(self, worker: _Worker, site: str, detail: str) -> None:
        self._discard(worker)
        self._respawns += 1
        if self._injector is not None:
            self._injector.log.record(
                site, ACTION_RESPAWNED,
                f"worker {worker.proc.name} replaced: {detail}",
            )
        if self._respawns > self._policy.worker_respawn_budget:
            raise ParallelError(
                f"supervised pool exceeded its respawn budget "
                f"({self._policy.worker_respawn_budget}): {detail}"
            )
        self._spawn()

    # -- fault protocol ----------------------------------------------------

    def _decide_mode(self, state: _TaskState) -> str:
        """Resolve the task's fault sites for this dispatch (parent side).

        Mirrors the serial gate exactly: the crash site's retry loop
        runs to resolution before the hang site is consulted, each with
        its own attempt counter, and a clean check after a failed
        attempt logs the recovery.
        """
        injector = self._injector
        if injector is None:
            return _MODE_RUN
        if not state.crash_resolved:
            if injector.armed(SITE_WORKER_CRASH):
                decision = injector.check(
                    SITE_WORKER_CRASH, state.scope, state.crash_attempt
                )
                if decision is not None:
                    return _MODE_CRASH
                if state.crash_attempt > 0:
                    injector.log.record(
                        SITE_WORKER_CRASH, ACTION_RECOVERED,
                        f"succeeded on attempt {state.crash_attempt + 1}",
                        scope=_scope_str(state.scope),
                        attempt=state.crash_attempt,
                    )
            state.crash_resolved = True
        if not state.hang_resolved:
            if injector.armed(SITE_TASK_HANG):
                decision = injector.check(
                    SITE_TASK_HANG, state.scope, state.hang_attempt
                )
                if decision is not None:
                    return _MODE_HANG
                if state.hang_attempt > 0:
                    injector.log.record(
                        SITE_TASK_HANG, ACTION_RECOVERED,
                        f"succeeded on attempt {state.hang_attempt + 1}",
                        scope=_scope_str(state.scope),
                        attempt=state.hang_attempt,
                    )
            state.hang_resolved = True
        return _MODE_RUN

    def _site_failure(self, state: _TaskState, site: str, attempt: int) -> None:
        """An injected fault killed/hung the dispatch; retry or give up.

        Emits the same log sequence as the serial gate's
        ``injector.retrying`` loop: ``retried`` while budget remains,
        ``exhausted`` (then quarantine, when allowed) past it.
        """
        injector = self._injector
        assert injector is not None
        if attempt < self._policy.max_retries:
            delay = self._policy.backoff_s(attempt)
            injector.log.record(
                site, ACTION_RETRIED,
                f"attempt {attempt + 1} failed (injected {site}); "
                f"backing off {delay:.3g}s",
                scope=_scope_str(state.scope), attempt=attempt,
            )
            if site == SITE_WORKER_CRASH:
                state.crash_attempt += 1
            else:
                state.hang_attempt += 1
            self._redispatches += 1
            self._pending.append(state.index)
            return
        injector.log.record(
            site, ACTION_EXHAUSTED,
            f"giving up after {attempt + 1} attempt(s): injected {site}",
            scope=_scope_str(state.scope), attempt=attempt,
        )
        if self._allow_skip:
            injector.quarantine(
                site,
                repr(self._items[state.index]).encode()[:64],
                scope=state.scope,
            )
            self._skipped.add(state.index)
            self._done.add(state.index)
            return
        raise RetryExhausted(
            f"{site}: {attempt + 1} attempt(s) failed "
            f"(retry budget {self._policy.max_retries}); "
            f"last error: injected {site}",
            site=site,
            attempts=attempt + 1,
        ) from FaultInjected(f"injected {site}", site=site)

    def _organic_failure(self, state: _TaskState, detail: str) -> None:
        """A worker died (or hung) with no injected fault to blame."""
        state.organic_failures += 1
        if state.organic_failures > self._policy.max_retries:
            raise ParallelError(
                f"task {state.index} killed its worker "
                f"{state.organic_failures} time(s) ({detail}); "
                "out of retries"
            )
        if self._injector is not None:
            self._injector.log.record(
                SITE_WORKER_CRASH, ACTION_RETRIED,
                f"re-dispatching task {state.index} after {detail}",
                scope=_scope_str(state.scope),
                attempt=state.organic_failures - 1,
            )
        self._redispatches += 1
        self._pending.append(state.index)

    # -- dispatch / sweep --------------------------------------------------

    def _dispatch_ready(self) -> None:
        """Hand pending tasks to idle workers, resolving fault modes."""
        for worker in self._workers:
            if not worker.idle:
                continue
            while self._pending:
                index = self._pending.pop(0)
                state = self._states[index]
                if index in self._done:
                    continue
                mode = self._decide_mode(state)
                if mode == _MODE_RUN and not state.pre_run_done:
                    state.pre_run_done = True
                    if self._pre_run is not None:
                        # Hook failures (e.g. an exhausted map.task gate)
                        # propagate: they fail the wave exactly as the
                        # serial backend's in-task gate would.
                        self._pre_run(index)
                state.mode = mode
                worker.busy = state
                worker.lease_expiry = (
                    time.monotonic() + self._policy.lease_timeout_s
                )
                worker.inbox.put((index, mode))
                break

    def _sweep(self) -> None:
        """Detect dead workers and expired leases; recover each."""
        for worker in list(self._workers):
            state = worker.busy
            if not worker.proc.is_alive():
                self._crashes += 1
                detail = (
                    f"{worker.proc.name} exited with code "
                    f"{worker.proc.exitcode}"
                )
                if state is not None:
                    worker.busy = None
                    if state.mode == _MODE_CRASH:
                        self._site_failure(
                            state, SITE_WORKER_CRASH, state.crash_attempt
                        )
                    else:
                        self._organic_failure(state, detail)
                self._respawn_after(worker, SITE_WORKER_CRASH, detail)
                continue
            if state is not None and time.monotonic() > worker.lease_expiry:
                self._hangs += 1
                worker.proc.kill()
                worker.proc.join(timeout=5.0)
                detail = (
                    f"{worker.proc.name} exceeded its "
                    f"{self._policy.lease_timeout_s:.3g}s lease"
                )
                worker.busy = None
                if state.mode == _MODE_HANG:
                    self._site_failure(
                        state, SITE_TASK_HANG, state.hang_attempt
                    )
                else:
                    self._organic_failure(state, detail)
                self._respawn_after(worker, SITE_TASK_HANG, detail)

    def _collect(self) -> None:
        """Drain one result from the queue, if any arrived."""
        try:
            blob = self._results_q.get(timeout=_POLL_S)
        except queue_mod.Empty:
            return
        try:
            index, ok, payload = pickle.loads(blob)
        except Exception as exc:  # noqa: BLE001 - corrupt transport
            raise ParallelError(
                f"could not decode a supervised worker result: {exc!r}"
            ) from exc
        for worker in self._workers:
            if worker.busy is not None and worker.busy.index == index:
                worker.busy = None
                break
        if index in self._done:
            return  # stale duplicate from a lease-killed straggler
        self._done.add(index)
        if ok:
            self._out[index] = payload
        else:
            self._failures[index] = payload

    # -- main loop ---------------------------------------------------------

    def run(self) -> SupervisionResult:
        """Drive the wave to completion; the supervised ``fork_map``."""
        if not self._items:
            return SupervisionResult(results=[])
        require_process_backend()
        for _ in range(self._n_workers):
            self._spawn()
        try:
            while len(self._done) < len(self._items):
                self._dispatch_ready()
                self._collect()
                self._sweep()
        except BaseException:
            self._results_q.cancel_join_thread()
            raise
        finally:
            for worker in self._workers:
                try:
                    worker.inbox.put(None)
                except (ValueError, OSError):  # pragma: no cover
                    pass
            for worker in self._workers:
                worker.proc.join(timeout=5.0)
            for worker in self._workers:
                if worker.proc.is_alive():  # pragma: no cover - defensive
                    worker.proc.kill()
                    worker.proc.join(timeout=1.0)
            for worker in self._workers:
                worker.inbox.cancel_join_thread()
                worker.inbox.close()
            self._results_q.close()
        if self._failures:
            raise self._failures[min(self._failures)]
        return SupervisionResult(
            results=self._out,
            skipped=tuple(sorted(self._skipped)),
            respawns=self._respawns,
            crashes=self._crashes,
            hangs=self._hangs,
            redispatches=self._redispatches,
        )


def supervised_fork_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    workers: int,
    *,
    policy: RecoveryPolicy | None = None,
    injector: FaultInjector | None = None,
    scope_of: Callable[[int], Hashable] | None = None,
    allow_skip: bool = False,
    pre_run: Callable[[int], None] | None = None,
) -> SupervisionResult:
    """:func:`~repro.parallel.fork_pool.fork_map` under supervision.

    Same zero-pickle input contract, but worker death no longer aborts
    the wave: orphaned tasks are re-dispatched (bounded by
    ``policy.max_retries``), dead workers are respawned (bounded by
    ``policy.worker_respawn_budget``), and a hung task is killed when
    its ``policy.lease_timeout_s`` lease expires.  With an armed
    ``injector``, the ``worker.crash`` / ``task.hang`` sites are decided
    here in the parent per ``scope_of(index)`` — emitting the identical
    fault-log sequence the serial gate emits — and a poison task is
    quarantined against the skip budget when ``allow_skip`` is set.

    ``pre_run(index)`` runs in the parent exactly once per task, after
    its worker-fault sites resolved clean and before its first real
    dispatch (the hook point for the ``map.task`` gate, preserving the
    serial backend's site ordering).
    """
    return Supervisor(
        fn, list(items), workers,
        policy=policy or RecoveryPolicy(),
        injector=injector,
        scope_of=scope_of,
        allow_skip=allow_skip,
        pre_run=pre_run,
    ).run()


class SupervisedForkExecutor:
    """Executor facade over :func:`supervised_fork_map` for the sort library.

    Drop-in for :class:`~repro.parallel.fork_pool.ForkExecutor` where
    the caller wants merge workers supervised too (respawn on death)
    without any fault-site checking.
    """

    def __init__(self, workers: int, policy: RecoveryPolicy | None = None) -> None:
        if workers < 1:
            raise ParallelError("SupervisedForkExecutor needs at least one worker")
        self.workers = workers
        self.policy = policy or RecoveryPolicy()

    def map(self, fn: Callable[..., R], *iterables: Iterable[Any]) -> list[R]:
        """`Executor.map` semantics (results in order, eager)."""
        if len(iterables) == 1:
            items = list(iterables[0])
        else:
            items = list(zip(*iterables))
            original_fn = fn
            fn = lambda args: original_fn(*args)  # noqa: E731
        return supervised_fork_map(
            fn, items, self.workers, policy=self.policy
        ).results
