"""Graceful degradation: the backend ladder and the whole-job deadline.

When worker supervision itself gives up — the respawn budget is spent,
or the platform's fork support is broken in a way no retry fixes — the
job is still worth finishing slower.  :func:`run_with_degradation` steps
the executor backend down one rung at a time and re-runs the job; with
a checkpoint directory configured the retry resumes from the journal
instead of starting over.  The process backend gets intermediate rungs
first: a failure under fork-based workers is often load-induced (OOM
kills, fd exhaustion), so the ladder retries the *same* backend with
the mapper count halved — repeatedly, down to a single worker — before
conceding to the thread backend (process → process/half-width → …
→ thread → serial).  Every
step-down is logged, counted in ``JobResult.counters`` (``degraded``,
``degraded_backend``, ``pool_failures``) and appended to the result's
fault log, so a degraded run is never mistaken for a healthy one.

:class:`Deadline` backs the ``--job-deadline`` knob: the runtimes check
it between pipeline rounds and stop admitting new work once it expires,
returning the partial result with an explicit ``degraded`` marker
rather than hanging past the operator's budget.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable

from repro.errors import DeadlineExceeded, ParallelError
from repro.faults.log import ACTION_DEGRADED, FaultLog
from repro.parallel.backends import ExecutorBackend
from repro.util.logging import get_logger

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.job import JobSpec
    from repro.core.options import RuntimeOptions
    from repro.core.result import JobResult

logger = get_logger(__name__)

#: Pseudo-site used for degradation events in the fault log.
SITE_POOL = "executor.pool"


class Deadline:
    """A monotonic whole-job deadline; inert when ``seconds`` is None."""

    def __init__(self, seconds: float | None) -> None:
        self.seconds = seconds
        self._expiry = (
            time.monotonic() + seconds if seconds is not None else None
        )

    def expired(self) -> bool:
        """True once the deadline has passed (never, when unset)."""
        return self._expiry is not None and time.monotonic() > self._expiry

    def check(self, what: str) -> None:
        """Raise :class:`~repro.errors.DeadlineExceeded` once expired."""
        if self.expired():
            raise DeadlineExceeded(
                f"job deadline of {self.seconds:.3g}s expired before {what}"
            )


def next_backend(backend: ExecutorBackend) -> ExecutorBackend | None:
    """The next rung down the ladder, or None at the bottom."""
    if backend is ExecutorBackend.PROCESS:
        return ExecutorBackend.THREAD
    if backend is ExecutorBackend.THREAD:
        return ExecutorBackend.SERIAL
    return None


def next_rung(options: "RuntimeOptions") -> "RuntimeOptions | None":
    """The option set for the next ladder rung, or None at the bottom.

    Process-backend failures first retry the process backend with the
    mapper count halved (load-induced failures — OOM kills, fd
    exhaustion — often clear at lower parallelism) until a single
    worker remains; only then does the ladder change backend.
    """
    if (
        options.executor_backend is ExecutorBackend.PROCESS
        and options.num_mappers > 1
    ):
        return options.with_(num_mappers=options.num_mappers // 2)
    fallback = next_backend(options.executor_backend)
    if fallback is None:
        return None
    return options.with_(executor_backend=fallback)


def run_with_degradation(
    run_once: "Callable[[JobSpec, RuntimeOptions], JobResult]",
    job: "JobSpec",
    options: "RuntimeOptions",
) -> "JobResult":
    """Run a job, stepping the backend down on unrecoverable pool failure.

    ``run_once`` is one full runtime execution under explicit options.
    A :class:`~repro.errors.ParallelError` — the supervisor's "I give
    up" signal — triggers a retry on the next rung (process-backend
    failures first retry at half the mapper count, see
    :func:`next_rung`); with a checkpoint directory the retry resumes
    from the journal, so rounds that finished under the failed rung are
    not recomputed.  Any other exception propagates untouched.
    """
    attempts: list[tuple[str, str]] = []
    current = options
    while True:
        try:
            result = run_once(job, current)
        except ParallelError as exc:
            fallback = next_rung(current)
            if fallback is None or not options.degrade_on_pool_failure:
                raise
            if fallback.executor_backend is current.executor_backend:
                step = (
                    f"halved the {current.executor_backend.value} pool: "
                    f"{current.num_mappers} -> {fallback.num_mappers} "
                    f"worker(s)"
                )
            else:
                step = (
                    f"stepped down from the "
                    f"{current.executor_backend.value} backend"
                )
            attempts.append((step, str(exc)))
            logger.warning(
                "pool failure on the %s backend with %d worker(s) (%s); "
                "retrying on %s with %d worker(s)",
                current.executor_backend.value, current.num_mappers, exc,
                fallback.executor_backend.value, fallback.num_mappers,
            )
            if current.checkpoint_dir is not None:
                fallback = fallback.with_(resume=True)
            current = fallback
            continue
        if attempts:
            result.counters["degraded"] = True
            result.counters["degraded_backend"] = (
                current.executor_backend.value
            )
            result.counters["degraded_workers"] = current.num_mappers
            result.counters["pool_failures"] = len(attempts)
            if result.fault_log is None:
                result.fault_log = FaultLog()
            for step, detail in attempts:
                result.fault_log.record(
                    SITE_POOL, ACTION_DEGRADED, f"{step}: {detail}",
                )
        return result
