"""Worker-fault gates for the backends that have no workers to kill.

The ``worker.crash`` and ``task.hang`` sites model *process* deaths, but
the backend-equivalence contract says a fault plan's schedule — which
sites fire for which scopes, how many retries it costs, what gets
quarantined — must be identical across serial, thread, and process
backends.  The serial and thread backends therefore run this gate
before each task body: every site decision goes through the same
``injector.check`` / ``injector.retrying`` machinery the supervisor
mirrors, producing the identical fault-log sequence without an actual
process to kill.
"""

from __future__ import annotations

from typing import Hashable

from repro.errors import FaultInjected, RetryExhausted
from repro.faults.injector import FaultInjector
from repro.faults.plan import SITE_TASK_HANG, SITE_WORKER_CRASH

#: Sites the gate resolves, in resolution order (crash fully, then hang
#: — the supervisor's dispatch protocol follows the same order).
WORKER_SITES = (SITE_WORKER_CRASH, SITE_TASK_HANG)


def worker_sites_armed(injector: FaultInjector | None) -> bool:
    """True when the plan arms either worker-fault site."""
    if injector is None:
        return False
    return any(injector.armed(site) for site in WORKER_SITES)


def gate_worker_sites(
    injector: FaultInjector,
    scope: Hashable,
    allow_skip: bool = False,
    task_repr: bytes = b"",
) -> bool:
    """Resolve both worker-fault sites for one task scope.

    Returns True when the task should run; False when it was declared
    poison and quarantined against the skip budget (``allow_skip``).
    With ``allow_skip`` off, exhaustion raises
    :class:`~repro.errors.RetryExhausted` exactly as the supervisor's
    un-skippable waves do.
    """
    for site in WORKER_SITES:
        if not injector.armed(site):
            continue

        def attempt_fn(attempt: int, site: str = site) -> None:
            decision = injector.check(site, scope, attempt)
            if decision is not None:
                raise FaultInjected(f"injected {site}", site=site)

        try:
            injector.retrying(
                site, attempt_fn, scope=scope, retryable=(FaultInjected,)
            )
        except RetryExhausted:
            if not allow_skip:
                raise
            injector.quarantine(site, task_repr[:64], scope=scope)
            return False
    return True
