"""Extension experiment: energy, throttling and availability vs chunk size.

Quantifies section VI.C.1's qualitative claims: small chunks produce
"long periods of very high CPU utilizations" (throttle exposure, lower
availability) while the total *energy* picture is dominated by
race-to-idle — the chunked runs finish sooner, so they usually consume
less energy overall even at higher average power.
"""

from __future__ import annotations

from repro.analysis.tables import AsciiTable
from repro.experiments.base import Comparison, ExperimentResult
from repro.simhw.power import (
    PowerModel,
    availability_loss,
    energy_from_samples,
    throttle_exposure,
)
from repro.simrt.costmodel import GB_SI, PAPER_SORT, PAPER_WORDCOUNT
from repro.simrt.phoenix_sim import simulate_phoenix_job
from repro.simrt.supmr_sim import simulate_supmr_job


def run(monitor_interval: float = 2.0) -> ExperimentResult:
    """Energy/throttle/availability across Table II configurations."""
    model = PowerModel()
    configs = [
        ("wordcount", "none",
         simulate_phoenix_job(PAPER_WORDCOUNT, 155 * GB_SI,
                              monitor_interval=monitor_interval)),
        ("wordcount", "1GB",
         simulate_supmr_job(PAPER_WORDCOUNT, 155 * GB_SI, 1 * GB_SI,
                            monitor_interval=monitor_interval)),
        ("wordcount", "50GB",
         simulate_supmr_job(PAPER_WORDCOUNT, 155 * GB_SI, 50 * GB_SI,
                            monitor_interval=monitor_interval)),
        ("sort", "none",
         simulate_phoenix_job(PAPER_SORT, 60 * GB_SI,
                              monitor_interval=monitor_interval)),
        ("sort", "1GB",
         simulate_supmr_job(PAPER_SORT, 60 * GB_SI, 1 * GB_SI,
                            monitor_interval=monitor_interval)),
    ]

    table = AsciiTable(["app", "chunks", "total (s)", "energy (Wh)",
                        "mean W", "throttle-risk (s)", "availability loss"])
    metrics: dict[tuple[str, str], dict[str, float]] = {}
    for app, label, result in configs:
        report = energy_from_samples(result.samples, model)
        throttle = throttle_exposure(result.samples)
        loss = availability_loss(result.samples)
        metrics[(app, label)] = {
            "energy_wh": report.energy_wh,
            "mean_w": report.mean_power_w,
            "throttle": throttle,
            "loss": loss,
        }
        table.add_row(app, label, f"{result.timings.total_s:.1f}",
                      f"{report.energy_wh:.1f}", f"{report.mean_power_w:.0f}",
                      f"{throttle:.0f}", f"{100 * loss:.1f}%")

    wc_none = metrics[("wordcount", "none")]
    wc_1gb = metrics[("wordcount", "1GB")]
    sort_none = metrics[("sort", "none")]
    sort_1gb = metrics[("sort", "1GB")]
    return ExperimentResult(
        exp_id="ext-energy",
        title="Energy / throttling / availability vs chunk size (SVI.C.1)",
        comparisons=[
            # the paper's qualitative claims, expressed as ratios >= 1
            Comparison("wordcount 1GB availability loss vs none (ratio)",
                       1.0, wc_1gb["loss"] / max(wc_none["loss"], 1e-9),
                       unit="x"),
            Comparison("sort 1GB mean power vs none (ratio)", 1.0,
                       sort_1gb["mean_w"] / sort_none["mean_w"], unit="x"),
        ],
        body=table.render(),
        notes=[
            "small chunks raise mean power and availability loss "
            "(the paper's heat/availability concern) ...",
            "... but total energy drops for the chunked runs: finishing "
            "sooner saves more idle energy than the extra utilization "
            "costs (race-to-idle) — a nuance the paper's qualitative "
            "discussion does not quantify",
        ],
    )
