"""Extension experiment: the future-work chunk-size tuners, evaluated.

Compares the paper's hand-picked chunk sizes against the model-based
optimum and the cold-started online feedback loop on the simulated
testbed, for both evaluation workloads.
"""

from __future__ import annotations

from repro.analysis.tables import AsciiTable
from repro.experiments.base import Comparison, ExperimentResult
from repro.simrt.costmodel import GB_SI, PAPER_SORT, PAPER_WORDCOUNT
from repro.simrt.supmr_sim import simulate_supmr_job
from repro.tuning.adaptive_sim import simulate_supmr_adaptive
from repro.tuning.feedback import FeedbackTuner
from repro.tuning.model import optimal_chunk_size


def run(monitor_interval: float = 20.0) -> ExperimentResult:
    """Evaluate the chunk-size tuners against hand-picked sizes."""
    table = AsciiTable(["app", "configuration", "chunk", "read+map (s)",
                        "total (s)"])
    gains: dict[str, float] = {}
    for app, profile, input_bytes, paper_chunk in (
        ("wordcount", PAPER_WORDCOUNT, 155 * GB_SI, 1 * GB_SI),
        ("sort", PAPER_SORT, 60 * GB_SI, 1 * GB_SI),
    ):
        paper = simulate_supmr_job(profile, input_bytes, paper_chunk,
                                   monitor_interval=monitor_interval)
        table.add_row(app, "paper hand-tuned", "1GB",
                      f"{paper.timings.read_map_s:.2f}",
                      f"{paper.timings.total_s:.2f}")

        best = optimal_chunk_size(profile, input_bytes)
        model = simulate_supmr_job(profile, input_bytes, best.chunk_bytes,
                                   monitor_interval=monitor_interval)
        table.add_row(app, "model tuner",
                      f"{best.chunk_bytes / GB_SI:.2f}GB",
                      f"{model.timings.read_map_s:.2f}",
                      f"{model.timings.total_s:.2f}")

        tuner = FeedbackTuner(initial_chunk_bytes=0.25 * GB_SI,
                              round_overhead_s=profile.round_overhead_s)
        adaptive = simulate_supmr_adaptive(profile, input_bytes, tuner,
                                           monitor_interval=monitor_interval)
        table.add_row(app, "feedback tuner (cold start)", "adaptive",
                      f"{adaptive.timings.read_map_s:.2f}",
                      f"{adaptive.timings.total_s:.2f}")
        gains[app] = paper.timings.total_s / model.timings.total_s

    return ExperimentResult(
        exp_id="ext-tuning",
        title="Chunk-size tuners vs the paper's hand-picked sizes "
              "(SVIII future work)",
        comparisons=[
            # >= 1.0: the tuner never loses to the hand-picked size
            Comparison("wordcount model-tuner total vs paper 1GB", 1.0,
                       gains["wordcount"], unit="x"),
            Comparison("sort model-tuner total vs paper 1GB", 1.0,
                       gains["sort"], unit="x"),
        ],
        body=table.render(),
        notes=[
            "closed form: c* = sqrt(round_overhead x input x "
            "non-bottleneck rate) — sort's 19x heavier rounds push its "
            "optimum chunk well past word count's",
        ],
    )
