"""Extension experiment: scale-up SupMR vs an 'equivalent' scale-out job.

The comparison the paper's conclusion points at (via refs [2], [7]):
time-to-result and energy for SupMR on the 32-context box vs an N-node
Hadoop-shaped cluster running the same per-byte work, for N in
{8, 16, 32, 64}.  The shape to reproduce from the scale-up-vs-scale-out
literature: moderate clusters lose to the fat node on ingest-bound jobs
(shuffle + coordination floors), big clusters win on wall-clock but burn
multiples of the energy.
"""

from __future__ import annotations

from repro.analysis.tables import AsciiTable
from repro.experiments.base import Comparison, ExperimentResult
from repro.simhw.power import PowerModel, energy_from_samples
from repro.simrt.costmodel import GB_SI, PAPER_SORT, PAPER_WORDCOUNT
from repro.simrt.scaleout_sim import ScaleOutSpec, crossover_nodes, estimate_scaleout_job
from repro.simrt.supmr_sim import simulate_supmr_job


def run(monitor_interval: float = 5.0) -> ExperimentResult:
    """Compare SupMR with N-node scale-out on time and energy."""
    model = PowerModel()
    rows: list[str] = []
    table = AsciiTable(["app", "system", "total (s)", "energy (Wh)"])
    crossovers: dict[str, int | None] = {}

    energy_multiple: dict[str, float] = {}
    for app, profile, input_bytes in (
        ("wordcount", PAPER_WORDCOUNT, 155 * GB_SI),
        ("sort", PAPER_SORT, 60 * GB_SI),
    ):
        supmr = simulate_supmr_job(profile, input_bytes, 1 * GB_SI,
                                   monitor_interval=monitor_interval)
        supmr_energy = energy_from_samples(supmr.samples, model)
        table.add_row(app, "scale-up SupMR (32 ctx)",
                      f"{supmr.timings.total_s:.1f}",
                      f"{supmr_energy.energy_wh:.1f}")
        for nodes in (8, 16, 32, 64):
            est = estimate_scaleout_job(profile, input_bytes,
                                        ScaleOutSpec(nodes=nodes))
            table.add_row(app, f"scale-out {nodes} nodes",
                          f"{est.total_s:.1f}", f"{est.energy_wh:.1f}")
        crossovers[app] = crossover_nodes(profile, input_bytes,
                                          supmr.timings.total_s)
        est8 = estimate_scaleout_job(profile, input_bytes,
                                     ScaleOutSpec(nodes=8))
        energy_multiple[app] = est8.energy_wh / supmr_energy.energy_wh
        rows.append(
            f"{app}: scale-out needs {crossovers[app]} node(s) to beat "
            f"SupMR's {supmr.timings.total_s:.0f}s; an 8-node cluster "
            f"burns {energy_multiple[app]:.1f}x the energy"
        )

    # Shape checks: [2]'s framing is that scale-up delivers the result at
    # a fraction of the (energy/TCO) cost — ballpark a 2.5x multiple for
    # a wall-clock-competitive commodity cluster.
    comparisons = [
        Comparison("wordcount 8-node energy multiple (ballpark from [2])",
                   2.5, energy_multiple["wordcount"], unit="x"),
        Comparison("sort 8-node energy multiple (ballpark from [2])",
                   2.5, energy_multiple["sort"], unit="x"),
    ]
    return ExperimentResult(
        exp_id="ext-scaleout",
        title="Scale-up SupMR vs Hadoop-shaped scale-out (conclusion / [2])",
        comparisons=comparisons,
        body=table.render() + "\n\n" + "\n".join(rows),
        notes=[
            "this is a shape comparison against the scale-up-vs-scale-out "
            "framing of [2], not a published cell: crossover on wall-clock "
            "happens at a handful of nodes (the fat node's RAID is only "
            "~4x a commodity disk) but every winning cluster size burns "
            "multiples of the energy",
        ],
    )
