"""Experiment id -> runner mapping for the CLI and benches."""

from __future__ import annotations

from typing import Callable

from repro.errors import ExperimentError
from repro.experiments import (
    claims,
    ext_energy,
    ext_scaleout,
    ext_spectrum,
    ext_tuning,
    fig1,
    fig3,
    fig5,
    fig6,
    fig7,
    table2,
)
from repro.experiments.base import ExperimentResult

Runner = Callable[..., ExperimentResult]

_REGISTRY: dict[str, Runner] = {
    "table2": table2.run,
    "fig1": fig1.run,
    "fig3": fig3.run,
    "fig5": fig5.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "claims": claims.run,
    # extensions beyond the paper's artifacts (see DESIGN.md):
    "ext-energy": ext_energy.run,
    "ext-scaleout": ext_scaleout.run,
    "ext-spectrum": ext_spectrum.run,
    "ext-tuning": ext_tuning.run,
}


def available_experiments() -> list[str]:
    """Sorted experiment ids."""
    return sorted(_REGISTRY)


def get_experiment(exp_id: str) -> Runner:
    """The runner for ``exp_id``; raises on unknown ids."""
    try:
        return _REGISTRY[exp_id]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {exp_id!r}; available: {available_experiments()}"
        ) from None


def run_experiment(exp_id: str, **kwargs) -> ExperimentResult:
    """Run one experiment by id."""
    return get_experiment(exp_id)(**kwargs)
