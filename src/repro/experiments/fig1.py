"""Fig. 1: the original runtime's sort is bottlenecked by ingest and merge.

Reproduces the CPU-utilization trace of the 60 GB sort on the baseline
runtime and checks the figure's two headline observations:

* the actual compute (map+reduce) occupies < 25% of the execution time —
  ingest and merge dominate;
* the merge interval shows the "step" curve: utilization halves as the
  2-way merge rounds retire threads.
"""

from __future__ import annotations

from repro.analysis.traces import mean_utilization, sparkline, step_levels, trace_csv
from repro.experiments.base import Comparison, ExperimentResult
from repro.simrt.costmodel import GB_SI, PAPER_SORT
from repro.simrt.phases import SimJobResult
from repro.simrt.phoenix_sim import simulate_phoenix_job

SORT_BYTES = 60 * GB_SI


def run_trace(monitor_interval: float = 1.0) -> SimJobResult:
    """The baseline 60 GB sort run with its utilization trace."""
    return simulate_phoenix_job(
        PAPER_SORT, SORT_BYTES, monitor_interval=monitor_interval
    )


def run(monitor_interval: float = 1.0) -> ExperimentResult:
    """Regenerate Fig. 1 and check its headline observations."""
    result = run_trace(monitor_interval=monitor_interval)
    t = result.timings
    compute_fraction = (t.map_s + t.reduce_s) / t.total_s
    compute_and_merge_fraction = t.compute_s / t.total_s

    # Step levels across the pairwise-merge tail (after the block sorts,
    # which run at ~100%).
    merge_start, merge_end = [
        (s.start, s.end) for s in result.spans if s.name == "merge"
    ][0]
    levels = [
        lv for lv in step_levels(result.samples, merge_start, merge_end)
        if lv > 1.0
    ]
    descending = all(a >= b - 1.0 for a, b in zip(levels, levels[1:]))

    ingest_util = mean_utilization(result.samples, 0, t.read_s)
    body = "\n".join(
        [
            "total CPU utilization, 0..{:.0f}s ({} = 0-100%):".format(
                t.total_s, "' .:-=+*#%@'"
            ),
            sparkline(result.samples),
            "",
            f"phases: read 0-{t.read_s:.0f}s | map+reduce "
            f"{t.read_s:.0f}-{t.read_s + t.map_s + t.reduce_s:.0f}s | merge "
            f"{merge_start:.0f}-{merge_end:.0f}s",
            f"merge-interval busy plateaus (step curve): "
            f"{[round(lv, 1) for lv in levels]}",
        ]
    )
    # The "compute < 25% of execution time" statement is an upper bound;
    # report the high-utilization compute window (map + reduce + the
    # all-cores block-sort prefix of the merge) against it.
    inter = PAPER_SORT.intermediate_bytes(SORT_BYTES)
    block_sort_s = inter / 32 / PAPER_SORT.sort_block_bw
    busy_window_fraction = (t.map_s + t.reduce_s + block_sort_s) / t.total_s
    return ExperimentResult(
        exp_id="fig1",
        title="Scale-up MapReduce sort bottlenecked by ingest and merge (Fig. 1)",
        comparisons=[
            Comparison("total job time", 397.31, t.total_s),
            Comparison("high-utilization compute window fraction (bound 0.25)",
                       0.25, busy_window_fraction, unit="frac"),
        ],
        body=body,
        notes=[
            f"compute phase (map+reduce) is {100 * compute_fraction:.1f}% of the "
            "job (paper: 'less than 25%')",
            f"map+reduce+merge together are {100 * compute_and_merge_fraction:.1f}%",
            f"mean utilization during ingest is {ingest_util:.1f}% (iowait-only)",
            f"merge step curve descends: {descending}",
        ],
        artifacts={"fig1_trace.csv": trace_csv(result.samples)},
    )
