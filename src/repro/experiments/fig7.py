"""Fig. 7: the HDFS case study — high utilization, ~7 s speedup.

Word count ingesting 30 GB from a 32-node HDFS behind one 1 Gbit link:
SupMR overlaps ingest chunks with map waves, raising utilization during
ingest, but the map phase is so small relative to the link-bound ingest
that the end-to-end win is only a few seconds (Conclusion 4).
"""

from __future__ import annotations

from repro.analysis.traces import mean_utilization, sparkline, trace_csv
from repro.experiments.base import Comparison, ExperimentResult
from repro.simrt.hdfs_case import simulate_hdfs_case_study

PAPER_SPEEDUP_S = 7.0


def run(monitor_interval: float = 1.0) -> ExperimentResult:
    """Regenerate Fig. 7's HDFS case study."""
    case = simulate_hdfs_case_study(monitor_interval=monitor_interval)
    b, s = case.baseline, case.supmr

    base_util = mean_utilization(b.samples, 0, b.timings.read_s)
    supmr_util = mean_utilization(s.samples, 0, s.timings.read_map_s)

    body = "\n".join(
        [
            f"baseline total={b.timings.total_s:.1f}s "
            f"(ingest {b.timings.read_s:.1f}s at {base_util:.1f}% mean util):",
            sparkline(b.samples),
            "",
            f"SupMR    total={s.timings.total_s:.1f}s "
            f"(ingest/map {s.timings.read_map_s:.1f}s at {supmr_util:.1f}% mean util):",
            sparkline(s.samples),
        ]
    )
    return ExperimentResult(
        exp_id="fig7",
        title="Word count over HDFS behind one 1 Gbit link (Fig. 7)",
        comparisons=[
            Comparison("end-to-end speedup", PAPER_SPEEDUP_S,
                       case.speedup_seconds),
        ],
        body=body,
        notes=[
            f"utilization during ingest rises {base_util:.1f}% -> "
            f"{supmr_util:.1f}%, but the map phase is only "
            f"{100 * (b.timings.map_s / b.timings.total_s):.1f}% of the job, "
            "so there is little computation to overlap (Conclusion 4)",
        ],
        artifacts={
            "fig7_baseline.csv": trace_csv(b.samples),
            "fig7_supmr.csv": trace_csv(s.samples),
        },
    )
