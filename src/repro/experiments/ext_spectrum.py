"""Extension experiment: the application spectrum (Conclusions 1 & 4).

The paper's Conclusion 1 — "the benefit of these modifications depends
on the complexity of the individual job phases" — is stated from two
data points (word count and sort).  This experiment fills in the curve:
synthetic app profiles sweep the map-phase weight from trivial
(sort-like pointer setup) to heavy (4x word count's parse cost), holding
the testbed fixed, and report how much of the job the pipeline hides.

The expected shape: pipeline benefit grows with map weight until the
map legs exceed the ingest legs (the pipeline becomes compute-bound),
after which extra map work stops being hideable and total time grows —
the spectrum's two regimes.
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis.tables import AsciiTable
from repro.experiments.base import Comparison, ExperimentResult
from repro.simrt.costmodel import GB_SI, PAPER_WORDCOUNT
from repro.simrt.phoenix_sim import simulate_phoenix_job
from repro.simrt.supmr_sim import simulate_supmr_job

INPUT = 40 * GB_SI
CHUNK = 1 * GB_SI

#: map cost multipliers spanning sort-like (0.25x) to heavy (8x).
SPECTRUM = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0)


def run(monitor_interval: float = 20.0) -> ExperimentResult:
    """Sweep map weight; report speedup and regime per point."""
    table = AsciiTable(["map cost", "baseline read+map (s)",
                        "pipelined (s)", "speedup", "regime"])
    speedups: list[float] = []
    for factor in SPECTRUM:
        profile = replace(
            PAPER_WORDCOUNT,
            name=f"synthetic-x{factor:g}",
            map_bw_per_ctx=PAPER_WORDCOUNT.map_bw_per_ctx / factor,
        )
        base = simulate_phoenix_job(profile, INPUT,
                                    monitor_interval=monitor_interval)
        supmr = simulate_supmr_job(profile, INPUT, CHUNK,
                                   monitor_interval=monitor_interval)
        base_rm = base.timings.read_s + base.timings.map_s
        speedup = base_rm / supmr.timings.read_map_s
        speedups.append(speedup)
        ingest_per_chunk = CHUNK / profile.ingest_bw
        map_per_chunk = profile.map_wall_s(CHUNK, 32)
        regime = ("ingest-bound (map fully hidden)"
                  if map_per_chunk < ingest_per_chunk
                  else "compute-bound (ingest fully hidden)")
        table.add_row(f"{factor:g}x", f"{base_rm:.2f}",
                      f"{supmr.timings.read_map_s:.2f}",
                      f"{speedup:.3f}x", regime)

    # Shape assertions-as-comparisons: benefit grows with map weight in
    # the ingest-bound regime, and saturates near the theoretical cap.
    ingest_bound = [s for s, f in zip(speedups, SPECTRUM)
                    if PAPER_WORDCOUNT.map_wall_s(CHUNK, 32) * f
                    < CHUNK / PAPER_WORDCOUNT.ingest_bw]
    monotone = all(a <= b + 1e-9 for a, b in zip(ingest_bound,
                                                 ingest_bound[1:]))
    return ExperimentResult(
        exp_id="ext-spectrum",
        title="Pipeline benefit across the application spectrum "
              "(Conclusions 1 & 4)",
        comparisons=[
            Comparison("speedup monotone while ingest-bound (1=true)",
                       1.0, float(monotone), unit=""),
            Comparison("max speedup across the spectrum (theory ~2.0 cap)",
                       2.0, max(speedups), unit="x"),
        ],
        body=table.render(),
        notes=[
            "speedup 2.0x is the double-buffering ceiling: with map legs "
            "exactly matching ingest legs, every second of each hides a "
            "second of the other",
            "word count sits at 1x on this sweep (speedup ~1.16x); sort's "
            "map is ~0.25x (ingest/map speedup ~1.0, its win comes from "
            "the merge instead — Conclusion 1's two data points",
        ],
    )
