"""Common experiment result structure."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Comparison:
    """One paper-vs-measured data point."""

    metric: str
    paper: float
    measured: float
    unit: str = "s"

    @property
    def relative_error(self) -> float:
        """|measured - paper| / |paper| (inf when paper is 0)."""
        if self.paper == 0:
            return float("inf") if self.measured != 0 else 0.0
        return abs(self.measured - self.paper) / abs(self.paper)

    def render(self) -> str:
        """One aligned paper-vs-measured report line."""
        return (
            f"{self.metric:<40s} paper={self.paper:>9.2f}{self.unit}  "
            f"measured={self.measured:>9.2f}{self.unit}  "
            f"err={100 * self.relative_error:5.1f}%"
        )


@dataclass
class ExperimentResult:
    """What every experiment runner returns."""

    exp_id: str
    title: str
    comparisons: list[Comparison] = field(default_factory=list)
    body: str = ""  # rendered tables / traces
    notes: list[str] = field(default_factory=list)
    artifacts: dict[str, str] = field(default_factory=dict)  # name -> CSV etc.

    def max_relative_error(self) -> float:
        """Largest finite relative error across comparisons."""
        finite = [c.relative_error for c in self.comparisons
                  if c.relative_error != float("inf")]
        return max(finite) if finite else 0.0

    def render(self) -> str:
        """Full report: body, comparisons, notes."""
        lines = [f"== {self.exp_id}: {self.title} ==", ""]
        if self.body:
            lines.append(self.body)
            lines.append("")
        if self.comparisons:
            lines.append("paper vs measured:")
            lines.extend("  " + c.render() for c in self.comparisons)
            lines.append("")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)
