"""Table II: phase-time breakdown for word count and sort.

Regenerates all five rows — word count at chunk sizes {none, 1 GB, 50 GB}
and sort at {none, 1 GB} — on the simulated paper testbed, and compares
every cell to the table's published values.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import AsciiTable
from repro.experiments.base import Comparison, ExperimentResult
from repro.simrt.costmodel import GB_SI, PAPER_SORT, PAPER_WORDCOUNT
from repro.simrt.phases import SimJobResult
from repro.simrt.phoenix_sim import simulate_phoenix_job
from repro.simrt.supmr_sim import simulate_supmr_job
from repro.util.units import fmt_seconds

#: Published Table II values: (app, row) -> column -> seconds.
PAPER_TABLE2: dict[tuple[str, str], dict[str, float]] = {
    ("wordcount", "none"): {
        "total": 471.75, "read": 403.90, "map": 67.41,
        "reduce": 0.03, "merge": 0.01,
    },
    ("wordcount", "1GB"): {
        "total": 407.58, "read_map": 406.14, "reduce": 1.08, "merge": 0.01,
    },
    ("wordcount", "50GB"): {
        "total": 429.76, "read_map": 423.51, "reduce": 0.08, "merge": 0.01,
    },
    ("sort", "none"): {
        "total": 397.31, "read": 182.78, "map": 6.33,
        "reduce": 7.72, "merge": 191.23,
    },
    ("sort", "1GB"): {
        "total": 272.58, "read_map": 196.86, "reduce": 9.04, "merge": 61.14,
    },
}

#: Workload sizes of section VI (SI bytes).
WORDCOUNT_BYTES = 155 * GB_SI
SORT_BYTES = 60 * GB_SI


@dataclass
class Table2Row:
    app: str
    chunk_label: str
    result: SimJobResult


def run_rows(monitor_interval: float = 5.0) -> list[Table2Row]:
    """Simulate all five Table II configurations."""
    rows = [
        Table2Row("wordcount", "none",
                  simulate_phoenix_job(PAPER_WORDCOUNT, WORDCOUNT_BYTES,
                                       monitor_interval=monitor_interval)),
        Table2Row("wordcount", "1GB",
                  simulate_supmr_job(PAPER_WORDCOUNT, WORDCOUNT_BYTES, 1 * GB_SI,
                                     monitor_interval=monitor_interval)),
        Table2Row("wordcount", "50GB",
                  simulate_supmr_job(PAPER_WORDCOUNT, WORDCOUNT_BYTES, 50 * GB_SI,
                                     monitor_interval=monitor_interval)),
        Table2Row("sort", "none",
                  simulate_phoenix_job(PAPER_SORT, SORT_BYTES,
                                       monitor_interval=monitor_interval)),
        Table2Row("sort", "1GB",
                  simulate_supmr_job(PAPER_SORT, SORT_BYTES, 1 * GB_SI,
                                     monitor_interval=monitor_interval)),
    ]
    return rows


def _comparisons_for(row: Table2Row) -> list[Comparison]:
    paper = PAPER_TABLE2[(row.app, row.chunk_label)]
    t = row.result.timings
    measured = {
        "total": t.total_s,
        "read": t.read_s,
        "map": t.map_s,
        "read_map": t.read_map_s,
        "reduce": t.reduce_s,
        "merge": t.merge_s,
    }
    return [
        Comparison(f"{row.app}/{row.chunk_label}/{col}", value, measured[col])
        for col, value in paper.items()
    ]


def run(monitor_interval: float = 5.0) -> ExperimentResult:
    """Run Table II and render it in the paper's layout."""
    rows = run_rows(monitor_interval=monitor_interval)
    table = AsciiTable(["app", "chunks", "total", "read", "map", "reduce", "merge"])
    comparisons: list[Comparison] = []
    for row in rows:
        t = row.result.timings
        if t.read_map_combined:
            read_cell = f"{fmt_seconds(t.read_map_s)} (combined)"
            map_cell = "-"
        else:
            read_cell = fmt_seconds(t.read_s)
            map_cell = fmt_seconds(t.map_s)
        table.add_row(
            row.app, row.chunk_label, fmt_seconds(t.total_s), read_cell,
            map_cell, fmt_seconds(t.reduce_s), fmt_seconds(t.merge_s),
        )
        comparisons.extend(_comparisons_for(row))
    return ExperimentResult(
        exp_id="table2",
        title="Execution times of the job phases (Table II)",
        comparisons=comparisons,
        body=table.render(),
        notes=[
            "word count = 155 GB text, sort = 60 GB terasort records, on the "
            "simulated 32-context / 384 MB/s RAID-0 testbed",
            "rows with chunks report the pipelined read+map phases combined, "
            "as the paper's table does",
        ],
    )
