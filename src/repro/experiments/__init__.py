"""Experiment harness: one module per paper table/figure.

Each experiment regenerates its artifact at paper scale on the simulated
testbed and reports paper-vs-measured values; ``repro.experiments.registry``
maps experiment ids ("table2", "fig1", ...) to runners for the CLI and
the benchmark suite.
"""

from repro.experiments.base import Comparison, ExperimentResult
from repro.experiments.registry import available_experiments, get_experiment, run_experiment

__all__ = [
    "ExperimentResult",
    "Comparison",
    "available_experiments",
    "get_experiment",
    "run_experiment",
]
