"""Fig. 6: SupMR's sort avoids the merge step-down.

Compares the merge-phase traces of the baseline (Fig. 1's step curve)
and SupMR (one high-utilization p-way round), and checks the 3.13x merge
speedup the paper reports.
"""

from __future__ import annotations

from repro.analysis.traces import mean_utilization, sparkline, step_levels, trace_csv
from repro.experiments.base import Comparison, ExperimentResult
from repro.simrt.costmodel import GB_SI, PAPER_SORT
from repro.simrt.phoenix_sim import simulate_phoenix_job
from repro.simrt.supmr_sim import simulate_supmr_job

SORT_BYTES = 60 * GB_SI

PAPER_MERGE_SPEEDUP = 3.13


def run(monitor_interval: float = 1.0) -> ExperimentResult:
    """Regenerate Fig. 6 and check the 3.13x merge speedup."""
    baseline = simulate_phoenix_job(
        PAPER_SORT, SORT_BYTES, monitor_interval=monitor_interval
    )
    supmr = simulate_supmr_job(
        PAPER_SORT, SORT_BYTES, 1 * GB_SI, monitor_interval=monitor_interval
    )

    merge_speedup = baseline.timings.merge_s / supmr.timings.merge_s

    def merge_window(result):
        span = [s for s in result.spans if s.name == "merge"][0]
        return span.start, span.end

    b0, b1 = merge_window(baseline)
    s0, s1 = merge_window(supmr)
    base_steps = [lv for lv in step_levels(baseline.samples, b0, b1) if lv > 1]
    supmr_util = mean_utilization(supmr.samples, s0, s1, busy_only=True)

    body = "\n".join(
        [
            f"baseline merge ({baseline.timings.merge_s:.1f}s), busy plateaus "
            f"{[round(lv) for lv in base_steps]}:",
            sparkline(baseline.samples),
            "",
            f"SupMR merge ({supmr.timings.merge_s:.1f}s), mean busy "
            f"{supmr_util:.0f}% (single p-way round):",
            sparkline(supmr.samples),
        ]
    )
    return ExperimentResult(
        exp_id="fig6",
        title="SupMR sort merge: one p-way round, no step-down (Fig. 6)",
        comparisons=[
            Comparison("sort merge-phase speedup", PAPER_MERGE_SPEEDUP,
                       merge_speedup, unit="x"),
        ],
        body=body,
        notes=[
            f"baseline merge shows {len(base_steps)} utilization plateaus "
            "(block sorts + one per 2-way round); SupMR shows a single "
            "high-utilization round",
        ],
        artifacts={
            "fig6_baseline.csv": trace_csv(baseline.samples),
            "fig6_supmr.csv": trace_csv(supmr.samples),
        },
    )
