"""Fig. 3: OpenMP sort computes faster but finishes slower.

Reproduces section II's comparison: OpenMP's sort (sequential ingest +
sequential parse + parallel sort) versus scale-up MapReduce sort.  The
paper reports the MapReduce compute phase is 214 s *longer*, yet the
OpenMP total is 192 s *slower*, because OpenMP parses with one thread
while the MapReduce map phase parses in parallel.
"""

from __future__ import annotations

from repro.analysis.traces import sparkline, trace_csv
from repro.experiments.base import Comparison, ExperimentResult
from repro.simrt.costmodel import GB_SI, PAPER_SORT
from repro.simrt.openmp_sim import simulate_openmp_sort
from repro.simrt.phoenix_sim import simulate_phoenix_job

SORT_BYTES = 60 * GB_SI

#: Deltas reported in section II for the 60 GB sort.
PAPER_TOTAL_DELTA_S = 192.0
PAPER_COMPUTE_DELTA_S = 214.0


def run(monitor_interval: float = 1.0) -> ExperimentResult:
    """Regenerate Fig. 3's OpenMP-vs-MapReduce comparison."""
    openmp = simulate_openmp_sort(
        PAPER_SORT, SORT_BYTES, monitor_interval=monitor_interval
    )
    mapreduce = simulate_phoenix_job(
        PAPER_SORT, SORT_BYTES, monitor_interval=monitor_interval
    )

    total_delta = openmp.timings.total_s - mapreduce.timings.total_s
    # The paper's "compute" is everything after the input is in memory.
    mr_compute = mapreduce.timings.compute_s
    openmp_compute = openmp.timings.merge_s  # the sort itself
    compute_delta = mr_compute - openmp_compute

    body = "\n".join(
        [
            f"OpenMP     total={openmp.timings.total_s:7.2f}s "
            f"(read={openmp.timings.read_s:.2f}, 1-thread parse="
            f"{openmp.timings.map_s:.2f}, parallel sort={openmp.timings.merge_s:.2f})",
            f"MapReduce  total={mapreduce.timings.total_s:7.2f}s "
            f"(read={mapreduce.timings.read_s:.2f}, map={mapreduce.timings.map_s:.2f}, "
            f"reduce={mapreduce.timings.reduce_s:.2f}, merge={mapreduce.timings.merge_s:.2f})",
            "",
            "OpenMP utilization trace (long 1-thread parse = low flat region):",
            sparkline(openmp.samples),
        ]
    )
    return ExperimentResult(
        exp_id="fig3",
        title="OpenMP sort: faster compute, slower time-to-result (Fig. 3)",
        comparisons=[
            Comparison("OpenMP total minus MapReduce total",
                       PAPER_TOTAL_DELTA_S, total_delta),
            Comparison("MapReduce compute minus OpenMP compute",
                       PAPER_COMPUTE_DELTA_S, compute_delta),
        ],
        body=body,
        notes=[
            "the compute-delta definition is approximate: the paper does not "
            "state which phases it counts as 'compute'; here MapReduce "
            "compute = map+reduce+merge and OpenMP compute = the sort",
        ],
        artifacts={"fig3_openmp_trace.csv": trace_csv(openmp.samples)},
    )
