"""Headline claims of the abstract / section VI, recomputed end-to-end.

The paper summarizes its results as: CPU utilization increases of
50-100%, job-phase speedups of 1.16x-3.13x, and time-to-result speedups
of 1.10x-1.46x.  This experiment derives all three families from the
Table II simulations plus the utilization traces, using the shared
definitions in :mod:`repro.analysis.speedup`.
"""

from __future__ import annotations

from repro.analysis.speedup import phase_speedups
from repro.analysis.traces import mean_utilization
from repro.experiments.base import Comparison, ExperimentResult
from repro.experiments.table2 import run_rows

#: Claimed ranges (abstract / conclusions).
PAPER_PHASE_SPEEDUP_RANGE = (1.16, 3.13)
PAPER_TOTAL_SPEEDUP_RANGE = (1.10, 1.46)
PAPER_UTILIZATION_GAIN_RANGE = (50.0, 100.0)


def run(monitor_interval: float = 2.0) -> ExperimentResult:
    """Recompute the abstract's speedup/utilization ranges."""
    rows = {(r.app, r.chunk_label): r.result
            for r in run_rows(monitor_interval=monitor_interval)}

    wc_base = rows[("wordcount", "none")]
    wc_1gb = rows[("wordcount", "1GB")]
    wc_50gb = rows[("wordcount", "50GB")]
    sort_base = rows[("sort", "none")]
    sort_1gb = rows[("sort", "1GB")]

    def busy(result, t0, t1):
        return mean_utilization(result.samples, t0, t1, busy_only=True)

    wc = phase_speedups(
        wc_base.timings, wc_1gb.timings,
        baseline_util_pct=busy(wc_base, 0, wc_base.timings.total_s),
        optimized_util_pct=busy(wc_1gb, 0, wc_1gb.timings.total_s),
    )
    wc_large = phase_speedups(wc_base.timings, wc_50gb.timings)
    sort = phase_speedups(
        sort_base.timings, sort_1gb.timings,
        baseline_util_pct=busy(sort_base, 0, sort_base.timings.total_s),
        optimized_util_pct=busy(sort_1gb, 0, sort_1gb.timings.total_s),
    )

    # The paper's 1.16x-3.13x range covers the phases each optimization
    # targets at its best chunk size: word count's combined ingest/map
    # (1 GB chunks) and sort's merge.  Sort's own ingest/map cell is
    # slightly *slower* chunked (196.86 vs 189.11) — the paper's range
    # does not include it, and neither do we.
    phase_min = min(wc.read_map, wc_large.read_map, sort.merge)
    phase_max = max(sort.merge, wc.read_map)
    total_min = min(wc_large.total, wc.total, sort.total)
    total_max = max(wc.total, sort.total)

    body = "\n".join(
        [
            f"word count 1GB : read_map x{wc.read_map:.2f}, total x{wc.total:.2f}, "
            f"busy-util gain {wc.utilization_gain_pct:+.0f}%",
            f"word count 50GB: read_map x{wc_large.read_map:.2f}, "
            f"total x{wc_large.total:.2f}",
            f"sort 1GB       : merge x{sort.merge:.2f}, total x{sort.total:.2f}, "
            f"busy-util gain {sort.utilization_gain_pct:+.0f}%",
        ]
    )
    return ExperimentResult(
        exp_id="claims",
        title="Headline claims: speedups and utilization gains (abstract/SVI)",
        comparisons=[
            Comparison("min phase speedup", PAPER_PHASE_SPEEDUP_RANGE[0],
                       phase_min, unit="x"),
            Comparison("max phase speedup", PAPER_PHASE_SPEEDUP_RANGE[1],
                       phase_max, unit="x"),
            Comparison("min time-to-result speedup", PAPER_TOTAL_SPEEDUP_RANGE[0],
                       total_min, unit="x"),
            Comparison("max time-to-result speedup", PAPER_TOTAL_SPEEDUP_RANGE[1],
                       total_max, unit="x"),
            Comparison("sort busy-utilization gain (vs claimed min)",
                       PAPER_UTILIZATION_GAIN_RANGE[0],
                       sort.utilization_gain_pct or 0.0, unit="%"),
        ],
        body=body,
        notes=[
            "phase speedups use the combined read+map cell and the merge "
            "cell, the two phases the optimizations target",
        ],
    )
