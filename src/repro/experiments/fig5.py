"""Fig. 5: word count utilization — no chunks vs 1 GB vs 50 GB chunks.

Reproduces the three traces and the figure's observations: the original
runtime spends a long, low-utilization ingest followed by one compute
spike; 1 GB chunks produce dense spikes (high utilization, best phase
speedup ~1.16x); 50 GB chunks produce sparse, well-defined spikes with
lower utilization (~1.12x wait — the paper quotes 1.16x/1.12x for the
combined ingest/map phases at 1 GB/50 GB respectively).
"""

from __future__ import annotations

from repro.analysis.traces import mean_utilization, sparkline, trace_csv
from repro.experiments.base import Comparison, ExperimentResult
from repro.simrt.costmodel import GB_SI, PAPER_WORDCOUNT
from repro.simrt.phases import SimJobResult
from repro.simrt.phoenix_sim import simulate_phoenix_job
from repro.simrt.supmr_sim import simulate_supmr_job

WORDCOUNT_BYTES = 155 * GB_SI

#: Paper speedups for the combined ingest/map phases (section VI.B).
PAPER_READMAP_SPEEDUP_1GB = 1.16
PAPER_READMAP_SPEEDUP_50GB = 1.12


def run_traces(monitor_interval: float = 1.0) -> dict[str, SimJobResult]:
    """The three word count traces (none / 1 GB / 50 GB)."""
    return {
        "none": simulate_phoenix_job(
            PAPER_WORDCOUNT, WORDCOUNT_BYTES, monitor_interval=monitor_interval
        ),
        "1GB": simulate_supmr_job(
            PAPER_WORDCOUNT, WORDCOUNT_BYTES, 1 * GB_SI,
            monitor_interval=monitor_interval,
        ),
        "50GB": simulate_supmr_job(
            PAPER_WORDCOUNT, WORDCOUNT_BYTES, 50 * GB_SI,
            monitor_interval=monitor_interval,
        ),
    }


def run(monitor_interval: float = 1.0) -> ExperimentResult:
    """Regenerate Fig. 5 and check speedups and spike structure."""
    traces = run_traces(monitor_interval=monitor_interval)
    base = traces["none"].timings

    lines: list[str] = []
    busy: dict[str, float] = {}
    for label, result in traces.items():
        ingest_end = (
            base.read_s if label == "none" else result.timings.read_map_s
        )
        busy[label] = mean_utilization(
            result.samples, 0, ingest_end, busy_only=True
        )
        lines.append(f"(chunks={label:<5s}) {sparkline(result.samples)}")
        lines.append(
            f"             mean busy utilization during ingest/map window: "
            f"{busy[label]:.1f}%"
        )

    speedup_1gb = (base.read_s + base.map_s) / traces["1GB"].timings.read_map_s
    speedup_50gb = (base.read_s + base.map_s) / traces["50GB"].timings.read_map_s

    return ExperimentResult(
        exp_id="fig5",
        title="Word count CPU utilization across ingest chunk sizes (Fig. 5)",
        comparisons=[
            Comparison("ingest/map speedup, 1GB chunks",
                       PAPER_READMAP_SPEEDUP_1GB, speedup_1gb, unit="x"),
            Comparison("ingest/map speedup, 50GB chunks",
                       PAPER_READMAP_SPEEDUP_50GB, speedup_50gb, unit="x"),
        ],
        body="\n".join(lines),
        notes=[
            "small chunks => dense utilization spikes and more busy CPU; "
            f"measured busy%%: none={busy['none']:.1f}, 1GB={busy['1GB']:.1f}, "
            f"50GB={busy['50GB']:.1f}",
            "the paper's footnote 3 applies here too: point sampling can "
            "miss sub-interval 100% bursts at small chunk sizes",
        ],
        artifacts={
            f"fig5_{label}.csv": trace_csv(result.samples)
            for label, result in traces.items()
        },
    )
