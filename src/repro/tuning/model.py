"""Model-based (offline) chunk-size optimization.

The pipelined read+map time for chunk size ``c`` over input ``N`` is

    T(c) = c/r_in  +  sum over overlapped rounds of (max(c/r_in, c/r_map) + o)
         + c_last/r_map

with r_in the effective ingest rate, r_map the aggregate map rate and
``o`` the fixed per-round overhead.  Writing b = min(r_in, r_map) for the
bottleneck and a = max(r_in, r_map) for the other rate, this is
approximately

    T(c) ~ N/b + o*N/c + c/a

whose minimum is the closed form  **c* = sqrt(o * N * a)** — big enough
to amortize round overhead, small enough to keep the serial first ingest
(or the unoverlapped map tail) cheap.  ``optimal_chunk_size`` returns the
closed form refined by a golden-section search over the exact round-level
prediction (which keeps remainder-chunk effects the approximation drops).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.simrt.costmodel import AppCostProfile, chunk_sizes

_GOLDEN = (math.sqrt(5) - 1) / 2


def predict_read_map_s(
    profile: AppCostProfile,
    input_bytes: float,
    chunk_bytes: float,
    contexts: int = 32,
) -> float:
    """Exact round-level prediction of the pipelined read+map wall-clock."""
    if input_bytes <= 0:
        raise ConfigError("input_bytes must be positive")
    if chunk_bytes <= 0:
        raise ConfigError("chunk_bytes must be positive")
    sizes = chunk_sizes(input_bytes, chunk_bytes)
    total = sizes[0] / profile.ingest_bw
    for i in range(1, len(sizes)):
        ingest = sizes[i] / profile.ingest_bw
        map_prev = profile.map_wall_s(sizes[i - 1], contexts)
        total += max(ingest, map_prev) + profile.round_overhead_s
    total += profile.map_wall_s(sizes[-1], contexts)
    return total


def predict_total_s(
    profile: AppCostProfile,
    input_bytes: float,
    chunk_bytes: float,
    contexts: int = 32,
) -> float:
    """Predicted job total: pipelined read+map + reduce + p-way merge."""
    n_rounds = len(chunk_sizes(input_bytes, chunk_bytes))
    read_map = predict_read_map_s(profile, input_bytes, chunk_bytes, contexts)
    reduce_s = profile.reduce_wall_s(input_bytes, n_rounds, chunk_bytes)
    inter = profile.intermediate_bytes(input_bytes)
    merge_s = (inter / contexts / profile.sort_block_bw
               + inter / (contexts * profile.pway_scan_bw(contexts)))
    return read_map + reduce_s + merge_s + profile.setup_supmr_s


@dataclass(frozen=True)
class TuningResult:
    """Outcome of the offline optimizer."""

    chunk_bytes: int
    predicted_read_map_s: float
    closed_form_bytes: float
    n_chunks: int
    baseline_read_map_s: float  # no pipelining: ingest-all + map-all

    @property
    def predicted_speedup(self) -> float:
        return self.baseline_read_map_s / self.predicted_read_map_s


def closed_form_chunk_bytes(
    profile: AppCostProfile, input_bytes: float, contexts: int = 32
) -> float:
    """c* = sqrt(o * N * non-bottleneck-rate) (module docstring)."""
    map_agg = profile.map_bw_per_ctx * contexts
    other = max(profile.ingest_bw, map_agg)
    if profile.round_overhead_s <= 0:
        # No overhead: arbitrarily small chunks are optimal; floor at 1 MB.
        return 1e6
    return math.sqrt(profile.round_overhead_s * input_bytes * other)


def optimal_chunk_size(
    profile: AppCostProfile,
    input_bytes: float,
    contexts: int = 32,
    lo: float = 1e6,
    hi: float | None = None,
    iterations: int = 60,
) -> TuningResult:
    """Minimize the exact prediction by golden-section around c*.

    The exact T(c) is piecewise (chunk counts are integral) so the search
    runs on log(c) over [lo, hi] seeded to bracket the closed form.
    """
    if hi is None:
        hi = input_bytes
    if not 0 < lo < hi:
        raise ConfigError(f"need 0 < lo < hi, got [{lo}, {hi}]")

    def cost(log_c: float) -> float:
        return predict_read_map_s(profile, input_bytes, math.exp(log_c),
                                  contexts)

    a, b = math.log(lo), math.log(hi)
    c1 = b - _GOLDEN * (b - a)
    c2 = a + _GOLDEN * (b - a)
    f1, f2 = cost(c1), cost(c2)
    for _ in range(iterations):
        if f1 <= f2:
            b, c2, f2 = c2, c1, f1
            c1 = b - _GOLDEN * (b - a)
            f1 = cost(c1)
        else:
            a, c1, f1 = c1, c2, f2
            c2 = a + _GOLDEN * (b - a)
            f2 = cost(c2)
    best = math.exp((a + b) / 2)
    best_t = predict_read_map_s(profile, input_bytes, best, contexts)

    baseline = (input_bytes / profile.ingest_bw
                + profile.map_wall_s(input_bytes, contexts))
    return TuningResult(
        chunk_bytes=int(best),
        predicted_read_map_s=best_t,
        closed_form_bytes=closed_form_chunk_bytes(profile, input_bytes,
                                                  contexts),
        n_chunks=len(chunk_sizes(input_bytes, best)),
        baseline_read_map_s=baseline,
    )
