"""Adaptive SupMR on the simulated testbed: the feedback loop, closed.

Identical to :func:`repro.simrt.supmr_sim.simulate_supmr_job` except the
chunk size is chosen round-by-round by a :class:`FeedbackTuner` from the
timings the simulation itself produces — i.e. the full future-work
system: measure, estimate, re-size, repeat.
"""

from __future__ import annotations

from repro.core.result import PhaseTimings, RoundTiming
from repro.simhw.cpu import CpuClass
from repro.simhw.events import Simulator
from repro.simhw.machine import ScaleUpMachine, paper_machine
from repro.simhw.process import AllOf
from repro.simrt.costmodel import AppCostProfile
from repro.simrt.phases import (
    PhaseLog,
    SimJobResult,
    ingest,
    map_wave,
    merge_pway,
    reduce_phase,
)
from repro.tuning.feedback import FeedbackTuner


def simulate_supmr_adaptive(
    profile: AppCostProfile,
    input_bytes: float,
    tuner: FeedbackTuner,
    monitor_interval: float = 1.0,
    machine: ScaleUpMachine | None = None,
) -> SimJobResult:
    """Run the pipeline with the tuner choosing every chunk size."""
    if machine is None:
        sim = Simulator()
        machine = paper_machine(sim, monitor_interval=monitor_interval)
    else:
        sim = machine.sim
    log = PhaseLog(machine)
    rounds: list[RoundTiming] = []
    sizes_used: list[float] = []

    def job():
        t0 = sim.now
        remaining = input_bytes

        # Round 0: serial first ingest at the tuner's initial size.
        size = min(tuner.next_chunk_size(remaining), remaining)
        r0 = sim.now
        yield from ingest(machine, size, profile)
        ingest_s = sim.now - r0
        tuner.record_round(size, ingest_s)
        rounds.append(RoundTiming(0, ingest_s, 0.0, int(size)))
        current = size
        remaining -= size

        index = 0
        while remaining > 0:
            index += 1
            nxt = min(tuner.next_chunk_size(remaining), remaining)
            sizes_used.append(nxt)
            r0 = sim.now
            ing = sim.process(ingest(machine, nxt, profile),
                              name=f"ingest{index}")
            mw = sim.process(map_wave(machine, current, profile),
                             name=f"map{index}")
            yield AllOf(sim, [ing, mw])
            span = sim.now - r0
            yield from machine.compute(profile.round_overhead_s, CpuClass.SYS)
            # The legs overlapped; report the modelled leg times to the
            # tuner the way a real runtime would measure them.
            tuner.record_round(
                ingest_bytes=nxt,
                ingest_s=nxt / profile.ingest_bw,
                map_bytes=current,
                map_s=profile.map_wall_s(current, machine.spec.contexts),
            )
            rounds.append(RoundTiming(index, span, span, int(nxt)))
            current = nxt
            remaining -= nxt

        r0 = sim.now
        yield from map_wave(machine, current, profile)
        rounds.append(RoundTiming(index + 1, 0.0, sim.now - r0, 0))
        log.record("read_map", t0)

        t0 = sim.now
        mean_chunk = (sum(sizes_used) / len(sizes_used)) if sizes_used else None
        yield from reduce_phase(machine, input_bytes, profile,
                                map_rounds=len(rounds) - 1,
                                chunk_bytes=mean_chunk)
        log.record("reduce", t0)

        t0 = sim.now
        yield from merge_pway(machine, profile.intermediate_bytes(input_bytes),
                              profile)
        log.record("merge", t0)

        t0 = sim.now
        yield from machine.compute(profile.setup_supmr_s, CpuClass.SYS)
        log.record("cleanup", t0)

    machine.monitor.start()
    proc = sim.process(job(), name="supmr-adaptive")
    proc.callbacks.append(lambda _ev: machine.monitor.stop())
    sim.run()

    timings = PhaseTimings(
        read_s=log.duration("read_map"),
        map_s=0.0,
        reduce_s=log.duration("reduce"),
        merge_s=log.duration("merge"),
        total_s=log.spans[-1].end,
        read_map_combined=True,
        rounds=tuple(rounds),
    )
    return SimJobResult(
        app=profile.name,
        runtime="supmr-adaptive",
        input_bytes=input_bytes,
        chunk_bytes=None,
        timings=timings,
        samples=machine.monitor.samples,
        spans=log.spans,
        extras={
            "n_chunks": len(rounds) - 1,
            "chunk_sizes": [r.chunk_bytes for r in rounds[:-1]],
            "final_estimate_ingest_bw": tuner.ingest_bw_estimate,
            "final_estimate_map_bw": tuner.map_bw_estimate,
        },
    )
