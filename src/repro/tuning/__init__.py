"""Chunk-size tuning — the paper's future work, implemented.

Section VIII: "Integrating functionality for determining (1) the optimal
chunk size and (2) the optimal runtime parameters could improve the
ingest/map phases but are left as future work."  Section III.A.2 sketches
the shape: "design components that factor in the expected performance and
the workload characteristics (i.e. a feedback loop)".

Two tuners:

* :mod:`repro.tuning.model` — offline: predict the pipelined read+map
  time from the calibrated cost model and minimize it analytically
  (closed form c* = sqrt(overhead x input x non-bottleneck-rate)) with a
  numeric refinement;
* :mod:`repro.tuning.feedback` — online: estimate ingest/map rates from
  observed rounds and re-solve for the next chunk size while the job
  runs, emitting the variable-size schedule that
  :func:`repro.chunking.variable.plan_variable_chunks` consumes.

:mod:`repro.tuning.adaptive_sim` drives the feedback tuner against the
simulated testbed to quantify what the future work would have bought.
"""

from repro.tuning.adaptive_sim import simulate_supmr_adaptive
from repro.tuning.feedback import FeedbackTuner
from repro.tuning.model import (
    TuningResult,
    optimal_chunk_size,
    predict_read_map_s,
    predict_total_s,
)

__all__ = [
    "predict_read_map_s",
    "predict_total_s",
    "optimal_chunk_size",
    "TuningResult",
    "FeedbackTuner",
    "simulate_supmr_adaptive",
]
