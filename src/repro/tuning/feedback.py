"""Online feedback tuner: measure rounds, re-solve the chunk size.

The loop the paper sketches in section III.A.2: the runtime "lacks the
information necessary to make a good decision" up front, but every
pipeline round *produces* that information — the observed ingest and map
leg durations.  The tuner keeps exponentially weighted estimates of the
effective ingest bandwidth and aggregate map rate, and before each round
re-solves the closed form c* = sqrt(o * remaining * non-bottleneck-rate)
for the bytes still to ingest.

The emitted sizes form a schedule consumable by
:func:`repro.chunking.variable.plan_variable_chunks` (offline use) or
are fed round-by-round by :func:`repro.tuning.adaptive_sim.simulate_supmr_adaptive`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass
class _RateEstimate:
    """EWMA over observed (bytes, seconds) pairs."""

    alpha: float
    rate: float | None = None

    def update(self, nbytes: float, seconds: float) -> None:
        if seconds <= 0 or nbytes <= 0:
            return
        observed = nbytes / seconds
        if self.rate is None:
            self.rate = observed
        else:
            self.rate = self.alpha * observed + (1 - self.alpha) * self.rate


class FeedbackTuner:
    """Chooses the next ingest chunk size from observed round timings."""

    def __init__(
        self,
        initial_chunk_bytes: float,
        round_overhead_s: float = 12.5e-3,
        min_chunk_bytes: float = 1e6,
        max_chunk_bytes: float = 100e9,
        max_growth: float = 2.0,
        alpha: float = 0.4,
    ) -> None:
        if initial_chunk_bytes < min_chunk_bytes:
            raise ConfigError("initial chunk below the minimum")
        if not 0 < alpha <= 1:
            raise ConfigError("alpha must be in (0, 1]")
        if max_growth <= 1:
            raise ConfigError("max_growth must exceed 1")
        if round_overhead_s < 0:
            raise ConfigError("round_overhead_s must be non-negative")
        self.round_overhead_s = round_overhead_s
        self.min_chunk_bytes = float(min_chunk_bytes)
        self.max_chunk_bytes = float(max_chunk_bytes)
        self.max_growth = max_growth
        self._current = float(initial_chunk_bytes)
        self._ingest = _RateEstimate(alpha)
        self._map = _RateEstimate(alpha)
        #: (chunk_bytes, ingest_s, map_s) per observed round, for reports.
        self.history: list[tuple[float, float, float]] = []

    # -- observation -------------------------------------------------------

    def record_round(
        self,
        ingest_bytes: float,
        ingest_s: float,
        map_bytes: float = 0.0,
        map_s: float = 0.0,
    ) -> None:
        """Feed one round's measured legs (map legs may be absent in
        round 0 and the ingest leg in the final round)."""
        self._ingest.update(ingest_bytes, ingest_s)
        self._map.update(map_bytes, map_s)
        self.history.append((ingest_bytes, ingest_s, map_s))

    @property
    def ingest_bw_estimate(self) -> float | None:
        return self._ingest.rate

    @property
    def map_bw_estimate(self) -> float | None:
        """Aggregate (all contexts) map throughput estimate."""
        return self._map.rate

    # -- decision -----------------------------------------------------------

    def next_chunk_size(self, remaining_bytes: float) -> int:
        """Size for the next ingest chunk.

        Until both rates are observed, the tuner holds its current size.
        Growth per step is bounded by ``max_growth`` so one noisy round
        cannot triple the chunk (shrinking is unbounded: a too-large
        chunk costs real time, a too-small one only overhead).
        """
        if remaining_bytes <= 0:
            raise ConfigError("no bytes remaining to plan")
        r_in, r_map = self._ingest.rate, self._map.rate
        if r_in and r_map and self.round_overhead_s > 0:
            other = max(r_in, r_map)
            target = math.sqrt(self.round_overhead_s * remaining_bytes * other)
            target = min(target, self._current * self.max_growth)
        else:
            target = self._current
        target = min(max(target, self.min_chunk_bytes), self.max_chunk_bytes,
                     remaining_bytes)
        self._current = target
        return int(target)

    def schedule(self, input_bytes: float, max_rounds: int = 10_000) -> list[int]:
        """Plan a whole schedule offline with the current estimates.

        Useful once a few rounds have been observed (or estimates seeded
        from a previous job on the same system): replays the decision
        rule over the full input without executing it.
        """
        remaining = float(input_bytes)
        saved_current = self._current
        sizes: list[int] = []
        while remaining > 0 and len(sizes) < max_rounds:
            size = self.next_chunk_size(remaining)
            sizes.append(size)
            remaining -= size
        self._current = saved_current
        if remaining > 0:
            raise ConfigError(
                f"schedule did not converge within {max_rounds} rounds"
            )
        return sizes
