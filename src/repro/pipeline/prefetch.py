"""Multi-queue async ingest: N prefetch readers ahead of the mapper.

:class:`~repro.pipeline.double_buffer.DoubleBufferedPipeline` is the
paper's schedule verbatim — exactly one ingest thread, one chunk of
lookahead.  That is the right shape when one reader saturates the disk,
but once mapper waves get short (persistent pool, shm transport) a
single reader becomes the bottleneck: the mapper finishes chunk ``i``
before chunk ``i+1`` has landed and the pipeline degrades to serial.

:class:`PrefetchPipeline` generalizes the schedule: ``readers`` threads
pull chunk indices from a shared cursor and load concurrently into a
bounded window of ``depth`` buffered chunks (the memory cap — a permit
is taken before a load starts and returned when the mapper consumes the
chunk).  The *consumption* order is unchanged — chunk ``i`` is always
mapped before chunk ``i+1``, so container absorption order and output
digests are byte-identical to the double-buffered pipeline — and the
QoS token bucket is charged inside each ``load`` exactly once per
chunk, same as before (readers contend on the bucket's lock, never
double-charge).

Round records keep the ``n + 1`` shape the runtimes and ``--timeline``
expect: ``ingest_s`` is the reader-measured load time of that round's
chunk, ``map_s`` the map time of the previous one.

A load error (or an injector giving up) is re-raised at the round that
*consumes* the failed chunk, preserving the owning-round attribution of
the single-threaded pipeline; any error — including a mid-wave
``DeadlineExceeded`` — stops and joins every reader before propagating,
so no thread outlives the run.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Sequence

from repro.chunking.chunk import Chunk
from repro.errors import RuntimeStateError
from repro.pipeline.double_buffer import LoadFn, RoundRecord, WorkFn
from repro.util.logging import get_logger

logger = get_logger(__name__)


class PrefetchPipeline:
    """Drives chunks through load/work with N readers of bounded lookahead."""

    def __init__(
        self,
        load: LoadFn,
        work: WorkFn,
        readers: int = 2,
        depth: "int | None" = None,
    ) -> None:
        if readers < 1:
            raise RuntimeStateError("prefetch pipeline needs >= 1 reader")
        self._load = load
        self._work = work
        self.readers = readers
        self.depth = max(depth if depth is not None else readers + 1, 1)

    def run(self, chunks: Sequence[Chunk]) -> list[RoundRecord]:
        """Drive all chunks; returns one record per round (n+1 total)."""
        if not chunks:
            raise RuntimeStateError("pipeline needs at least one chunk")
        n = len(chunks)
        #: index -> ("ok", data, elapsed) | ("error", exc, elapsed)
        results: dict[int, tuple] = {}
        ready = threading.Condition()
        cursor = [0]
        window = threading.Semaphore(self.depth)
        stop = threading.Event()

        def reader() -> None:
            while True:
                window.acquire()
                if stop.is_set():
                    return
                with ready:
                    i = cursor[0]
                    if i >= n:
                        return
                    cursor[0] = i + 1
                t0 = time.perf_counter()
                try:
                    entry = ("ok", self._load(chunks[i]),
                             time.perf_counter() - t0)
                except BaseException as exc:  # noqa: BLE001 - re-raised by owner
                    entry = ("error", exc, time.perf_counter() - t0)
                with ready:
                    results[i] = entry
                    ready.notify_all()

        def take(i: int) -> tuple[Any, float]:
            """Block for chunk ``i``; frees its window slot to the readers."""
            with ready:
                while i not in results:
                    ready.wait()
                kind, value, elapsed = results.pop(i)
            window.release()
            if kind == "error":
                raise value
            return value, elapsed

        threads = [
            threading.Thread(
                target=reader, daemon=True, name=f"prefetch-{r}",
            )
            for r in range(min(self.readers, n))
        ]
        records: list[RoundRecord] = []
        try:
            for thread in threads:
                thread.start()

            # Round 0: nothing to overlap the first chunk with (though the
            # readers are already loading chunks 1.. behind it).
            t0 = time.perf_counter()
            current, ingest_s = take(0)
            records.append(
                RoundRecord(
                    0, 0, ingest_s, 0.0,
                    time.perf_counter() - t0, chunks[0].length,
                )
            )

            for i in range(1, n):
                round_t0 = time.perf_counter()
                self._work(chunks[i - 1], current)
                map_s = time.perf_counter() - round_t0
                current, ingest_s = take(i)
                span = time.perf_counter() - round_t0
                logger.debug(
                    "prefetch round %d: ingest=%.4fs map=%.4fs span=%.4fs "
                    "chunk=%dB",
                    i, ingest_s, map_s, span, chunks[i].length,
                )
                records.append(
                    RoundRecord(i, i, ingest_s, map_s, span, chunks[i].length)
                )

            # Final round: map the last chunk with nothing left to ingest.
            t0 = time.perf_counter()
            self._work(chunks[-1], current)
            map_s = time.perf_counter() - t0
            records.append(RoundRecord(n, None, 0.0, map_s, map_s, 0))
            return records
        finally:
            # Reached on success and on any error (including a mid-wave
            # DeadlineExceeded): wake every reader — whether blocked on
            # the window or mid-load — and join them all, so no thread
            # or open file handle outlives the run.
            stop.set()
            for _ in threads:
                window.release()
            for thread in threads:
                thread.join()
