"""The ingest chunk pipeline (double buffering)."""

from repro.pipeline.double_buffer import DoubleBufferedPipeline, RoundRecord

__all__ = ["DoubleBufferedPipeline", "RoundRecord"]
