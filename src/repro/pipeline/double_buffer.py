"""Double-buffered ingest/compute pipeline (paper sections III.B, Fig. 4).

The schedule is the paper's pseudo-code verbatim::

    partition input into ingest chunks
    ingest 1st chunk
    for each ingest chunk do
        create thread to ingest next chunk
        run mappers on previous chunk
        destroy thread
    end
    run mappers on last chunk

giving ``n + 1`` rounds for ``n`` chunks: a serial first ingest, ``n-1``
overlapped rounds, and a final unoverlapped map.  The ingest side runs on
a real background thread — file reads release the GIL, so the overlap is
genuine even under CPython.  ``pipelined=False`` runs the same schedule
synchronously (identical results; used for deterministic tests and the
overlap-ablation bench).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.chunking.chunk import Chunk
from repro.errors import RuntimeStateError
from repro.util.logging import get_logger

logger = get_logger(__name__)

LoadFn = Callable[[Chunk], bytes]
WorkFn = Callable[[Chunk, bytes], None]


@dataclass(frozen=True)
class RoundRecord:
    """Timing of one pipeline round.

    ``ingest_s`` is the load time of chunk ``ingest_index`` and ``map_s``
    the map time of the previous chunk; in an overlapped round the wall
    clock advance is ~max of the two.
    """

    index: int
    ingest_index: int | None
    ingest_s: float
    map_s: float
    span_s: float
    chunk_bytes: int


class DoubleBufferedPipeline:
    """Drives chunks through load/work with one ingest thread of lookahead."""

    def __init__(self, load: LoadFn, work: WorkFn, pipelined: bool = True) -> None:
        self._load = load
        self._work = work
        self.pipelined = pipelined

    def run(self, chunks: Sequence[Chunk]) -> list[RoundRecord]:
        """Drive all chunks; returns one record per round (n+1 total)."""
        if not chunks:
            raise RuntimeStateError("pipeline needs at least one chunk")
        records: list[RoundRecord] = []

        # Round 0: serial ingest of the first chunk (nothing to overlap).
        t0 = time.perf_counter()
        current_data = self._load(chunks[0])
        ingest_s = time.perf_counter() - t0
        records.append(
            RoundRecord(0, 0, ingest_s, 0.0, ingest_s, chunks[0].length)
        )

        for i in range(1, len(chunks)):
            nxt = chunks[i]
            round_t0 = time.perf_counter()
            if self.pipelined:
                box: dict[str, Any] = {}
                thread = threading.Thread(
                    target=self._load_into, args=(nxt, box), daemon=True,
                    name=f"ingest-{nxt.index}",
                )
                thread.start()
                map_t0 = time.perf_counter()
                try:
                    self._work(chunks[i - 1], current_data)
                    map_s = time.perf_counter() - map_t0
                finally:
                    # Join even when the map wave fails: an abandoned
                    # ingest thread would leak and keep the file handle
                    # (and a chunk of memory) alive past the error.
                    thread.join()
                if "error" in box:
                    raise box["error"]
                current_data = box["data"]
                ingest_s = box["elapsed"]
            else:
                map_t0 = time.perf_counter()
                self._work(chunks[i - 1], current_data)
                map_s = time.perf_counter() - map_t0
                load_t0 = time.perf_counter()
                current_data = self._load(nxt)
                ingest_s = time.perf_counter() - load_t0
            span = time.perf_counter() - round_t0
            logger.debug(
                "round %d: ingest=%.4fs map=%.4fs span=%.4fs chunk=%dB",
                i, ingest_s, map_s, span, nxt.length,
            )
            records.append(RoundRecord(i, i, ingest_s, map_s, span, nxt.length))

        # Final round: map the last chunk with nothing left to ingest.
        t0 = time.perf_counter()
        self._work(chunks[-1], current_data)
        map_s = time.perf_counter() - t0
        records.append(RoundRecord(len(chunks), None, 0.0, map_s, map_s, 0))
        return records

    def _load_into(self, chunk: Chunk, box: dict[str, Any]) -> None:
        t0 = time.perf_counter()
        try:
            box["data"] = self._load(chunk)
        except BaseException as exc:  # noqa: BLE001 - crossed to main thread
            box["error"] = exc
        finally:
            box["elapsed"] = time.perf_counter() - t0
