"""Dynamic task scheduler: Phoenix++'s work-queue discipline.

Phoenix++ "creates and maintains all the data structures, schedules all
map, reduce, and merge tasks" (section V) — tasks are pulled from a
shared queue by a fixed pool of worker threads, so a slow split doesn't
idle the other workers (dynamic load balancing, unlike static
one-split-per-thread assignment).

:class:`TaskScheduler` is that discipline with observability: per-task
wall times, per-worker task counts, and queue-wait accounting — numbers
the runtime exposes and tests assert on.  It intentionally has no
dependency on the rest of the runtime; ``execution.py``'s pools could be
swapped for it wholesale, and the scheduler tests exercise it against
the same wave shapes.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import (
    ConfigError,
    DrainTimeout,
    RetryExhausted,
    RuntimeStateError,
)
from repro.faults.policy import DEFAULT_RETRYABLE, RecoveryPolicy


@dataclass(frozen=True)
class TaskRecord:
    """One executed task's accounting."""

    task_id: int
    worker: int
    queued_s: float  # time spent waiting in the queue
    run_s: float  # execution wall time
    error: BaseException | None = None
    #: Which attempt this execution was (0 = first try).
    attempt: int = 0
    #: True when this failed attempt was requeued for another try.
    retried: bool = False


@dataclass
class SchedulerStats:
    records: list[TaskRecord] = field(default_factory=list)
    #: Tasks submitted but not yet finished at the time the stats were
    #: read (0 after a successful drain).
    pending: int = 0

    @property
    def tasks(self) -> int:
        return len(self.records)

    @property
    def retries(self) -> int:
        """Failed attempts that were requeued under the retry policy."""
        return sum(1 for r in self.records if r.retried)

    @property
    def total_run_s(self) -> float:
        return sum(r.run_s for r in self.records)

    @property
    def mean_queue_wait_s(self) -> float:
        if not self.records:
            return 0.0
        return sum(r.queued_s for r in self.records) / len(self.records)

    def per_worker_counts(self) -> dict[int, int]:
        """Tasks executed per worker id."""
        counts: dict[int, int] = {}
        for r in self.records:
            counts[r.worker] = counts.get(r.worker, 0) + 1
        return counts


class TaskScheduler:
    """Fixed worker pool draining a shared FIFO task queue.

    ``submit`` enqueues ``fn(*args)``; ``drain`` blocks until everything
    submitted so far has run and re-raises the first task error.  The
    scheduler is reusable across waves (submit/drain cycles) and must be
    ``shutdown()`` (or used as a context manager) when done.

    With a ``retry_policy``, a task that fails with a ``retryable``
    exception is requeued (after backoff) up to ``max_retries`` times
    before the failure counts — Hadoop-style task re-execution brought to
    the shared-queue discipline.  Exhausted tasks surface as
    :class:`~repro.errors.RetryExhausted` from ``drain``, chained from
    the last underlying failure.
    """

    _SENTINEL = object()

    def __init__(
        self,
        workers: int,
        name: str = "phoenix-pool",
        retry_policy: RecoveryPolicy | None = None,
        retryable: tuple[type[BaseException], ...] = DEFAULT_RETRYABLE,
    ) -> None:
        if workers < 1:
            raise ConfigError("need at least one worker")
        self.workers = workers
        self.name = name
        self.retry_policy = retry_policy
        self.retryable = retryable
        self._queue: "queue.Queue[Any]" = queue.Queue()
        self._stats = SchedulerStats()
        self._stats_lock = threading.Lock()
        self._pending = 0
        self._pending_lock = threading.Lock()
        self._idle = threading.Event()
        self._idle.set()
        self._first_error: BaseException | None = None
        self._shutdown = False
        self._next_task_id = 0
        self._threads = [
            threading.Thread(target=self._worker_loop, args=(i,),
                             name=f"{name}-{i}", daemon=True)
            for i in range(workers)
        ]
        for t in self._threads:
            t.start()

    # -- submission ---------------------------------------------------------

    def submit(self, fn: Callable[..., Any], *args: Any) -> int:
        """Enqueue a task; returns its task id."""
        if self._shutdown:
            raise RuntimeStateError("submit() after shutdown")
        with self._pending_lock:
            task_id = self._next_task_id
            self._next_task_id += 1
            self._pending += 1
            self._idle.clear()
        self._queue.put((task_id, time.perf_counter(), fn, args, 0))
        return task_id

    def drain(self, timeout: float | None = None) -> None:
        """Wait until all submitted tasks completed; re-raise first error.

        Raises :class:`~repro.errors.DrainTimeout` (carrying the pending
        count) when ``timeout`` elapses with tasks still outstanding.
        """
        if not self._idle.wait(timeout):
            with self._pending_lock:
                pending = self._pending
            raise DrainTimeout(
                f"{self.name}: drain timed out with {pending} pending",
                pending=pending,
            )
        if self._first_error is not None:
            error, self._first_error = self._first_error, None
            raise error

    def map_wave(self, fn: Callable[..., Any], items: list[Any]) -> None:
        """Submit one task per item and drain — one mapper wave."""
        for item in items:
            self.submit(fn, item)
        self.drain()

    # -- lifecycle -----------------------------------------------------------

    def shutdown(self) -> None:
        """Stop the workers and join them (idempotent)."""
        if self._shutdown:
            return
        self._shutdown = True
        for _ in self._threads:
            self._queue.put(TaskScheduler._SENTINEL)
        for t in self._threads:
            t.join()

    def __enter__(self) -> "TaskScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    @property
    def stats(self) -> SchedulerStats:
        """Live accounting; ``pending`` is refreshed on every read."""
        with self._pending_lock:
            self._stats.pending = self._pending
        return self._stats

    # -- worker side -----------------------------------------------------------

    def _worker_loop(self, worker_id: int) -> None:
        while True:
            item = self._queue.get()
            if item is TaskScheduler._SENTINEL:
                return
            task_id, enqueued, fn, args, attempt = item
            started = time.perf_counter()
            error: BaseException | None = None
            try:
                fn(*args)
            except BaseException as exc:  # noqa: BLE001 - reported via drain
                error = exc
            finished = time.perf_counter()
            retrying = (
                error is not None
                and self.retry_policy is not None
                and isinstance(error, self.retryable)
                and attempt < self.retry_policy.max_retries
            )
            record = TaskRecord(
                task_id=task_id,
                worker=worker_id,
                queued_s=started - enqueued,
                run_s=finished - started,
                error=error,
                attempt=attempt,
                retried=retrying,
            )
            if retrying:
                # The requeued attempt inherits the task's pending slot,
                # so drain() keeps waiting for the retry to resolve.
                with self._stats_lock:
                    self._stats.records.append(record)
                delay = self.retry_policy.backoff_s(attempt)
                if delay > 0:
                    time.sleep(delay)
                self._queue.put(
                    (task_id, time.perf_counter(), fn, args, attempt + 1)
                )
                continue
            if (
                error is not None
                and self.retry_policy is not None
                and isinstance(error, self.retryable)
            ):
                exhausted = RetryExhausted(
                    f"task {task_id}: {attempt + 1} attempt(s) failed "
                    f"(retry budget {self.retry_policy.max_retries}); "
                    f"last error: {error}",
                    site="scheduler.task",
                    attempts=attempt + 1,
                )
                exhausted.__cause__ = error
                error = exhausted
            with self._stats_lock:
                self._stats.records.append(record)
                if error is not None and self._first_error is None:
                    self._first_error = error
            with self._pending_lock:
                self._pending -= 1
                if self._pending == 0:
                    self._idle.set()
