"""Iterative jobs: ingest once, compute many times (Twister/HaLoop lineage).

SupMR's persistent container comes from the iterative-MapReduce line of
work the paper cites ([8] Twister, [11] HaLoop): jobs like k-means run
the same input through many map/reduce passes, and re-ingesting it every
iteration wastes exactly the bandwidth SupMR exists to save.

:class:`IterativeSession` ingests the input through the chunk pipeline
**once** — overlapping that first pass's map with ingest as usual — and
caches the loaded chunk bytes in memory (scale-up's whole premise is
that the input fits).  Subsequent iterations run mapper waves straight
from the cache: no disk reads at all, so every later iteration's
read+map cost is just the map.
"""

from __future__ import annotations

from typing import Callable

from repro.chunking.chunk import Chunk, ChunkPlan
from repro.chunking.planner import plan_chunks
from repro.core.execution import merge_outputs, run_mapper_wave, run_reducers
from repro.core.job import JobSpec
from repro.core.options import ChunkStrategy, RuntimeOptions
from repro.core.result import JobResult, PhaseTimings
from repro.core.timers import PhaseTimer
from repro.errors import ConfigError, RuntimeStateError
from repro.parallel.backends import make_pool
from repro.pipeline.double_buffer import DoubleBufferedPipeline


class IterativeSession:
    """Cached-input session for running many jobs over one ingest.

    Usage::

        with IterativeSession(inputs, codec, options) as session:
            r1 = session.run(job_for_iteration_1)   # pipelined ingest
            r2 = session.run(job_for_iteration_2)   # from cache
    """

    def __init__(self, inputs, codec, options: RuntimeOptions) -> None:
        if options.chunk_strategy is ChunkStrategy.NONE:
            raise ConfigError(
                "IterativeSession streams ingest chunks; pick a chunk "
                "strategy (supmr_interfile / supmr_intrafile / ...)"
            )
        self.options = options
        self.codec = codec
        self.inputs = tuple(inputs)
        self.plan: ChunkPlan = plan_chunks(self.inputs, codec, options)
        self._cache: list[bytes] | None = None
        self.iterations = 0

    # -- context manager ---------------------------------------------------

    def __enter__(self) -> "IterativeSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Drop the cached chunks."""
        self._cache = None

    @property
    def cached(self) -> bool:
        return self._cache is not None

    @property
    def cached_bytes(self) -> int:
        return sum(len(b) for b in (self._cache or ()))

    # -- execution -----------------------------------------------------------

    def run(self, job: JobSpec) -> JobResult:
        """Run one iteration; the first ingests+caches, later ones reuse."""
        if tuple(job.inputs) != self.inputs:
            raise RuntimeStateError(
                "job inputs differ from the session's cached inputs"
            )
        self.iterations += 1
        if self._cache is None:
            return self._run_and_fill_cache(job)
        return self._run_from_cache(job)

    def _run_and_fill_cache(self, job: JobSpec) -> JobResult:
        cache: list[bytes] = []
        options = self.options
        timer = PhaseTimer()
        container = job.container_factory()

        with make_pool(options.executor_backend, options.num_mappers) as pool:

            def work(chunk: Chunk, data: bytes) -> None:
                cache.append(data)
                run_mapper_wave(job, container, data, options, pool,
                                chunk_index=chunk.index)

            pipeline = DoubleBufferedPipeline(
                load=lambda chunk: chunk.load(),
                work=work,
                pipelined=options.pipelined_ingest,
            )
            with timer.phase("total"):
                with timer.phase("read_map"):
                    pipeline.run(list(self.plan.chunks))
                with timer.phase("reduce"):
                    runs = run_reducers(job, container, options, pool)
                with timer.phase("merge"):
                    output, merge_rounds = merge_outputs(runs, job, options)

        self._cache = cache
        return self._result(job, output, timer, container, merge_rounds,
                            from_cache=False)

    def _run_from_cache(self, job: JobSpec) -> JobResult:
        assert self._cache is not None
        options = self.options
        timer = PhaseTimer()
        container = job.container_factory()

        with make_pool(options.executor_backend, options.num_mappers) as pool:
            with timer.phase("total"):
                with timer.phase("read_map"):  # no reads: pure map
                    for chunk, data in zip(self.plan.chunks, self._cache):
                        run_mapper_wave(job, container, data, options, pool,
                                        chunk_index=chunk.index)
                with timer.phase("reduce"):
                    runs = run_reducers(job, container, options, pool)
                with timer.phase("merge"):
                    output, merge_rounds = merge_outputs(runs, job, options)

        return self._result(job, output, timer, container, merge_rounds,
                            from_cache=True)

    def _result(self, job, output, timer, container, merge_rounds,
                from_cache: bool) -> JobResult:
        timings = PhaseTimings(
            read_s=timer.elapsed("read_map"),
            map_s=0.0,
            reduce_s=timer.elapsed("reduce"),
            merge_s=timer.elapsed("merge"),
            total_s=timer.elapsed("total"),
            read_map_combined=True,
        )
        return JobResult(
            job_name=job.name,
            runtime="supmr-iterative",
            output=output,
            timings=timings,
            container_stats=container.stats(),
            input_bytes=self.plan.total_bytes,
            n_chunks=self.plan.n_chunks,
            counters={
                "merge_rounds": merge_rounds,
                "iteration": self.iterations,
                "from_cache": from_cache,
            },
        )
