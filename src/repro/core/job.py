"""Job specification: what the application supplies to the runtime.

Mirrors the Phoenix++ application contract (section V): the app provides
map/reduce callbacks and a container choice; SupMR apps additionally may
provide the ``set_data()`` callback, which the runtime invokes once per
ingest chunk to hand back "the chunk length and ingest chunk pointer"
(Table I) before mappers run on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Hashable, Iterable, Sequence

from repro.chunking.chunk import Chunk
from repro.containers.base import Container, Emitter
from repro.containers.combiners import Combiner
from repro.errors import ConfigError
from repro.io.records import RecordCodec
from repro.io.span import ByteSpan

#: ``map_fn(ctx)`` parses ``ctx.data`` and emits via ``ctx.emit`` —
#: applications parse their own input, as Phoenix++ map tasks do.
MapFn = Callable[["MapContext"], None]
#: ``reduce_fn(key, values) -> iterable of (key, value)`` output pairs.
ReduceFn = Callable[[Hashable, Sequence[Any]], Iterable[tuple[Hashable, Any]]]
#: SupMR's set_data callback: (chunk, length) -> None.
SetDataFn = Callable[[Chunk, int], None]
#: Sort key for the merge phase, applied to output (key, value) pairs.
OutputKeyFn = Callable[[tuple[Hashable, Any]], Any]


@dataclass
class MapContext:
    """Everything one map task sees: its split bytes and an emit handle.

    ``data`` is bytes-like, not always ``bytes``: the zero-copy ingest
    path hands map functions a :class:`~repro.io.span.ByteSpan` window
    over the ingest buffer (thread/serial backends) or over a worker's
    ``mmap`` of the input file (process backend).  Spans support the
    full codec surface — ``find``, ``len``, slicing, ``endswith`` — and
    record slices come out as real ``bytes``; call ``bytes(ctx.data)``
    only if a whole-split copy is genuinely needed.
    """

    data: "bytes | bytearray | ByteSpan"
    emitter: Emitter
    task_id: int
    chunk_index: int = 0

    def emit(self, key: Hashable, value: Any) -> None:
        """Emit one intermediate (key, value) pair."""
        self.emitter.emit(key, value)


def identity_reduce(
    key: Hashable, values: Sequence[Any]
) -> Iterable[tuple[Hashable, Any]]:
    """Default reduce: pass every value through unchanged."""
    for value in values:
        yield (key, value)


def _default_output_key(pair: tuple[Hashable, Any]) -> Any:
    return pair[0]


@dataclass
class JobSpec:
    """A MapReduce job: inputs, callbacks, container, codec."""

    name: str
    inputs: tuple[Path, ...]
    map_fn: MapFn
    container_factory: Callable[[], Container]
    reduce_fn: ReduceFn = identity_reduce
    codec: RecordCodec = field(default_factory=RecordCodec)
    #: Merge-phase sort key over output (key, value) pairs.
    output_key: OutputKeyFn = _default_output_key
    #: SupMR callback (Table I): observe each chunk before mapping it.
    set_data: SetDataFn | None = None
    #: Skip the merge phase entirely (jobs with unordered output).
    sorted_output: bool = True
    #: Emit-level combiner safe to fold *raw* emitted values at spill
    #: time (combine-on-spill under a memory budget).  Jobs whose
    #: container already combines on insert (hash container) can leave
    #: this None — the spill subsystem picks the container's combiner up
    #: automatically.
    spill_combiner: Combiner | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("job needs a name")
        self.inputs = tuple(Path(p) for p in self.inputs)
        if not self.inputs:
            raise ConfigError(f"job {self.name!r} has no input files")

    @property
    def total_input_bytes(self) -> int:
        return sum(p.stat().st_size for p in self.inputs)
