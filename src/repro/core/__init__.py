"""The executable MapReduce runtimes: Phoenix baseline and SupMR.

:class:`repro.core.phoenix.PhoenixRuntime` reproduces the traditional
scale-up flow (ingest everything, then map, reduce, 2-way merge rounds);
:class:`repro.core.supmr.SupMRRuntime` adds the paper's contributions —
the ingest chunk pipeline, the persistent intermediate container, and the
single-pass p-way merge — behind the ``run_ingestMR()``-style entry point
:func:`repro.core.supmr.run_ingest_mr`.
"""

from repro.core.job import JobSpec, MapContext
from repro.core.options import ChunkStrategy, MergeAlgorithm, RuntimeOptions
from repro.core.phoenix import PhoenixRuntime
from repro.core.result import JobResult, PhaseTimings, RoundTiming
from repro.core.supmr import SupMRRuntime, run_ingest_mr
from repro.core.timers import PhaseTimer

__all__ = [
    "JobSpec",
    "MapContext",
    "RuntimeOptions",
    "ChunkStrategy",
    "MergeAlgorithm",
    "PhoenixRuntime",
    "SupMRRuntime",
    "run_ingest_mr",
    "JobResult",
    "PhaseTimings",
    "RoundTiming",
    "PhaseTimer",
]
