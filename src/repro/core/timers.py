"""Phase timing with microsecond granularity.

The paper measures with "the Phoenix++ internal timing functions ...
start/stop a timer and print the elapsed time with microsecond
granularity" (section VI.A, footnote 2: Linux ``time.h``).  The Python
equivalent is ``time.perf_counter``; :class:`PhaseTimer` accumulates
named phases, supports re-entry (a phase timed in several slices sums),
and snapshots cleanly for reporting.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Iterator

from repro.errors import RuntimeStateError


class PhaseTimer:
    """Accumulating named stopwatch; phases may nest (LIFO)."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._elapsed: dict[str, float] = {}
        self._stack: list[tuple[str, float]] = []

    def start(self, phase: str) -> None:
        """Begin timing ``phase`` (may nest inside other phases)."""
        if any(name == phase for name, _t0 in self._stack):
            raise RuntimeStateError(f"phase {phase!r} is already running")
        self._stack.append((phase, self._clock()))

    def stop(self, phase: str) -> float:
        """Stop ``phase`` (must be the innermost); returns the slice."""
        if not self._stack or self._stack[-1][0] != phase:
            running = self._stack[-1][0] if self._stack else None
            raise RuntimeStateError(
                f"stop({phase!r}) but innermost running phase is {running!r}"
            )
        _name, t0 = self._stack.pop()
        slice_s = self._clock() - t0
        self._elapsed[phase] = self._elapsed.get(phase, 0.0) + slice_s
        return slice_s

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """``with timer.phase("read"): ...``"""
        self.start(name)
        try:
            yield
        finally:
            self.stop(name)

    def elapsed(self, phase: str) -> float:
        """Accumulated seconds for ``phase`` (0.0 if never run)."""
        return self._elapsed.get(phase, 0.0)

    def add(self, phase: str, seconds: float) -> None:
        """Fold in an externally measured slice (pipeline threads)."""
        if seconds < 0:
            raise RuntimeStateError(f"negative time slice for {phase!r}")
        self._elapsed[phase] = self._elapsed.get(phase, 0.0) + seconds

    def snapshot(self) -> dict[str, float]:
        """All accumulated phase times; no phase may be running."""
        if self._stack:
            raise RuntimeStateError(
                f"snapshot with phase {self._stack[-1][0]!r} still running"
            )
        return dict(self._elapsed)
