"""Job results and phase timing breakdowns.

:class:`PhaseTimings` carries the same columns as the paper's Table II —
total / read / map / reduce / merge — plus the per-round detail SupMR's
pipeline produces.  When the ingest pipeline is active, read and map
overlap; ``read_map_combined`` marks that, and reports print the combined
figure across both columns exactly as the paper's table does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable

from repro.containers.base import ContainerStats
from repro.faults.log import FaultLog
from repro.spill.stats import SpillStats


@dataclass(frozen=True)
class RoundTiming:
    """One pipeline round: the ingest and map work that overlapped."""

    index: int
    ingest_s: float
    map_s: float
    chunk_bytes: int

    @property
    def span_s(self) -> float:
        """Wall-clock of the round (the slower of the two overlapped legs)."""
        return max(self.ingest_s, self.map_s)


@dataclass(frozen=True)
class PhaseTimings:
    """Wall-clock seconds per job phase (Table II columns)."""

    read_s: float
    map_s: float
    reduce_s: float
    merge_s: float
    total_s: float
    read_map_combined: bool = False
    rounds: tuple[RoundTiming, ...] = ()
    #: Wall-clock spent writing spill runs (0 for in-memory execution).
    spill_s: float = 0.0

    @property
    def read_map_s(self) -> float:
        """Combined ingest+map wall-clock (the merged Table II cell)."""
        return self.read_s + self.map_s

    @property
    def compute_s(self) -> float:
        """Everything after ingest: map + reduce + merge."""
        return self.map_s + self.reduce_s + self.merge_s

    def speedup_vs(self, baseline: "PhaseTimings") -> dict[str, float]:
        """Per-phase speedup factors of ``baseline`` over self."""

        def ratio(b: float, s: float) -> float:
            return b / s if s > 0 else float("inf")

        return {
            "total": ratio(baseline.total_s, self.total_s),
            "read_map": ratio(baseline.read_map_s, self.read_map_s),
            "reduce": ratio(baseline.reduce_s, self.reduce_s),
            "merge": ratio(baseline.merge_s, self.merge_s),
        }


@dataclass
class JobResult:
    """Everything a finished job reports."""

    job_name: str
    runtime: str  # "phoenix" | "supmr"
    output: list[tuple[Hashable, Any]]
    timings: PhaseTimings
    container_stats: ContainerStats
    input_bytes: int
    n_chunks: int = 1
    counters: dict[str, Any] = field(default_factory=dict)
    #: Out-of-core counters; None when no memory budget was set.
    spill_stats: SpillStats | None = None
    #: Injection/recovery audit trail; None when no fault plan was armed.
    fault_log: FaultLog | None = None

    @property
    def n_output_pairs(self) -> int:
        return len(self.output)

    def output_keys(self) -> list[Hashable]:
        """The output keys, in output order."""
        return [k for k, _v in self.output]

    def output_digest(self) -> str:
        """A sha256 digest of the ordered output pairs.

        Two runs produced byte-identical output iff their digests match;
        the crash/resume tests and the CI smoke job diff this instead of
        shipping full outputs around.
        """
        import hashlib

        h = hashlib.sha256()
        for key, value in self.output:
            h.update(repr((key, value)).encode())
        return h.hexdigest()
