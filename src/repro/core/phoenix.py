"""The baseline scale-up runtime (Phoenix++-shaped).

The "original runtime" of the paper's Table II rows labelled *none*: the
whole input is ingested into memory first, then mapper threads run over
input splits, reducers coalesce, and the merge phase combines per-reducer
sorted runs with iterative 2-way merge rounds.  The ingest is one
serial scan (the long low-utilization prefix of Figs. 1/5a) and the merge
re-scans keys every round (the step-down tail of Fig. 1).

Resilience (PR 4): the baseline shares the SupMR runtime's degradation
ladder and deadline handling, and — having no ingest rounds to journal —
checkpoints only the reduced stage, so a crash during the merge phase
resumes straight into the merge.
"""

from __future__ import annotations

import time

from repro.chunking.planner import plan_whole_input
from repro.core.execution import (
    ProcessPoolContext,
    build_container,
    merge_outputs,
    run_mapper_wave,
    run_reducers,
)
from repro.core.job import JobSpec
from repro.core.options import ChunkStrategy, MergeAlgorithm, RuntimeOptions
from repro.core.result import JobResult, PhaseTimings
from repro.core.timers import PhaseTimer
from repro.errors import ConfigError, DeadlineExceeded
from repro.faults.log import ACTION_DEGRADED
from repro.faults.plan import SITE_INGEST_READ
from repro.parallel.backends import ExecutorBackend, make_pool
from repro.qos.throttle import bucket_from_options
from repro.resilience.degrade import Deadline, run_with_degradation
from repro.resilience.journal import STAGE_REDUCED, JobJournal, job_fingerprint
from repro.util.logging import get_logger

logger = get_logger(__name__)

_SITE_DEADLINE = "job.deadline"


class PhoenixRuntime:
    """Ingest-everything-then-compute baseline."""

    name = "phoenix"

    def __init__(self, options: RuntimeOptions | None = None) -> None:
        self.options = options or RuntimeOptions.baseline()
        if self.options.chunk_strategy is not ChunkStrategy.NONE:
            raise ConfigError(
                "PhoenixRuntime ingests the whole input; use SupMRRuntime "
                f"for chunk strategy {self.options.chunk_strategy.value!r}"
            )

    def run(self, job: JobSpec) -> JobResult:
        """Execute ``job`` and report Table II-style phase timings.

        Runs under the graceful-degradation ladder (process → thread →
        serial) on unrecoverable pool failures.
        """
        return run_with_degradation(self._run_once, job, self.options)

    def _run_once(self, job: JobSpec, options: RuntimeOptions) -> JobResult:
        """One full execution under explicit ``options`` (one ladder rung)."""
        timer = PhaseTimer()
        injector = None
        if options.fault_plan is not None:
            injector = options.fault_plan.arm(
                options.recovery, clock=time.perf_counter
            )
        journal = None
        if options.checkpoint_dir is not None:
            journal = JobJournal(
                options.checkpoint_dir,
                job_fingerprint(job, options),
                resume=options.resume,
            )
        throttle = bucket_from_options(options, injector)
        container, spill_mgr = build_container(
            job, options, injector,
            spill_dir=str(journal.spill_dir) if journal is not None else None,
            throttle=throttle,
        )
        plan = plan_whole_input(job.inputs)
        whole = plan.chunks[0]
        wave_stats: dict[str, int] = {}
        deadline = Deadline(options.job_deadline_s)
        deadline_hit = False
        resume_at_reduced = (
            journal is not None
            and journal.resumed
            and journal.stage == STAGE_REDUCED
        )

        xfer = None
        if options.executor_backend is ExecutorBackend.PROCESS:
            xfer = ProcessPoolContext(job, options)
        succeeded = False
        try:
            with timer.phase("total"):
                with timer.phase("read"):
                    data = b""
                    if not resume_at_reduced:
                        try:
                            deadline.check("ingest")
                            if injector is None and throttle is None:
                                data = whole.load()
                            elif injector is None:
                                data = whole.load(throttle=throttle)
                            else:
                                data = injector.retrying(
                                    SITE_INGEST_READ,
                                    lambda attempt: whole.load(
                                        injector, attempt, throttle=throttle
                                    ),
                                    scope=(whole.index,),
                                )
                        except DeadlineExceeded as exc:
                            deadline_hit = True
                            logger.warning("deadline degradation: %s", exc)
                            if injector is not None:
                                injector.log.record(
                                    _SITE_DEADLINE, ACTION_DEGRADED, str(exc)
                                )

                with make_pool(
                    options.executor_backend, options.num_mappers
                ) as pool:
                    with timer.phase("map"):
                        if not resume_at_reduced and not deadline_hit:
                            run_mapper_wave(
                                job, container, data, options, pool,
                                injector=injector,
                                wave_stats=wave_stats,
                                xfer=xfer,
                            )
                    with timer.phase("reduce"):
                        if resume_at_reduced:
                            runs = journal.load_reduced()
                        else:
                            runs = run_reducers(
                                job, container, options, pool,
                                wave_stats=wave_stats, xfer=xfer,
                            )
                            if journal is not None:
                                journal.record_reduced(runs)

                with timer.phase("merge"):
                    output, merge_rounds = merge_outputs(
                        runs, job, options, xfer=xfer
                    )

            if journal is not None:
                journal.finalize()
            logger.info(
                "job %s finished on phoenix: total=%.3fs read=%.3fs map=%.3fs",
                job.name, timer.elapsed("total"), timer.elapsed("read"),
                timer.elapsed("map"),
            )
            spill_stats = spill_mgr.stats() if spill_mgr else None
            container_stats = container.stats()
            succeeded = True
        finally:
            # Job-exit guarantee: shut the pool down and unlink every
            # shared-memory segment this job created.
            if xfer is not None:
                xfer.close()
            # Keep sealed runs for the resume when a journaled run fails.
            if spill_mgr is not None and (journal is None or succeeded):
                spill_mgr.cleanup()
        timings = PhaseTimings(
            read_s=timer.elapsed("read"),
            map_s=timer.elapsed("map"),
            reduce_s=timer.elapsed("reduce"),
            merge_s=timer.elapsed("merge"),
            total_s=timer.elapsed("total"),
            read_map_combined=False,
            spill_s=spill_stats.spill_write_s if spill_stats else 0.0,
        )
        counters = {
            "merge_rounds": merge_rounds,
            "merge_algorithm": options.merge_algorithm.value,
            "executor_backend": options.executor_backend.value,
        }
        if xfer is not None:
            counters["transport"] = xfer.transport_kind
            counters["persistent_pool"] = xfer.persistent
        for key, value in wave_stats.items():
            if value:
                counters[key] = value
        if journal is not None:
            counters["checkpointed"] = True
        if resume_at_reduced:
            counters["resumed"] = True
        if deadline_hit:
            counters["degraded"] = True
            counters["deadline_expired"] = True
        if spill_stats is not None:
            counters["spill_runs"] = spill_stats.runs
            counters["spilled_bytes"] = spill_stats.spilled_bytes
        if throttle is not None:
            counters["tenant"] = options.tenant
            counters.update(throttle.counters())
        fault_log = injector.log if injector is not None else None
        if fault_log is not None:
            counters["faults_injected"] = fault_log.injected
            counters["fault_retries"] = fault_log.retries
            counters["records_quarantined"] = fault_log.quarantined
        return JobResult(
            job_name=job.name,
            runtime=self.name,
            output=output,
            timings=timings,
            container_stats=container_stats,
            input_bytes=whole.length,
            n_chunks=1,
            counters=counters,
            spill_stats=spill_stats,
            fault_log=fault_log,
        )


def run_baseline(job: JobSpec, options: RuntimeOptions | None = None) -> JobResult:
    """Convenience: run ``job`` on the baseline runtime."""
    opts = options or RuntimeOptions.baseline()
    if opts.merge_algorithm is not MergeAlgorithm.PAIRWISE:
        opts = opts.with_(merge_algorithm=MergeAlgorithm.PAIRWISE)
    return PhoenixRuntime(opts).run(job)
