"""The baseline scale-up runtime (Phoenix++-shaped).

The "original runtime" of the paper's Table II rows labelled *none*: the
whole input is ingested into memory first, then mapper threads run over
input splits, reducers coalesce, and the merge phase combines per-reducer
sorted runs with iterative 2-way merge rounds.  The ingest is one
serial scan (the long low-utilization prefix of Figs. 1/5a) and the merge
re-scans keys every round (the step-down tail of Fig. 1).
"""

from __future__ import annotations

import time

from repro.chunking.planner import plan_whole_input
from repro.core.execution import (
    build_container,
    merge_outputs,
    run_mapper_wave,
    run_reducers,
)
from repro.core.job import JobSpec
from repro.core.options import ChunkStrategy, MergeAlgorithm, RuntimeOptions
from repro.core.result import JobResult, PhaseTimings
from repro.core.timers import PhaseTimer
from repro.errors import ConfigError
from repro.faults.plan import SITE_INGEST_READ
from repro.parallel.backends import make_pool
from repro.util.logging import get_logger

logger = get_logger(__name__)


class PhoenixRuntime:
    """Ingest-everything-then-compute baseline."""

    name = "phoenix"

    def __init__(self, options: RuntimeOptions | None = None) -> None:
        self.options = options or RuntimeOptions.baseline()
        if self.options.chunk_strategy is not ChunkStrategy.NONE:
            raise ConfigError(
                "PhoenixRuntime ingests the whole input; use SupMRRuntime "
                f"for chunk strategy {self.options.chunk_strategy.value!r}"
            )

    def run(self, job: JobSpec) -> JobResult:
        """Execute ``job`` and report Table II-style phase timings."""
        options = self.options
        timer = PhaseTimer()
        injector = None
        if options.fault_plan is not None:
            injector = options.fault_plan.arm(
                options.recovery, clock=time.perf_counter
            )
        container, spill_mgr = build_container(job, options, injector)
        plan = plan_whole_input(job.inputs)
        whole = plan.chunks[0]

        try:
            with timer.phase("total"):
                with timer.phase("read"):
                    if injector is None:
                        data = whole.load()
                    else:
                        data = injector.retrying(
                            SITE_INGEST_READ,
                            lambda attempt: whole.load(injector, attempt),
                            scope=(whole.index,),
                        )

                with make_pool(
                    options.executor_backend, options.num_mappers
                ) as pool:
                    with timer.phase("map"):
                        run_mapper_wave(
                            job, container, data, options, pool,
                            injector=injector,
                        )
                    with timer.phase("reduce"):
                        runs = run_reducers(job, container, options, pool)

                with timer.phase("merge"):
                    output, merge_rounds = merge_outputs(runs, job, options)

            logger.info(
                "job %s finished on phoenix: total=%.3fs read=%.3fs map=%.3fs",
                job.name, timer.elapsed("total"), timer.elapsed("read"),
                timer.elapsed("map"),
            )
            spill_stats = spill_mgr.stats() if spill_mgr else None
            container_stats = container.stats()
        finally:
            if spill_mgr is not None:
                spill_mgr.cleanup()
        timings = PhaseTimings(
            read_s=timer.elapsed("read"),
            map_s=timer.elapsed("map"),
            reduce_s=timer.elapsed("reduce"),
            merge_s=timer.elapsed("merge"),
            total_s=timer.elapsed("total"),
            read_map_combined=False,
            spill_s=spill_stats.spill_write_s if spill_stats else 0.0,
        )
        counters = {
            "merge_rounds": merge_rounds,
            "merge_algorithm": options.merge_algorithm.value,
            "executor_backend": options.executor_backend.value,
        }
        if spill_stats is not None:
            counters["spill_runs"] = spill_stats.runs
            counters["spilled_bytes"] = spill_stats.spilled_bytes
        fault_log = injector.log if injector is not None else None
        if fault_log is not None:
            counters["faults_injected"] = fault_log.injected
            counters["fault_retries"] = fault_log.retries
            counters["records_quarantined"] = fault_log.quarantined
        return JobResult(
            job_name=job.name,
            runtime=self.name,
            output=output,
            timings=timings,
            container_stats=container_stats,
            input_bytes=whole.length,
            n_chunks=1,
            counters=counters,
            spill_stats=spill_stats,
            fault_log=fault_log,
        )


def run_baseline(job: JobSpec, options: RuntimeOptions | None = None) -> JobResult:
    """Convenience: run ``job`` on the baseline runtime."""
    opts = options or RuntimeOptions.baseline()
    if opts.merge_algorithm is not MergeAlgorithm.PAIRWISE:
        opts = opts.with_(merge_algorithm=MergeAlgorithm.PAIRWISE)
    return PhoenixRuntime(opts).run(job)
