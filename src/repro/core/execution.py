"""Shared execution machinery: input splits, mapper waves, reducers, merge.

Both runtimes use the same engine; they differ only in *when* ingest
happens relative to map waves and in which merge algorithm runs.  The
``run_mappers()``/``run_reducers()`` wrappers of the paper's Table I map
onto :func:`run_mapper_wave` / :func:`run_reducers` here.

Each phase honors ``options.executor_backend``: the ``serial`` and
``thread`` backends drive the parent-side ``pool``, while ``process``
forks workers per phase (:mod:`repro.parallel.fork_pool`) — map tasks
read their splits through ``mmap`` in the worker, combine locally, and
ship back :class:`~repro.containers.base.ContainerDelta` objects the
parent absorbs in task order.
"""

from __future__ import annotations

from concurrent.futures import Executor
from typing import Any, Hashable, Sequence

from repro.chunking.boundary import adjust_split_point
from repro.containers.base import Container
from repro.core.job import JobSpec, MapContext
from repro.core.options import MergeAlgorithm, RuntimeOptions
from repro.errors import FaultInjected, RuntimeStateError
from repro.faults.injector import FaultInjector
from repro.faults.plan import SITE_MAP_TASK, SITE_RECORD_CORRUPT
from repro.io.records import corrupt_record
from repro.io.span import ByteSpan, as_span
from repro.parallel.backends import ExecutorBackend
from repro.parallel.fork_pool import ForkExecutor, fork_map
from repro.parallel.splits import ChunkHandle, SplitRef, split_refs_for_chunk
from repro.resilience.gates import gate_worker_sites, worker_sites_armed
from repro.resilience.supervisor import (
    SupervisedForkExecutor,
    SupervisionResult,
    WorkerPool,
    supervised_fork_map,
)
from repro.sortlib.merge_sort import pairwise_merge_sort
from repro.sortlib.pway import pway_merge
from repro.spill.container import SpillableContainer
from repro.spill.manager import SpillManager
from repro.xfer.transport import make_transport

Pair = tuple[Hashable, Any]

#: Below this many total pairs, forking merge workers costs more than the
#: merge itself; the process backend merges inline instead.
_FORK_MERGE_MIN_PAIRS = 20_000


def job_task_handler(job: JobSpec) -> "Any":
    """The persistent pool's dispatch body: one closure for every phase.

    A :class:`~repro.resilience.supervisor.WorkerPool` is forked once
    per job around this handler — ``job`` (map/reduce functions, codec,
    container factory) rides into every worker copy-on-write — and each
    wave then sends small ``("map", ...)`` / ``("reduce", ...)``
    descriptors through the command channel instead of re-forking.
    """

    def handle(task: tuple) -> Any:
        kind = task[0]
        if kind == "map":
            _kind, task_id, chunk_index, split = task
            data = split.resolve() if isinstance(split, SplitRef) else split
            local = job.container_factory()
            local.begin_round()
            ctx = MapContext(
                data=data,
                emitter=local.emitter(task_id),
                task_id=task_id,
                chunk_index=chunk_index,
            )
            job.map_fn(ctx)
            local.seal()
            return local.drain()
        if kind == "reduce":
            out: list[Pair] = []
            for key, values in task[1]:
                out.extend(job.reduce_fn(key, values))
            if job.sorted_output:
                out.sort(key=job.output_key)
            return out
        raise RuntimeStateError(f"unknown pool task kind {task[0]!r}")

    return handle


class ProcessPoolContext:
    """Job-lifetime process-backend state: one transport, one pool.

    Created by the runtimes once per job run when the backend is
    ``process``; every wave shares its transport (so segments carry one
    job nonce and one cleanup covers them all) and, when
    ``options.persistent_pool`` is on, its lazily-forked
    :class:`~repro.resilience.supervisor.WorkerPool`.  ``close()`` is
    the job-exit guarantee: workers are shut down and every
    shared-memory segment of this job — including a SIGKILLed worker's
    strays — is unlinked.
    """

    def __init__(self, job: JobSpec, options: RuntimeOptions) -> None:
        self.job = job
        self.options = options
        self.transport = make_transport(options.transport)
        #: Descriptor waves need the supervisor's dispatch protocol;
        #: with supervision off the wave falls back to fork-per-wave.
        self.persistent = bool(
            options.persistent_pool and options.supervised_pool
        )
        self._pool: "WorkerPool | None" = None

    @property
    def transport_kind(self) -> str:
        return self.transport.kind

    def pool(self) -> WorkerPool:
        """The persistent pool, forked on first use."""
        if self._pool is None:
            self._pool = WorkerPool(
                job_task_handler(self.job),
                max(self.options.num_mappers, self.options.num_reducers),
                transport=self.transport,
                worker_name="repro-job",
            )
        return self._pool

    def close(self) -> None:
        """Shut down the pool and unlink every live segment (idempotent).

        The runtimes call this in their ``finally`` — it is the job-exit
        guarantee that no shared-memory segment outlives the job, even
        on a crash-path abort.
        """
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        self.transport.cleanup()

    def __enter__(self) -> "ProcessPoolContext":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def build_container(
    job: JobSpec,
    options: RuntimeOptions,
    injector: FaultInjector | None = None,
    spill_dir: "str | None" = None,
    throttle: "Any | None" = None,
) -> tuple[Container, SpillManager | None]:
    """The job's intermediate container, budget-wrapped when configured.

    With no ``memory_budget`` this is exactly ``job.container_factory()``;
    with one, the container is wrapped in a
    :class:`~repro.spill.container.SpillableContainer` whose manager the
    runtime must ``cleanup()`` after the merge (run files live on disk
    until then).  An armed ``injector`` gives the spill manager its
    ``spill.corrupt`` site and the verify-then-re-spill recovery path.
    ``spill_dir`` pins the run directory (checkpointed jobs put it inside
    the journal directory so sealed runs survive a crash).  A
    ``throttle`` (:class:`repro.qos.throttle.TokenBucket`) meters spill
    run writes against the job's I/O budget.
    """
    if options.memory_budget is None:
        return job.container_factory(), None
    manager = SpillManager(
        budget_bytes=options.memory_budget,
        spill_dir=spill_dir,
        combiner=job.spill_combiner,
        merge_fan_in=options.spill_merge_fan_in,
        injector=injector,
        throttle=throttle,
    )
    return SpillableContainer(job.container_factory, manager), manager


def screen_records(
    data: "bytes | bytearray | ByteSpan",
    job: JobSpec,
    injector: FaultInjector,
    chunk_index: int,
) -> bytes:
    """Inject record corruption, then quarantine what validation catches.

    The ``record.corrupt`` site damages individual records in ``data``
    (deterministically, per ``(chunk, record)`` scope); each damaged
    record is checked with ``codec.validate`` and quarantined against the
    policy's skip budget — mappers only ever see the surviving clean
    records.  Where the codec has no checkable structure (free text) the
    injector's ground truth stands in for a record-level checksum, as the
    codec docstrings note.  Raises
    :class:`~repro.errors.QuarantineOverflow` past the budget.
    """
    codec = job.codec
    kept: list[bytes] = []
    for i, record in enumerate(codec.iter_records(data)):
        decision = injector.check(SITE_RECORD_CORRUPT, scope=(chunk_index, i))
        if decision is None:
            kept.append(bytes(record))
            continue
        damaged = corrupt_record(bytes(record), salt=injector.plan.seed + i)
        # validate() spots structural damage where the codec can; either
        # way the record is known-bad here, so it is skipped and charged
        # against the skip budget rather than poisoning the map output.
        codec.validate(damaged)
        injector.quarantine(SITE_RECORD_CORRUPT, damaged, scope=(chunk_index, i))
    out = codec.delimiter.join(kept)
    if kept and data.endswith(codec.delimiter):
        out += codec.delimiter
    return out


def split_for_mappers(
    data: "bytes | bytearray | ByteSpan", n_splits: int, delimiter: bytes
) -> list[ByteSpan]:
    """Cut ``data`` into <= ``n_splits`` record-aligned input splits.

    Splits are contiguous :class:`~repro.io.span.ByteSpan` windows that
    cover all of ``data`` without copying any of it — ``bytes(span)``
    materializes one when a caller needs a real buffer.  Short inputs
    may yield fewer splits (never an empty one).
    """
    if n_splits < 1:
        raise RuntimeStateError("need at least one input split")
    if not data:
        return []
    span = as_span(data)
    target = max(1, len(span) // n_splits)
    splits: list[ByteSpan] = []
    start = 0
    while start < len(span) and len(splits) < n_splits - 1:
        end = adjust_split_point(span, min(start + target, len(span)), delimiter)
        if end <= start:
            break
        splits.append(span.span(start, end))
        start = end
    if start < len(span):
        splits.append(span.span(start, len(span)))
    return splits


def accumulate_wave_stats(
    stats: "dict[str, int] | None", outcome: SupervisionResult
) -> None:
    """Fold one supervised wave's survival record into a stats dict.

    The runtimes pass one dict through every wave of a job and copy the
    non-zero tallies into the result counters, so ``--timeline`` can
    report respawns, re-dispatches and lease expiries per job.
    """
    if stats is None:
        return
    stats["worker_respawns"] = (
        stats.get("worker_respawns", 0) + outcome.respawns
    )
    stats["worker_crashes"] = stats.get("worker_crashes", 0) + outcome.crashes
    stats["lease_expiries"] = stats.get("lease_expiries", 0) + outcome.hangs
    stats["task_redispatches"] = (
        stats.get("task_redispatches", 0) + outcome.redispatches
    )
    stats["tasks_skipped"] = (
        stats.get("tasks_skipped", 0) + len(outcome.skipped)
    )


def run_mapper_wave(
    job: JobSpec,
    container: Container,
    data: "bytes | bytearray | ByteSpan | ChunkHandle",
    options: RuntimeOptions,
    pool: Executor,
    chunk_index: int = 0,
    task_id_base: int = 0,
    injector: FaultInjector | None = None,
    wave_stats: "dict[str, int] | None" = None,
    xfer: "ProcessPoolContext | None" = None,
) -> int:
    """One wave of map tasks over ``data``; returns tasks launched.

    Equivalent to the paper's ``run_mappers()``: initializes (or, on
    SupMR rounds > 1, *re-enters*) the persistent container and launches
    mapper tasks over record-aligned splits.  With an armed
    ``injector``, records are screened for injected corruption first and
    each map task runs under the bounded retry loop with ``map.task``
    failures injected *before* the user map function executes (so a
    retried task never double-emits).

    Under the ``process`` backend ``data`` may be a
    :class:`~repro.parallel.splits.ChunkHandle` — a chunk the parent has
    *not* loaded; the wave then plans ``(path, offset, length)`` split
    refs and each forked worker mmaps its own range (zero-copy ingest).
    Armed fault plans force the loaded-bytes path, because injector
    bookkeeping must stay in the parent process.
    """
    container.begin_round()
    if injector is not None and injector.armed(SITE_RECORD_CORRUPT):
        if isinstance(data, ChunkHandle):
            data = data.load()
        data = screen_records(data, job, injector, chunk_index)
    if options.executor_backend is ExecutorBackend.PROCESS:
        return _run_mapper_wave_process(
            job, container, data, options, chunk_index, task_id_base,
            injector, wave_stats, xfer,
        )
    if isinstance(data, ChunkHandle):
        data = data.load()
    splits = split_for_mappers(data, options.num_mappers, job.codec.delimiter)
    if not splits:
        return 0

    def map_task(task_id: int, split: ByteSpan) -> None:
        # Resolve the worker-fault sites first (crash, then hang) — the
        # same protocol the process supervisor runs at dispatch time —
        # so the fault schedule is backend-independent.  A poison task
        # is quarantined here and never runs.
        if injector is not None and worker_sites_armed(injector):
            scope = (chunk_index, task_id)
            should_run = gate_worker_sites(
                injector, scope, allow_skip=True,
                task_repr=f"map task {scope}".encode(),
            )
            if not should_run:
                return

        def attempt_fn(attempt: int) -> None:
            if injector is not None:
                decision = injector.check(
                    SITE_MAP_TASK, scope=(chunk_index, task_id), attempt=attempt
                )
                if decision is not None:
                    raise FaultInjected(
                        f"injected map-task failure "
                        f"(chunk {chunk_index}, task {task_id})",
                        site=SITE_MAP_TASK,
                    )
            ctx = MapContext(
                data=split,
                emitter=container.emitter(task_id),
                task_id=task_id,
                chunk_index=chunk_index,
            )
            job.map_fn(ctx)

        if injector is None:
            attempt_fn(0)
        else:
            # Only injected faults are retried here: a genuine exception
            # from the user's map function already emitted pairs, so a
            # blind re-run would double-count them.
            injector.retrying(
                SITE_MAP_TASK, attempt_fn,
                scope=(chunk_index, task_id), retryable=(FaultInjected,),
            )

    futures = [
        pool.submit(map_task, task_id_base + i, split)
        for i, split in enumerate(splits)
    ]
    for future in futures:
        future.result()  # propagate the first map failure
    return len(splits)


def _run_mapper_wave_process(
    job: JobSpec,
    container: Container,
    data: "bytes | bytearray | ByteSpan | ChunkHandle",
    options: RuntimeOptions,
    chunk_index: int,
    task_id_base: int,
    injector: FaultInjector | None,
    wave_stats: "dict[str, int] | None" = None,
    xfer: "ProcessPoolContext | None" = None,
) -> int:
    """The process backend's wave: fork (or reuse the pool), map+combine
    in-worker, absorb.

    Splits are either :class:`~repro.parallel.splits.SplitRef` ranges
    (unloaded chunks — workers mmap their own bytes) or zero-copy spans
    over parent-loaded data (inherited copy-on-write by the fork).  Each
    worker task runs against a private container so combining happens
    before serialization, and the parent absorbs the resulting deltas
    *in task order* — making the wave's effect on the shared container
    deterministic and identical to the serial backend's.

    With a persistent ``xfer`` pool and ``SplitRef`` splits the wave is
    dispatched as descriptors to the already-forked workers — no forks,
    no COW dependency.  Parent-loaded spans keep fork-per-wave: the
    buffer reaches the workers copy-on-write for free, which no
    transport can beat.
    """
    delimiter = job.codec.delimiter
    splits: "Sequence[SplitRef | ByteSpan]"
    ref_splits = False
    if isinstance(data, ChunkHandle):
        refs = split_refs_for_chunk(data.chunk, options.num_mappers, delimiter)
        if refs is None:
            # Multi-source chunk: load in the parent; the forked workers
            # still see the buffer for free via copy-on-write.
            splits = split_for_mappers(data.load(), options.num_mappers, delimiter)
        else:
            splits = refs
            ref_splits = True
    else:
        splits = split_for_mappers(data, options.num_mappers, delimiter)
    if not splits:
        return 0

    def map_task_gate(task_id: int) -> None:
        """The parent-side ``map.task`` gate (injector state cannot live
        in a forked worker): the site fires and retries against a no-op
        body, preserving the per-(chunk, task) fault schedule exactly."""

        def gate(attempt: int) -> None:
            decision = injector.check(
                SITE_MAP_TASK, scope=(chunk_index, task_id), attempt=attempt
            )
            if decision is not None:
                raise FaultInjected(
                    f"injected map-task failure "
                    f"(chunk {chunk_index}, task {task_id})",
                    site=SITE_MAP_TASK,
                )

        injector.retrying(
            SITE_MAP_TASK, gate,
            scope=(chunk_index, task_id), retryable=(FaultInjected,),
        )

    def map_task(item: "tuple[int, SplitRef | ByteSpan]") -> Any:
        i, split = item
        task_id = task_id_base + i
        resolved = split.resolve() if isinstance(split, SplitRef) else split
        local = job.container_factory()
        local.begin_round()
        ctx = MapContext(
            data=resolved,
            emitter=local.emitter(task_id),
            task_id=task_id,
            chunk_index=chunk_index,
        )
        job.map_fn(ctx)
        local.seal()
        return local.drain()

    map_task_armed = injector is not None and injector.armed(SITE_MAP_TASK)
    if options.supervised_pool:
        # The supervised wave: worker-fault sites are decided at dispatch
        # (killing/hanging real workers under the same per-scope
        # schedule the serial gate replays), orphaned tasks re-dispatch,
        # poison tasks quarantine, and the map.task gate runs as the
        # pre-dispatch hook so per-task site ordering matches serial.
        pre_run = (
            (lambda i: map_task_gate(task_id_base + i))
            if map_task_armed else None
        )
        if xfer is not None and xfer.persistent and ref_splits:
            # Descriptor dispatch: the pool's workers were forked once
            # at job start; each task ships as a tiny SplitRef frame
            # and the worker mmaps its own byte range.
            outcome = xfer.pool().run_wave(
                [
                    ("map", task_id_base + i, chunk_index, split)
                    for i, split in enumerate(splits)
                ],
                workers=options.num_mappers,
                policy=options.recovery,
                injector=injector,
                scope_of=lambda i: (chunk_index, task_id_base + i),
                allow_skip=True,
                pre_run=pre_run,
            )
        else:
            outcome = supervised_fork_map(
                map_task,
                list(enumerate(splits)),
                options.num_mappers,
                policy=options.recovery,
                injector=injector,
                scope_of=lambda i: (chunk_index, task_id_base + i),
                allow_skip=True,
                pre_run=pre_run,
                transport=xfer.transport if xfer is not None else None,
            )
        accumulate_wave_stats(wave_stats, outcome)
        deltas = outcome.completed()
    else:
        # PR-3 behaviour: unsupervised fork_map (any worker death aborts
        # the wave).  Worker-fault sites are still gated in the parent so
        # the fault schedule stays backend-independent.
        indices = list(range(len(splits)))
        if injector is not None and worker_sites_armed(injector):
            indices = [
                i for i in indices
                if gate_worker_sites(
                    injector, (chunk_index, task_id_base + i),
                    allow_skip=True,
                    task_repr=(
                        f"map task {(chunk_index, task_id_base + i)}".encode()
                    ),
                )
            ]
        if map_task_armed:
            for i in indices:
                map_task_gate(task_id_base + i)
        deltas = fork_map(
            map_task, [(i, splits[i]) for i in indices], options.num_mappers,
            transport=xfer.transport if xfer is not None else None,
        )
    for delta in deltas:
        container.absorb(delta)
    return len(splits)


def run_reducers(
    job: JobSpec,
    container: Container,
    options: RuntimeOptions,
    pool: Executor,
    wave_stats: "dict[str, int] | None" = None,
    xfer: "ProcessPoolContext | None" = None,
) -> list[list[Pair]]:
    """Seal the container and reduce each partition; returns one
    key-sorted output run per reducer (``run_reducers()`` of Table I).

    Under the ``process`` backend the partitions are reduced in forked
    workers — the partition lists ride into the fork copy-on-write (or,
    with a persistent ``xfer`` pool, cross as shared-memory task frames)
    and only the (typically smaller) reduced runs travel back.
    """
    container.seal()
    partitions = container.partitions(options.num_reducers)

    def reduce_task(partition: list[tuple[Hashable, Sequence[Any]]]) -> list[Pair]:
        out: list[Pair] = []
        for key, values in partition:
            out.extend(job.reduce_fn(key, values))
        if job.sorted_output:
            out.sort(key=job.output_key)
        return out

    if options.executor_backend is ExecutorBackend.PROCESS:
        if options.supervised_pool:
            # Reduce tasks are pure (partition -> pairs), so genuine
            # worker deaths are safely re-dispatched; no fault sites are
            # checked here, keeping reduce schedules backend-identical.
            if xfer is not None and xfer.persistent:
                outcome = xfer.pool().run_wave(
                    [("reduce", partition) for partition in partitions],
                    workers=options.num_reducers,
                    policy=options.recovery,
                )
            else:
                outcome = supervised_fork_map(
                    reduce_task, partitions, options.num_reducers,
                    policy=options.recovery,
                    transport=xfer.transport if xfer is not None else None,
                )
            accumulate_wave_stats(wave_stats, outcome)
            return outcome.results
        return fork_map(
            reduce_task, partitions, options.num_reducers,
            transport=xfer.transport if xfer is not None else None,
        )
    return list(pool.map(reduce_task, partitions))


def merge_outputs(
    runs: list[list[Pair]],
    job: JobSpec,
    options: RuntimeOptions,
    xfer: "ProcessPoolContext | None" = None,
) -> tuple[list[Pair], int]:
    """Merge per-reducer sorted runs into the final output.

    Returns ``(output, rounds)`` — rounds is the number of pairwise merge
    rounds (0 for the single-pass p-way merge), feeding Conclusion 3's
    "number of merge rounds avoided" accounting.

    With the ``process`` backend and the p-way merge, output ranges are
    merged by forked workers (each inherits the runs copy-on-write) once
    the input is large enough to amortize the forks.
    """
    if not job.sorted_output:
        flat: list[Pair] = []
        for run in runs:
            flat.extend(run)
        return flat, 0
    if options.merge_algorithm is MergeAlgorithm.PAIRWISE:
        merged, rounds = pairwise_merge_sort(runs, key=job.output_key)
        return merged, rounds
    if options.merge_algorithm is MergeAlgorithm.PWAY:
        executor = None
        if (
            options.executor_backend is ExecutorBackend.PROCESS
            and sum(len(r) for r in runs) >= _FORK_MERGE_MIN_PAIRS
        ):
            # Merge workers close over the runs (COW), so they stay
            # fork-per-wave; the merged ranges still ride back through
            # the job transport.
            transport = xfer.transport if xfer is not None else None
            if options.supervised_pool:
                executor = SupervisedForkExecutor(
                    options.effective_merge_parallelism,
                    policy=options.recovery,
                    transport=transport,
                )
            else:
                executor = ForkExecutor(
                    options.effective_merge_parallelism, transport=transport,
                )
        merged = pway_merge(
            runs, options.effective_merge_parallelism,
            key=job.output_key, executor=executor,
        )
        return merged, 1 if len([r for r in runs if r]) > 1 else 0
    raise RuntimeStateError(f"unknown merge algorithm {options.merge_algorithm!r}")
