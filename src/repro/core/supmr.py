"""The SupMR runtime: ingest chunk pipeline + persistent container + p-way merge.

``run_ingest_mr()`` is the paper's ``run_ingestMR()`` API call (Table I):
it plans ingest chunks per the user-chosen strategy/size, streams them
through the double-buffered pipeline (mapper waves on chunk *i* overlap
the ingest of chunk *i+1*), keeps one persistent intermediate container
across all map rounds, runs the reducers once, and merges with the
single-pass parallel p-way merge instead of iterative 2-way rounds.

Resilience (PR 4): with ``options.checkpoint_dir`` every completed
ingest round is journaled (container snapshot + sealed spill runs), the
reduced partitions are checkpointed before the merge, and
``options.resume`` restarts a killed job from the journal with
byte-identical output.  ``options.job_deadline_s`` stops admitting new
rounds once the deadline passes (partial result, ``degraded`` marker),
and unrecoverable pool failures step the backend down the ladder via
:func:`repro.resilience.degrade.run_with_degradation`.
"""

from __future__ import annotations

import time

from repro.chunking.chunk import Chunk, ChunkPlan
from repro.chunking.planner import plan_chunks
from repro.core.execution import (
    ProcessPoolContext,
    build_container,
    merge_outputs,
    run_mapper_wave,
    run_reducers,
)
from repro.core.job import JobSpec
from repro.core.options import ChunkStrategy, RuntimeOptions
from repro.core.result import JobResult, PhaseTimings, RoundTiming
from repro.core.timers import PhaseTimer
from repro.errors import ConfigError, DeadlineExceeded
from repro.faults.log import ACTION_CHECKPOINTED, ACTION_DEGRADED, ACTION_RESUMED
from repro.faults.plan import SITE_INGEST_READ
from repro.parallel.backends import ExecutorBackend, make_pool
from repro.parallel.splits import ChunkHandle
from repro.pipeline.double_buffer import DoubleBufferedPipeline
from repro.pipeline.prefetch import PrefetchPipeline
from repro.qos.throttle import bucket_from_options
from repro.resilience.degrade import Deadline, run_with_degradation
from repro.resilience.journal import STAGE_REDUCED, JobJournal, job_fingerprint
from repro.util.logging import get_logger

logger = get_logger(__name__)

#: Fault-log pseudo-sites for durability events.
_SITE_CHECKPOINT = "checkpoint"
_SITE_DEADLINE = "job.deadline"


class SupMRRuntime:
    """Scale-up MapReduce with the paper's ingest and merge optimizations."""

    name = "supmr"

    def __init__(self, options: RuntimeOptions) -> None:
        if options.chunk_strategy is ChunkStrategy.NONE:
            raise ConfigError(
                "SupMRRuntime requires an ingest chunk strategy; use "
                "RuntimeOptions.supmr_interfile()/supmr_intrafile() or the "
                "baseline PhoenixRuntime instead"
            )
        self.options = options

    def run(self, job: JobSpec) -> JobResult:
        """Execute ``job``; read+map are pipelined and reported combined.

        Runs under the graceful-degradation ladder: an unrecoverable
        pool failure re-runs the job one backend rung down (resuming
        from the journal when checkpointing is on) instead of aborting.
        """
        return run_with_degradation(self._run_once, job, self.options)

    def _run_once(self, job: JobSpec, options: RuntimeOptions) -> JobResult:
        """One full execution under explicit ``options`` (one ladder rung)."""
        timer = PhaseTimer()
        injector = None
        if options.fault_plan is not None:
            injector = options.fault_plan.arm(
                options.recovery, clock=time.perf_counter
            )
        journal = None
        if options.checkpoint_dir is not None:
            journal = JobJournal(
                options.checkpoint_dir,
                job_fingerprint(job, options),
                resume=options.resume,
            )
        throttle = bucket_from_options(options, injector)
        container, spill_mgr = build_container(
            job, options, injector,
            spill_dir=str(journal.spill_dir) if journal is not None else None,
            throttle=throttle,
        )
        plan: ChunkPlan = plan_chunks(job.inputs, job.codec, options)
        task_counter = [0]
        wave_stats: dict[str, int] = {}
        deadline = Deadline(options.job_deadline_s)
        deadline_hit = False

        def load(chunk: Chunk) -> "bytes | bytearray | ChunkHandle":
            if injector is None and throttle is None:
                if options.executor_backend is ExecutorBackend.PROCESS:
                    # Zero-copy ingest: the parent never materializes the
                    # chunk.  Warming pages it into the OS cache (that IS
                    # the overlapped ingest work) and the forked mappers
                    # then mmap their own split ranges out of it.
                    chunk.warm()
                    return ChunkHandle(chunk)
                return chunk.load()
            if injector is None:
                if options.executor_backend is ExecutorBackend.PROCESS:
                    chunk.warm(throttle=throttle)
                    return ChunkHandle(chunk)
                return chunk.load(throttle=throttle)
            # The whole chunk is the retry unit: an injected read error or
            # detected short read discards the partial buffer and re-loads.
            return injector.retrying(
                SITE_INGEST_READ,
                lambda attempt: chunk.load(injector, attempt, throttle=throttle),
                scope=(chunk.index,),
            )

        restored_rounds: frozenset[int] = frozenset()
        resume_at_reduced = (
            journal is not None
            and journal.resumed
            and journal.stage == STAGE_REDUCED
        )
        if (
            journal is not None
            and journal.resumed
            and not resume_at_reduced
            and journal.restore(container, spill_mgr)
        ):
            task_counter[0] = journal.map_tasks
            restored_rounds = journal.completed_rounds
            if injector is not None:
                injector.log.record(
                    _SITE_CHECKPOINT, ACTION_RESUMED,
                    f"restored {len(restored_rounds)} completed round(s) "
                    f"from {journal.directory}",
                )
        logger.debug(
            "supmr run: %d chunks planned, %d restored from journal",
            plan.n_chunks, len(restored_rounds),
        )

        xfer = None
        if options.executor_backend is ExecutorBackend.PROCESS:
            xfer = ProcessPoolContext(job, options)
        succeeded = False
        try:
            with make_pool(options.executor_backend, options.num_mappers) as pool:

                def work(chunk: Chunk, data: "bytes | bytearray | ChunkHandle") -> None:
                    deadline.check(f"ingest round {chunk.index}")
                    if job.set_data is not None:
                        job.set_data(chunk, len(data))
                    launched = run_mapper_wave(
                        job,
                        container,
                        data,
                        options,
                        pool,
                        chunk_index=chunk.index,
                        task_id_base=task_counter[0],
                        injector=injector,
                        wave_stats=wave_stats,
                        xfer=xfer,
                    )
                    task_counter[0] += launched
                    if journal is not None:
                        journal.record_round(
                            chunk.index, container, task_counter[0], spill_mgr
                        )
                        if injector is not None:
                            injector.log.record(
                                _SITE_CHECKPOINT, ACTION_CHECKPOINTED,
                                f"round {chunk.index} journaled",
                            )

                if options.pipelined_ingest and options.ingest_readers > 1:
                    pipeline = PrefetchPipeline(
                        load=load,
                        work=work,
                        readers=options.ingest_readers,
                        depth=options.effective_ingest_depth,
                    )
                else:
                    pipeline = DoubleBufferedPipeline(
                        load=load,
                        work=work,
                        pipelined=options.pipelined_ingest,
                    )

                with timer.phase("total"):
                    with timer.phase("read_map"):
                        round_records = []
                        chunks = [
                            c for c in plan.chunks
                            if c.index not in restored_rounds
                        ]
                        if not resume_at_reduced and chunks:
                            try:
                                round_records = pipeline.run(chunks)
                            except DeadlineExceeded as exc:
                                # Completed rounds stay in the container;
                                # reduce/merge the partial state instead
                                # of hanging past the operator's budget.
                                deadline_hit = True
                                logger.warning("deadline degradation: %s", exc)
                                if injector is not None:
                                    injector.log.record(
                                        _SITE_DEADLINE, ACTION_DEGRADED,
                                        str(exc),
                                    )
                    with timer.phase("reduce"):
                        if resume_at_reduced:
                            runs = journal.load_reduced()
                        else:
                            runs = run_reducers(
                                job, container, options, pool,
                                wave_stats=wave_stats, xfer=xfer,
                            )
                            if journal is not None:
                                journal.record_reduced(runs)
                    with timer.phase("merge"):
                        output, merge_rounds = merge_outputs(
                            runs, job, options, xfer=xfer
                        )

            if journal is not None:
                journal.finalize()
            spill_stats = spill_mgr.stats() if spill_mgr else None
            container_stats = container.stats()
            succeeded = True
        finally:
            # Pool shutdown + segment cleanup is the job-exit guarantee:
            # no shared-memory segment of this job survives, even after
            # a crash-path abort.
            if xfer is not None:
                xfer.close()
            # On failure with a journal, sealed runs must survive for the
            # resume; otherwise they are dead weight and go now.
            if spill_mgr is not None and (journal is None or succeeded):
                spill_mgr.cleanup()

        logger.info(
            "job %s finished on supmr: total=%.3fs read+map=%.3fs chunks=%d",
            job.name, timer.elapsed("total"), timer.elapsed("read_map"),
            plan.n_chunks,
        )
        rounds = tuple(
            RoundTiming(
                index=r.index,
                ingest_s=r.ingest_s,
                map_s=r.map_s,
                chunk_bytes=r.chunk_bytes,
            )
            for r in round_records
        )
        timings = PhaseTimings(
            read_s=timer.elapsed("read_map"),
            map_s=0.0,
            reduce_s=timer.elapsed("reduce"),
            merge_s=timer.elapsed("merge"),
            total_s=timer.elapsed("total"),
            read_map_combined=True,
            rounds=rounds,
            spill_s=spill_stats.spill_write_s if spill_stats else 0.0,
        )
        counters = {
            "merge_rounds": merge_rounds,
            "merge_algorithm": options.merge_algorithm.value,
            "executor_backend": options.executor_backend.value,
            "chunk_strategy": plan.strategy,
            "pipeline_rounds": len(rounds),
            "map_tasks": task_counter[0],
        }
        if xfer is not None:
            counters["transport"] = xfer.transport_kind
            counters["persistent_pool"] = xfer.persistent
        if options.ingest_readers > 1:
            counters["ingest_readers"] = options.ingest_readers
        for key, value in wave_stats.items():
            if value:
                counters[key] = value
        if journal is not None:
            counters["checkpointed"] = True
        if restored_rounds or resume_at_reduced:
            counters["resumed"] = True
            counters["resumed_rounds"] = (
                plan.n_chunks if resume_at_reduced else len(restored_rounds)
            )
        if deadline_hit:
            counters["degraded"] = True
            counters["deadline_expired"] = True
        if spill_stats is not None:
            counters["spill_runs"] = spill_stats.runs
            counters["spilled_bytes"] = spill_stats.spilled_bytes
        if throttle is not None:
            counters["tenant"] = options.tenant
            counters.update(throttle.counters())
        fault_log = injector.log if injector is not None else None
        if fault_log is not None:
            counters["faults_injected"] = fault_log.injected
            counters["fault_retries"] = fault_log.retries
            counters["records_quarantined"] = fault_log.quarantined
        return JobResult(
            job_name=job.name,
            runtime=self.name,
            output=output,
            timings=timings,
            container_stats=container_stats,
            input_bytes=plan.total_bytes,
            n_chunks=plan.n_chunks,
            counters=counters,
            spill_stats=spill_stats,
            fault_log=fault_log,
        )


def run_ingest_mr(job: JobSpec, options: RuntimeOptions) -> JobResult:
    """The paper's ``run_ingestMR()`` entry point (Table I)."""
    return SupMRRuntime(options).run(job)
