"""Runtime configuration.

The SupMR API "forces the user to specify the chunking strategy and chunk
size" (section III.A) because the runtime lacks the workload/hardware
knowledge to choose well — so both live here, validated eagerly, along
with the thread counts and merge algorithm selection.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Any, Sequence

from repro.errors import ConfigError
from repro.faults.plan import FaultPlan
from repro.faults.policy import RecoveryPolicy
from repro.net.peers import parse_peers
from repro.parallel.backends import ExecutorBackend, resolve_backend
from repro.util.units import parse_size


class ChunkStrategy(enum.Enum):
    """How the input becomes ingest chunks (section III.A.1)."""

    #: Original runtime behaviour: ingest the whole input up front.
    NONE = "none"
    #: Split one big file into byte-sized, record-aligned chunks.
    INTER_FILE = "inter-file"
    #: Coalesce N whole files per chunk.
    INTRA_FILE = "intra-file"
    #: Explicit byte-size schedule (the paper's future-work variable
    #: sizing; produced by the feedback tuner in :mod:`repro.tuning`).
    VARIABLE = "variable"
    #: Pack whole files to a byte budget, splitting oversized files —
    #: the paper's future-work hybrid inter/intra approach.
    HYBRID = "hybrid"


class MergeAlgorithm(enum.Enum):
    """Merge-phase algorithm (section IV)."""

    #: Phoenix++ default: iterative 2-way merge rounds.
    PAIRWISE = "pairwise"
    #: SupMR: single-pass parallel p-way merge (gnu_parallel::sort style).
    PWAY = "pway"


@dataclass(frozen=True)
class RuntimeOptions:
    """Knobs shared by both runtimes.

    ``num_mappers``/``num_reducers`` mirror Phoenix++'s thread settings;
    ``chunk_*`` configure the SupMR ingest pipeline; ``pipelined_ingest``
    can be switched off to run the chunk loop synchronously (bit-for-bit
    the same result, used for deterministic tests and ablations);
    ``memory_budget`` caps the intermediate container and turns on
    out-of-core spilling (:mod:`repro.spill`).
    """

    num_mappers: int = 4
    num_reducers: int = 4
    chunk_strategy: ChunkStrategy = ChunkStrategy.NONE
    chunk_bytes: int | None = None
    files_per_chunk: int | None = None
    chunk_schedule: tuple[int, ...] | None = None
    merge_algorithm: MergeAlgorithm = MergeAlgorithm.PAIRWISE
    merge_parallelism: int | None = None  # default: num_reducers
    pipelined_ingest: bool = True
    #: Byte budget for the intermediate container ("64MB" accepted);
    #: None keeps the paper's everything-in-RAM behaviour.  When set,
    #: both runtimes wrap the job's container in the out-of-core spill
    #: subsystem (:mod:`repro.spill`).
    memory_budget: int | str | None = None
    #: Streams per external-merge pass over spill runs (>= 2).
    spill_merge_fan_in: int = 8
    #: Seeded fault-injection plan (:mod:`repro.faults`); None runs
    #: clean with zero checking overhead.  The runtime arms a fresh
    #: injector per run, so the same options object replays the same
    #: fault sequence every time.
    fault_plan: FaultPlan | None = None
    #: How injected (and genuine transient) faults are answered: bounded
    #: retry with backoff, record quarantine, verify-then-re-spill.
    recovery: RecoveryPolicy = field(default_factory=RecoveryPolicy)
    #: How map/reduce/merge tasks execute (``"serial"`` | ``"thread"`` |
    #: ``"process"``; see :mod:`repro.parallel.backends`).  ``thread``
    #: is the historical default; ``process`` forks workers per phase
    #: for real multicore with zero-copy (mmap) split ingest.
    executor_backend: ExecutorBackend | str = ExecutorBackend.THREAD
    #: Directory for the crash-safe job journal (:mod:`repro.resilience`).
    #: When set, the runtime checkpoints each completed ingest round and
    #: the reduced partitions there; None runs without durability.
    checkpoint_dir: str | None = None
    #: Resume from an existing journal in ``checkpoint_dir`` instead of
    #: starting fresh (completed rounds are skipped; output is identical
    #: to an uninterrupted run).
    resume: bool = False
    #: Whole-job wall-clock deadline in seconds; when it expires the
    #: runtime stops admitting new ingest rounds and returns the partial
    #: result with ``counters["degraded"]`` set.  None never expires.
    job_deadline_s: float | None = None
    #: Run the process backend's forked waves under the resilience
    #: supervisor (lease tracking, worker respawn, poison-task
    #: quarantine).  Off = PR-3 behaviour: any worker death aborts.
    supervised_pool: bool = True
    #: Step the executor backend down (process -> thread -> serial) and
    #: re-run the job when a pool failure escapes the supervisor,
    #: instead of propagating :class:`~repro.errors.ParallelError`.
    degrade_on_pool_failure: bool = True
    #: Split the job over this many fault-tolerant shard worker processes
    #: (:mod:`repro.shard`): each shard maps a contiguous block of ingest
    #: chunks and reduces the partitions a consistent-hash map assigns
    #: it, exchanging intermediate state as checksummed run files.  None
    #: (default) runs unsharded on the classic runtimes; ``1`` still
    #: routes through the sharded coordinator (the digest baseline the
    #: determinism tests compare multi-shard runs against).
    num_shards: int | None = None
    #: Directory for the shard run exchange (outboxes, inboxes, worker
    #: pid files).  None lets the coordinator create and clean up a
    #: temporary directory.
    shard_dir: str | None = None
    #: I/O bandwidth budget in bytes/second ("64MB" accepted); when set,
    #: the runtime meters ingest reads and spill writes through a token
    #: bucket (:mod:`repro.qos.throttle`) so concurrent tenants share
    #: the node's disk bandwidth at their assigned rates.  None (the
    #: default) runs unthrottled with zero QoS overhead.
    io_budget: int | str | None = None
    #: Token-bucket burst allowance in bytes; None defaults to one
    #: second of tokens at ``io_budget``.
    io_burst: int | str | None = None
    #: Tenant label for multi-tenant accounting (service-side budgets,
    #: per-tenant counters, fault-site scoping).
    tenant: str = "default"
    #: Bandwidth priority class fed to priority-aware allocators.
    io_priority: int = 0
    #: How forked workers ship results back (:mod:`repro.xfer`):
    #: ``"shm"`` posts pickle-5 payloads through shared-memory segments
    #: and sends only tiny control frames over the queue; ``"pipe"`` is
    #: the PR-3 pickle-over-the-queue path; ``"auto"`` (default) picks
    #: shm when the box supports it and falls back to pipe otherwise.
    transport: str = "auto"
    #: Fork the process backend's workers once per job and feed them
    #: task descriptors over a command channel, instead of forking a
    #: fresh pool every mapper wave.  Off restores fork-per-wave (each
    #: wave COW-inherits the parent at dispatch time).
    persistent_pool: bool = True
    #: Remote agent endpoints (``"host:port,..."`` or a sequence) the
    #: sharded coordinator may place shard worker groups on
    #: (:mod:`repro.net`).  Requires ``num_shards``; shards are placed
    #: round-robin over the reachable peers, and an unreachable or
    #: partitioned peer degrades to local execution rather than failing
    #: the job.  None (default) keeps every worker on this host.
    peers: tuple[str, ...] | str | None = None
    #: Liveness and transfer deadline in seconds for the multi-host
    #: transport: an agent silent past this is treated as lost, and a
    #: run-file transfer may not exceed it end to end.
    net_timeout_s: float = 10.0
    #: Prefetch reader threads for pipelined ingest.  ``1`` keeps the
    #: single look-ahead-one background thread; ``N > 1`` runs N
    #: ``readinto``-based readers over a bounded in-flight window so
    #: ingest keeps up with more than two concurrent mapper waves.
    ingest_readers: int = 1
    #: Bound on chunks buffered ahead of the mapper (the prefetch
    #: window); None defaults to ``ingest_readers + 1``.
    ingest_depth: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "executor_backend", resolve_backend(self.executor_backend)
        )
        if self.num_mappers < 1 or self.num_reducers < 1:
            raise ConfigError("num_mappers and num_reducers must be >= 1")
        if self.chunk_strategy is ChunkStrategy.INTER_FILE:
            if not self.chunk_bytes or self.chunk_bytes < 1:
                raise ConfigError("inter-file chunking requires chunk_bytes >= 1")
        if self.chunk_strategy is ChunkStrategy.INTRA_FILE:
            if not self.files_per_chunk or self.files_per_chunk < 1:
                raise ConfigError(
                    "intra-file chunking requires files_per_chunk >= 1"
                )
        if self.chunk_strategy is ChunkStrategy.VARIABLE:
            if not self.chunk_schedule:
                raise ConfigError(
                    "variable chunking requires a non-empty chunk_schedule"
                )
            object.__setattr__(
                self, "chunk_schedule", tuple(int(s) for s in self.chunk_schedule)
            )
            if any(s < 1 for s in self.chunk_schedule):
                raise ConfigError("chunk_schedule sizes must be >= 1 byte")
        if self.chunk_strategy is ChunkStrategy.HYBRID:
            if not self.chunk_bytes or self.chunk_bytes < 1:
                raise ConfigError("hybrid chunking requires chunk_bytes >= 1")
        if self.merge_parallelism is not None and self.merge_parallelism < 1:
            raise ConfigError("merge_parallelism must be >= 1")
        if self.checkpoint_dir is not None:
            object.__setattr__(self, "checkpoint_dir", str(self.checkpoint_dir))
        if self.resume and self.checkpoint_dir is None:
            raise ConfigError("resume=True requires checkpoint_dir")
        if self.job_deadline_s is not None and self.job_deadline_s <= 0:
            raise ConfigError("job_deadline_s must be positive")
        if self.num_shards is not None and self.num_shards < 1:
            raise ConfigError("num_shards must be >= 1")
        if self.shard_dir is not None:
            object.__setattr__(self, "shard_dir", str(self.shard_dir))
        if self.spill_merge_fan_in < 2:
            raise ConfigError("spill_merge_fan_in must be >= 2")
        if self.memory_budget is not None:
            budget = parse_size(self.memory_budget)
            if budget < 1:
                raise ConfigError("memory_budget must be >= 1 byte")
            object.__setattr__(self, "memory_budget", budget)
            largest_chunk = self.chunk_bytes or 0
            if self.chunk_schedule:
                largest_chunk = max(largest_chunk, *self.chunk_schedule)
            if largest_chunk and budget <= largest_chunk:
                raise ConfigError(
                    f"memory_budget ({budget} B) must exceed one ingest "
                    f"chunk ({largest_chunk} B); a budget smaller than a "
                    "single chunk spills on every mapper wave"
                )
        if self.io_budget is not None:
            io_budget = parse_size(self.io_budget)
            if io_budget < 1:
                raise ConfigError("io_budget must be >= 1 byte/second")
            object.__setattr__(self, "io_budget", io_budget)
        if self.io_burst is not None:
            if self.io_budget is None:
                raise ConfigError("io_burst requires io_budget")
            io_burst = parse_size(self.io_burst)
            if io_burst < 1:
                raise ConfigError("io_burst must be >= 1 byte")
            object.__setattr__(self, "io_burst", io_burst)
        if not self.tenant:
            raise ConfigError("tenant must be a non-empty string")
        transport = str(self.transport).lower()
        if transport not in ("auto", "pipe", "shm"):
            raise ConfigError(
                f"unknown transport {self.transport!r}; "
                "choose one of auto, pipe, shm"
            )
        object.__setattr__(self, "transport", transport)
        if self.peers is not None:
            object.__setattr__(self, "peers", parse_peers(self.peers))
            if self.num_shards is None:
                raise ConfigError(
                    "peers requires num_shards (combine --peers with "
                    "--shards N)"
                )
        if self.net_timeout_s <= 0:
            raise ConfigError("net_timeout_s must be positive")
        if self.ingest_readers < 1:
            raise ConfigError("ingest_readers must be >= 1")
        if self.ingest_depth is not None and self.ingest_depth < 1:
            raise ConfigError("ingest_depth must be >= 1")

    @property
    def effective_ingest_depth(self) -> int:
        """Chunks buffered ahead of the mapper under pipelined ingest."""
        return self.ingest_depth or (self.ingest_readers + 1)

    @property
    def effective_merge_parallelism(self) -> int:
        return self.merge_parallelism or self.num_reducers

    def with_(self, **changes: Any) -> "RuntimeOptions":
        """A modified copy (frozen dataclass convenience)."""
        return replace(self, **changes)

    # -- convenience constructors -----------------------------------------

    @classmethod
    def baseline(cls, num_mappers: int = 4, num_reducers: int = 4) -> "RuntimeOptions":
        """The original runtime: no chunking, pairwise merge."""
        return cls(num_mappers=num_mappers, num_reducers=num_reducers)

    @classmethod
    def supmr_interfile(
        cls,
        chunk_size: int | str,
        num_mappers: int = 4,
        num_reducers: int = 4,
        **kw: Any,
    ) -> "RuntimeOptions":
        """SupMR with inter-file chunking; ``chunk_size`` accepts '1GB' etc."""
        kw.setdefault("merge_algorithm", MergeAlgorithm.PWAY)
        return cls(
            num_mappers=num_mappers,
            num_reducers=num_reducers,
            chunk_strategy=ChunkStrategy.INTER_FILE,
            chunk_bytes=parse_size(chunk_size),
            **kw,
        )

    @classmethod
    def supmr_intrafile(
        cls,
        files_per_chunk: int,
        num_mappers: int = 4,
        num_reducers: int = 4,
        **kw: Any,
    ) -> "RuntimeOptions":
        """SupMR with intra-file (many small files) chunking."""
        kw.setdefault("merge_algorithm", MergeAlgorithm.PWAY)
        return cls(
            num_mappers=num_mappers,
            num_reducers=num_reducers,
            chunk_strategy=ChunkStrategy.INTRA_FILE,
            files_per_chunk=files_per_chunk,
            **kw,
        )

    @classmethod
    def supmr_variable(
        cls,
        schedule: "Sequence[int | str]",
        num_mappers: int = 4,
        num_reducers: int = 4,
        **kw: Any,
    ) -> "RuntimeOptions":
        """SupMR with an explicit chunk-size schedule ('8MB', 4096, ...)."""
        kw.setdefault("merge_algorithm", MergeAlgorithm.PWAY)
        return cls(
            num_mappers=num_mappers,
            num_reducers=num_reducers,
            chunk_strategy=ChunkStrategy.VARIABLE,
            chunk_schedule=tuple(parse_size(s) for s in schedule),
            **kw,
        )

    @classmethod
    def supmr_hybrid(
        cls,
        chunk_size: int | str,
        num_mappers: int = 4,
        num_reducers: int = 4,
        **kw: Any,
    ) -> "RuntimeOptions":
        """SupMR with hybrid inter/intra-file chunking to a byte budget."""
        kw.setdefault("merge_algorithm", MergeAlgorithm.PWAY)
        return cls(
            num_mappers=num_mappers,
            num_reducers=num_reducers,
            chunk_strategy=ChunkStrategy.HYBRID,
            chunk_bytes=parse_size(chunk_size),
            **kw,
        )
