"""``supmr`` command-line interface.

Subcommands:

* ``supmr experiments [ids...]`` — regenerate the paper's tables/figures
  on the simulated testbed (all of them by default) and optionally write
  CSV artifacts;
* ``supmr wordcount FILES...`` / ``supmr sort FILE`` — run the real
  runtime on real data, baseline or SupMR configuration;
* ``supmr gen {text,terasort,files}`` — produce workload inputs;
* ``supmr serve`` / ``submit`` / ``status`` / ``result`` / ``cancel`` /
  ``shutdown`` — the long-lived multi-job daemon (:mod:`repro.service`)
  and its client side;
* ``supmr gc DIR...`` — reclaim completed checkpoint directories.

Exit codes are part of the contract (:mod:`repro.exitcodes`): 0 success,
1 runtime failure, 2 usage error, 3 fault budget exhausted, 4 job
deadline expired — identical for one-shot runs and ``submit --wait``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro._version import __version__
from repro.apps.sortapp import make_sort_job
from repro.apps.wordcount import make_wordcount_job
from repro.core.options import RuntimeOptions
from repro.core.phoenix import PhoenixRuntime
from repro.core.result import JobResult
from repro.core.supmr import SupMRRuntime
from repro.errors import ReproError
from repro.exitcodes import classify_exception, classify_result
from repro.experiments import available_experiments, run_experiment
from repro.service.jobspec import build_options
from repro.util.units import fmt_bytes, fmt_seconds, parse_size
from repro.workloads import (
    generate_small_files,
    generate_terasort_file,
    generate_text_file,
)


def _print_result(result: JobResult) -> None:
    t = result.timings
    print(f"job {result.job_name!r} on {result.runtime} runtime")
    print(f"  input:  {fmt_bytes(result.input_bytes)} in {result.n_chunks} chunk(s)")
    if t.read_map_combined:
        print(f"  read+map (pipelined): {fmt_seconds(t.read_map_s)}")
    else:
        print(f"  read:   {fmt_seconds(t.read_s)}")
        print(f"  map:    {fmt_seconds(t.map_s)}")
    print(f"  reduce: {fmt_seconds(t.reduce_s)}")
    print(f"  merge:  {fmt_seconds(t.merge_s)}")
    print(f"  total:  {fmt_seconds(t.total_s)}")
    print(f"  output: {result.n_output_pairs} pairs; "
          f"container rounds={result.container_stats.rounds}")
    if result.spill_stats is not None:
        s = result.spill_stats
        print(f"  spill:  {s.runs} run(s), {fmt_bytes(s.spilled_bytes)} "
              f"spilled; peak {fmt_bytes(s.peak_accounted_bytes)} of "
              f"{fmt_bytes(s.budget_bytes)} budget; combine x"
              f"{s.combine_reduction:.2f}; merge fan-in {s.merge_fan_in} "
              f"({s.merge_passes} pass(es))")
    if result.fault_log is not None:
        f = result.fault_log
        print(f"  faults: {f.injected} injected, {f.retries} retried, "
              f"{f.recoveries} recovered, {f.quarantined} quarantined")
    if result.counters.get("shards"):
        print(f"  shards: {result.counters['shards']} shard worker(s); "
              f"{result.counters.get('shard_respawns', 0)} respawned, "
              f"{result.counters.get('partitions_reassigned', 0)} "
              f"partition(s) reassigned, "
              f"{result.counters.get('exchange_refetches', 0)} "
              f"exchange refetch(es)")
    if result.counters.get("io_budget_bps"):
        c = result.counters
        print(f"  qos:    tenant {c.get('tenant', 'default')!r} throttled at "
              f"{fmt_bytes(int(c['io_budget_bps']))}/s; "
              f"{fmt_bytes(int(c.get('throttle_bytes', 0)))} metered, "
              f"{c.get('throttle_waits', 0)} wait(s) totalling "
              f"{fmt_seconds(float(c.get('throttle_wait_s', 0.0)))}")
    if result.counters.get("resumed"):
        print(f"  resume: restored {result.counters.get('resumed_rounds', 0)} "
              "completed round(s) from the checkpoint")
    if result.counters.get("degraded"):
        marks = []
        if result.counters.get("deadline_expired"):
            marks.append("job deadline expired")
        if result.counters.get("pool_failures"):
            marks.append(
                f"pool failed {result.counters['pool_failures']}x, "
                f"finished on {result.counters.get('degraded_backend')}"
            )
        print(f"  DEGRADED: {'; '.join(marks) or 'partial result'}")
    print(f"  digest: {result.output_digest()}")


#: One shared lowering for CLI namespaces and submitted job specs, so
#: the one-shot and service paths cannot drift
#: (:func:`repro.service.jobspec.build_options`).
_options_from = build_options


def _cmd_experiments(args: argparse.Namespace) -> int:
    if args.list:
        for exp_id in available_experiments():
            print(exp_id)
        return 0
    ids = args.ids or available_experiments()
    for exp_id in ids:
        result = run_experiment(exp_id)
        print(result.render())
        if args.out:
            out_dir = Path(args.out)
            out_dir.mkdir(parents=True, exist_ok=True)
            for name, content in result.artifacts.items():
                (out_dir / name).write_text(content)
                print(f"wrote {out_dir / name}")
        print()
    return 0


def _run_job(job, options: RuntimeOptions) -> JobResult:
    if options.num_shards is not None:
        from repro.shard import ShardedRuntime

        return ShardedRuntime(options).run(job)
    if options.chunk_strategy.value == "none":
        return PhoenixRuntime(options).run(job)
    return SupMRRuntime(options).run(job)


def _maybe_timeline(args: argparse.Namespace, result: JobResult) -> None:
    if not getattr(args, "timeline", False):
        return
    from repro.analysis.timeline import (
        overlap_fraction,
        render_qos_summary,
        render_round_timeline,
        render_supervision_summary,
    )

    if result.timings.rounds:
        print()
        print(render_round_timeline(result.timings.rounds))
        print(f"overlap: {100 * overlap_fraction(result.timings.rounds):.0f}% "
              "of map time ran under ingest")
    summary = render_supervision_summary(result.counters)
    if summary:
        print(summary)
    qos_line = render_qos_summary(result.counters)
    if qos_line:
        print(qos_line)


def _cmd_wordcount(args: argparse.Namespace) -> int:
    options = _options_from(args)
    result = _run_job(make_wordcount_job(args.files), options)
    if getattr(args, "json", False):
        from repro.analysis.report import to_json

        print(to_json(result))
        return classify_result(result.counters)
    _print_result(result)
    for key, count in result.output[: args.top]:
        print(f"  {key.decode('utf-8', 'replace'):<24s} {count}")
    _maybe_timeline(args, result)
    return classify_result(result.counters)


def _cmd_sort(args: argparse.Namespace) -> int:
    options = _options_from(args)
    result = _run_job(make_sort_job([args.file]), options)
    if getattr(args, "json", False):
        from repro.analysis.report import to_json

        print(to_json(result))
        return classify_result(result.counters)
    _print_result(result)
    _maybe_timeline(args, result)
    return classify_result(result.counters)


def _cmd_tune(args: argparse.Namespace) -> int:
    from repro.simrt.costmodel import PAPER_SORT, PAPER_WORDCOUNT
    from repro.tuning.model import optimal_chunk_size, predict_read_map_s

    profile = PAPER_WORDCOUNT if args.app == "wordcount" else PAPER_SORT
    input_bytes = parse_size(args.input_size)
    result = optimal_chunk_size(profile, input_bytes, contexts=args.contexts)
    print(f"app={args.app} input={fmt_bytes(input_bytes)} "
          f"contexts={args.contexts}")
    print(f"  optimal chunk size : {fmt_bytes(result.chunk_bytes)} "
          f"({result.n_chunks} chunks)")
    print(f"  closed-form c*     : {fmt_bytes(result.closed_form_bytes)}")
    print(f"  predicted read+map : {fmt_seconds(result.predicted_read_map_s)}")
    print(f"  unpipelined        : {fmt_seconds(result.baseline_read_map_s)}")
    print(f"  predicted speedup  : {result.predicted_speedup:.3f}x")
    for label in args.compare or []:
        chunk = parse_size(label)
        t = predict_read_map_s(profile, input_bytes, chunk, args.contexts)
        print(f"  at {label:>8s}        : {fmt_seconds(t)}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.workloads.valsort import validate_file

    report = validate_file(args.file)
    print(f"records          : {report.records}")
    print(f"sorted           : {report.sorted_ok}")
    if report.first_unordered_index is not None:
        print(f"first disorder at: record {report.first_unordered_index}")
    print(f"duplicate keys   : {report.duplicate_keys}")
    print(f"checksum         : {report.checksum:016x}")
    return 0 if report.valid else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.cli import cmd_serve

    return cmd_serve(args)


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.service.cli import cmd_submit

    return cmd_submit(args)


def _cmd_status(args: argparse.Namespace) -> int:
    from repro.service.cli import cmd_status

    return cmd_status(args)


def _cmd_result(args: argparse.Namespace) -> int:
    from repro.service.cli import cmd_result

    return cmd_result(args)


def _cmd_cancel(args: argparse.Namespace) -> int:
    from repro.service.cli import cmd_cancel

    return cmd_cancel(args)


def _cmd_shutdown(args: argparse.Namespace) -> int:
    from repro.service.cli import cmd_shutdown

    return cmd_shutdown(args)


def _cmd_agents(args: argparse.Namespace) -> int:
    from repro.service.cli import cmd_agents

    return cmd_agents(args)


def _cmd_agent(args: argparse.Namespace) -> int:
    from repro.net.agent import cmd_agent

    return cmd_agent(args)


def _cmd_gc(args: argparse.Namespace) -> int:
    from repro.resilience.journal import JobJournal

    removed = kept = 0
    for raw in args.dirs:
        directory = Path(raw)
        if not directory.exists():
            print(f"  {directory}: no such directory", file=sys.stderr)
            continue
        if JobJournal.purge_dir(directory, require_complete=not args.force):
            removed += 1
            print(f"  {directory}: removed")
        else:
            kept += 1
            stage = JobJournal.peek_stage(directory) or "no journal"
            print(f"  {directory}: kept ({stage}; resumable state is "
                  "only collected with --force)")
    print(f"gc: {removed} removed, {kept} kept")
    return 0


def _cmd_gen(args: argparse.Namespace) -> int:
    if args.kind == "text":
        written = generate_text_file(args.path, parse_size(args.size), seed=args.seed)
        print(f"wrote {fmt_bytes(written)} of text to {args.path}")
    elif args.kind == "terasort":
        written = generate_terasort_file(args.path, args.records, seed=args.seed)
        print(f"wrote {args.records} records ({fmt_bytes(written)}) to {args.path}")
    else:  # files
        paths = generate_small_files(
            args.path, args.files, parse_size(args.size), seed=args.seed
        )
        print(f"wrote {len(paths)} files of {args.size} each under {args.path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``supmr`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="supmr",
        description="SupMR reproduction: scale-up MapReduce with ingest "
                    "chunk pipelining and p-way merge",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_exp = sub.add_parser("experiments", help="regenerate paper tables/figures")
    p_exp.add_argument("ids", nargs="*", metavar="EXP",
                       help=f"experiment ids (default: all of "
                            f"{', '.join(available_experiments())})")
    p_exp.add_argument("--out", help="directory for CSV artifacts")
    p_exp.add_argument("--list", action="store_true",
                       help="list experiment ids and exit")
    p_exp.set_defaults(fn=_cmd_experiments)

    def add_runtime_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--mappers", type=int, default=4)
        p.add_argument("--reducers", type=int, default=4)
        p.add_argument("--backend",
                       choices=("serial", "thread", "process"),
                       default=None,
                       help="execution backend: serial (inline), thread "
                            "(default; GIL-bound CPU phases), or process "
                            "(forked workers, zero-copy mmap ingest)")
        p.add_argument("--baseline", action="store_true",
                       help="original runtime (no ingest chunks)")
        p.add_argument("--chunk-size", help="inter-file chunk size, e.g. 4MB")
        p.add_argument("--memory-budget",
                       help="intermediate container byte budget, e.g. 64MB; "
                            "spills to disk when exceeded")
        p.add_argument("--timeline", action="store_true",
                       help="render the pipeline timeline after the run")
        p.add_argument("--json", action="store_true",
                       help="emit the result as JSON instead of text")
        p.add_argument("--faults",
                       help="fault plan, e.g. "
                            "'ingest.read=once,record.corrupt=0.001'")
        p.add_argument("--fault-seed", type=int, default=0,
                       help="seed for the deterministic fault plan")
        p.add_argument("--retry", type=int, default=None, metavar="N",
                       help="retry budget per fault site (default 3; "
                            "0 fails fast)")
        p.add_argument("--skip-budget", type=int, default=None, metavar="N",
                       help="max corrupt records to quarantine before "
                            "aborting (default 1000)")
        p.add_argument("--checkpoint-dir", metavar="DIR",
                       help="journal completed work under DIR so a killed "
                            "job can be resumed")
        p.add_argument("--resume", action="store_true",
                       help="resume from the journal in --checkpoint-dir "
                            "instead of starting fresh")
        p.add_argument("--job-deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="stop admitting new work after SECONDS and "
                            "return the partial result marked DEGRADED")
        p.add_argument("--no-supervise", action="store_true",
                       help="disable worker supervision and the backend "
                            "degradation ladder (PR-3 behavior)")
        p.add_argument("--shards", type=int, default=None, metavar="N",
                       help="run the job scaled out across N supervised "
                            "shard worker processes (fault-tolerant "
                            "sharded runtime)")
        p.add_argument("--shard-dir", metavar="DIR",
                       help="working directory for shard pid files and "
                            "exchanged run files (default: a private "
                            "temporary directory)")
        p.add_argument("--peers", metavar="HOST:PORT,...",
                       help="place the shard workers on these remote "
                            "agents (requires --shards; start each with "
                            "'supmr agent --listen HOST:PORT'); "
                            "unreachable hosts degrade to local "
                            "execution with an identical digest")
        p.add_argument("--net-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="liveness and transfer deadline for --peers "
                            "runs (default 10)")
        p.add_argument("--io-budget", metavar="RATE",
                       help="token-bucket I/O bandwidth cap in bytes/s, "
                            "e.g. 64MB; throttles ingest reads and spill "
                            "writes (default: unthrottled)")
        p.add_argument("--io-burst", metavar="SIZE",
                       help="token-bucket burst capacity in bytes "
                            "(default: one second's worth of --io-budget)")
        p.add_argument("--tenant", default="default",
                       help="tenant the job is accounted to (QoS counters, "
                            "per-tenant service budgets)")
        p.add_argument("--io-priority", type=int, default=0,
                       help="bandwidth priority class for priority-aware "
                            "QoS policies (higher gets bandwidth first)")
        p.add_argument("--transport",
                       choices=("auto", "shm", "pipe"),
                       default=None,
                       help="process-backend result transport: shared-memory "
                            "segments (shm), queue pipes (pipe), or auto "
                            "(shm when /dev/shm works; the default)")
        p.add_argument("--no-persistent-pool", action="store_true",
                       help="fork a fresh worker pool per wave instead of "
                            "reusing one pre-forked pool per job")
        p.add_argument("--ingest-readers", type=int, default=None, metavar="N",
                       help="concurrent ingest prefetch readers (N>1 enables "
                            "the multi-queue async ingest pipeline)")
        p.add_argument("--ingest-depth", type=int, default=None, metavar="N",
                       help="buffered-chunk window for the prefetch pipeline "
                            "(default: readers+1)")

    p_wc = sub.add_parser("wordcount", help="run word count on real files")
    p_wc.add_argument("files", nargs="+")
    p_wc.add_argument("--files-per-chunk", type=int,
                      help="intra-file chunking (many small files)")
    p_wc.add_argument("--top", type=int, default=10,
                      help="print the first N output pairs")
    add_runtime_args(p_wc)
    p_wc.set_defaults(fn=_cmd_wordcount)

    p_sort = sub.add_parser("sort", help="run terasort on a real file")
    p_sort.add_argument("file")
    add_runtime_args(p_sort)
    p_sort.set_defaults(fn=_cmd_sort)

    p_tune = sub.add_parser(
        "tune", help="model-based optimal chunk size (paper future work)"
    )
    p_tune.add_argument("app", choices=("wordcount", "sort"))
    p_tune.add_argument("--input-size", default="155GB")
    p_tune.add_argument("--contexts", type=int, default=32)
    p_tune.add_argument("--compare", nargs="*", metavar="SIZE",
                        help="also predict these chunk sizes (e.g. 1GB 50GB)")
    p_tune.set_defaults(fn=_cmd_tune)

    p_val = sub.add_parser(
        "validate", help="valsort-style check of a terasort output file"
    )
    p_val.add_argument("file")
    p_val.set_defaults(fn=_cmd_validate)

    # -- job service --------------------------------------------------------

    def add_state_dir(p: argparse.ArgumentParser) -> None:
        p.add_argument("--state-dir", required=True, metavar="DIR",
                       help="the service state directory (endpoint file, "
                            "job records, per-job checkpoints)")

    p_serve = sub.add_parser(
        "serve", help="run the long-lived multi-job daemon"
    )
    add_state_dir(p_serve)
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=0,
                         help="TCP port (default 0: pick a free one and "
                              "advertise it in the state dir)")
    p_serve.add_argument("--max-jobs", type=int, default=2, metavar="N",
                         help="jobs allowed to run concurrently")
    p_serve.add_argument("--queue-depth", type=int, default=16, metavar="N",
                         help="queued jobs before submissions are "
                              "rejected with queue-full")
    p_serve.add_argument("--service-budget", metavar="SIZE",
                         help="cap on the sum of admitted jobs' memory "
                              "budgets, e.g. 1GB; submissions past it are "
                              "rejected with budget-exceeded")
    p_serve.add_argument("--retention", type=int, default=4, metavar="N",
                         help="finished jobs whose checkpoint dirs are "
                              "kept after result retrieval")
    p_serve.add_argument("--max-attempts", type=int, default=3, metavar="N",
                         help="runner launches per job before it is failed")
    p_serve.add_argument("--job-timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="hard wall-clock cap per runner attempt")
    p_serve.add_argument("--node-bandwidth", metavar="RATE",
                         help="aggregate node I/O bandwidth in bytes/s, "
                              "e.g. 200MB; enables dispatch-time fair-share "
                              "assignment and overload shedding")
    p_serve.add_argument("--qos-policy", default="max-min",
                         choices=("fair-share", "max-min", "priority"),
                         help="bandwidth allocation policy used at dispatch "
                              "(default max-min water-filling)")
    p_serve.add_argument("--tenant-budget", metavar="SIZE",
                         help="per-tenant cap on the sum of admitted memory "
                              "budgets; past it submissions are rejected "
                              "with tenant-budget-exceeded")
    p_serve.add_argument("--tenant-jobs", type=int, default=None,
                         metavar="N",
                         help="per-tenant cap on queued+running jobs")
    p_serve.add_argument("--default-job-budget", metavar="SIZE",
                         help="memory budget charged to jobs that declare "
                              "none (default: such jobs are rejected when "
                              "--service-budget is set)")
    p_serve.add_argument("--aging-every", type=int, default=None,
                         metavar="N",
                         help="bump a waiting job's effective priority "
                              "every N dispatches (starvation bound)")
    p_serve.add_argument("--shed-factor", type=float, default=None,
                         help="shed new work once declared I/O demand "
                              "exceeds this multiple of --node-bandwidth "
                              "(default 2.0)")
    p_serve.add_argument("--agents", metavar="HOST:PORT,...",
                         help="seed the agent pool: remote 'supmr agent' "
                              "endpoints sharded jobs may be placed on "
                              "(more can register at runtime)")
    p_serve.add_argument("--health-interval", type=float, default=None,
                         metavar="SECONDS",
                         help="steady-state gap between agent health "
                              "probes (default 1.0)")
    p_serve.add_argument("--probe-timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="per-probe ping deadline before an agent "
                              "counts as failed (default 2.0)")
    p_serve.add_argument("--net-timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="liveness/transfer deadline handed to placed "
                              "jobs' runners")
    p_serve.add_argument("--faults",
                         help="service-site fault plan, e.g. "
                              "'service.conn.drop=0.2,service.job.crash=once'")
    p_serve.add_argument("--fault-seed", type=int, default=0)
    p_serve.set_defaults(fn=_cmd_serve)

    p_submit = sub.add_parser(
        "submit", help="submit a job to a running daemon"
    )
    add_state_dir(p_submit)
    p_submit.add_argument("--wait", action="store_true",
                          help="stream state transitions, print the result "
                               "report, and exit with the one-shot exit code")
    p_submit.add_argument("--wait-timeout", type=float, default=None,
                          metavar="SECONDS")
    p_submit.add_argument("--rerun", action="store_true",
                          help="wipe a finished identical job and run it "
                               "again instead of returning its result")
    p_submit.add_argument("--priority", type=int, default=0,
                          help="queue priority (higher runs earlier; FIFO "
                               "within a level)")
    p_submit.add_argument("--tag", default="",
                          help="free-form label folded into the job id so "
                               "deliberate duplicates stay distinct")
    submit_sub = p_submit.add_subparsers(dest="app", required=True)
    p_sub_wc = submit_sub.add_parser("wordcount")
    p_sub_wc.add_argument("files", nargs="+")
    p_sub_wc.add_argument("--files-per-chunk", type=int)
    add_runtime_args(p_sub_wc)
    p_sub_sort = submit_sub.add_parser("sort")
    p_sub_sort.add_argument("file")
    add_runtime_args(p_sub_sort)
    p_submit.set_defaults(fn=_cmd_submit)

    p_status = sub.add_parser(
        "status", help="show service / job state"
    )
    add_state_dir(p_status)
    p_status.add_argument("job_id", nargs="?", default=None)
    p_status.set_defaults(fn=_cmd_status)

    p_result = sub.add_parser(
        "result", help="fetch a finished job's JSON report (incl. digest)"
    )
    add_state_dir(p_result)
    p_result.add_argument("job_id")
    p_result.set_defaults(fn=_cmd_result)

    p_cancel = sub.add_parser("cancel", help="cancel a queued or running job")
    add_state_dir(p_cancel)
    p_cancel.add_argument("job_id")
    p_cancel.set_defaults(fn=_cmd_cancel)

    p_shutdown = sub.add_parser(
        "shutdown", help="ask the daemon to drain and exit"
    )
    add_state_dir(p_shutdown)
    p_shutdown.set_defaults(fn=_cmd_shutdown)

    p_agents = sub.add_parser(
        "agents", help="show or edit the daemon's agent pool"
    )
    add_state_dir(p_agents)
    group = p_agents.add_mutually_exclusive_group()
    group.add_argument("--register", metavar="HOST:PORT",
                       help="add one agent to the pool (it starts suspect "
                            "and takes work once a probe succeeds)")
    group.add_argument("--deregister", metavar="HOST:PORT",
                       help="drop one agent from the pool")
    p_agents.set_defaults(fn=_cmd_agents)

    p_agent = sub.add_parser(
        "agent", help="host shard workers for a remote coordinator"
    )
    p_agent.add_argument("--listen", default="127.0.0.1:0",
                         metavar="HOST:PORT",
                         help="bind address (port 0 picks a free port; "
                              "the bound address is printed and written "
                              "to --addr-file)")
    p_agent.add_argument("--workdir", metavar="DIR",
                         help="exchange workdir for hosted workers "
                              "(default: a private temporary directory)")
    p_agent.add_argument("--addr-file", metavar="FILE",
                         help="write the bound host:port here once "
                              "listening (for scripts racing startup)")
    p_agent.add_argument("--grace", type=float, default=10.0,
                         metavar="SECONDS",
                         help="keep hosted workers this long after losing "
                              "the coordinator connection before reaping "
                              "them (a reconnect inside it resumes)")
    p_agent.set_defaults(fn=_cmd_agent)

    p_gc = sub.add_parser(
        "gc", help="remove completed checkpoint directories"
    )
    p_gc.add_argument("dirs", nargs="+", metavar="DIR",
                      help="checkpoint directories (--checkpoint-dir "
                           "values) to consider")
    p_gc.add_argument("--force", action="store_true",
                      help="also remove resumable (incomplete) checkpoints")
    p_gc.set_defaults(fn=_cmd_gc)

    p_gen = sub.add_parser("gen", help="generate workload data")
    p_gen.add_argument("kind", choices=("text", "terasort", "files"))
    p_gen.add_argument("path")
    p_gen.add_argument("--size", default="4MB",
                       help="bytes for text / per-file size for files")
    p_gen.add_argument("--records", type=int, default=10000,
                       help="record count for terasort")
    p_gen.add_argument("--files", type=int, default=30,
                       help="file count for files")
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.set_defaults(fn=_cmd_gen)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return classify_exception(exc)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
