"""Analysis and reporting: traces, tables, speedups, ASCII figures."""

from repro.analysis.speedup import SpeedupSummary, phase_speedups
from repro.analysis.tables import AsciiTable
from repro.analysis.timeline import overlap_fraction, render_round_timeline
from repro.analysis.traces import (
    mean_utilization,
    phase_mean_utilization,
    sparkline,
    trace_csv,
)

__all__ = [
    "AsciiTable",
    "SpeedupSummary",
    "phase_speedups",
    "mean_utilization",
    "phase_mean_utilization",
    "sparkline",
    "trace_csv",
    "render_round_timeline",
    "overlap_fraction",
]
