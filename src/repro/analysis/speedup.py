"""Speedup accounting between runtime configurations.

The paper reports three families of numbers (abstract, section VI):
job-phase speedups (1.16x-3.13x), time-to-result speedups (1.10x-1.46x),
and CPU-utilization increases (50-100%).  :func:`phase_speedups` computes
all of them from a (baseline, optimized) result pair so the experiment
harness and the claims tests share one definition.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.result import PhaseTimings


@dataclass(frozen=True)
class SpeedupSummary:
    """baseline/optimized ratios (>1 means the optimization won)."""

    total: float
    read_map: float
    reduce: float
    merge: float
    utilization_gain_pct: float | None = None  # relative increase, percent

    def phase_range(self) -> tuple[float, float]:
        """(min, max) over the phase speedups the paper quotes."""
        phases = [self.read_map, self.merge]
        return min(phases), max(phases)


def _ratio(baseline: float, optimized: float) -> float:
    if optimized <= 0:
        return float("inf") if baseline > 0 else 1.0
    return baseline / optimized


def phase_speedups(
    baseline: PhaseTimings,
    optimized: PhaseTimings,
    baseline_util_pct: float | None = None,
    optimized_util_pct: float | None = None,
) -> SpeedupSummary:
    """Speedups of ``optimized`` relative to ``baseline``.

    ``read_map`` compares the combined ingest+map wall-clock (the merged
    Table II cell) regardless of whether either side pipelined.
    """
    util_gain = None
    if baseline_util_pct is not None and optimized_util_pct is not None:
        if baseline_util_pct > 0:
            util_gain = 100.0 * (optimized_util_pct - baseline_util_pct) / baseline_util_pct
    return SpeedupSummary(
        total=_ratio(baseline.total_s, optimized.total_s),
        read_map=_ratio(baseline.read_map_s, optimized.read_map_s),
        reduce=_ratio(baseline.reduce_s, optimized.reduce_s),
        merge=_ratio(baseline.merge_s, optimized.merge_s),
        utilization_gain_pct=util_gain,
    )
