"""CPU-utilization trace utilities.

The paper's figures are collectl traces (total utilization vs wall-clock
with user/sys/iowait stacked).  These helpers reduce a sample list to the
statistics the figures communicate (mean utilization per window/phase)
and render terminal-friendly views (sparkline strips, CSV series for
external plotting).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.simhw.monitor import UtilizationSample
from repro.simrt.phases import PhaseSpan

_SPARK_CHARS = " .:-=+*#%@"


def mean_utilization(
    samples: Sequence[UtilizationSample],
    t0: float = 0.0,
    t1: float = float("inf"),
    busy_only: bool = False,
) -> float:
    """Mean total (or busy-only) utilization % over a time window."""
    window = [s for s in samples if t0 <= s.time <= t1]
    if not window:
        return 0.0
    if busy_only:
        return sum(s.busy_pct for s in window) / len(window)
    return sum(s.total_pct for s in window) / len(window)


def phase_mean_utilization(
    samples: Sequence[UtilizationSample], spans: Iterable[PhaseSpan],
    busy_only: bool = False,
) -> dict[str, float]:
    """Mean utilization % per recorded phase span."""
    out: dict[str, float] = {}
    for span in spans:
        out[span.name] = mean_utilization(
            samples, span.start, span.end, busy_only=busy_only
        )
    return out


def sparkline(
    samples: Sequence[UtilizationSample], width: int = 80,
    busy_only: bool = False,
) -> str:
    """A one-line terminal rendering of the utilization trace.

    Buckets samples into ``width`` columns; each glyph encodes the bucket
    mean on a 0-100% scale.  Good enough to *see* Fig. 1's step-down or
    Fig. 5b's dense spikes in a test log.
    """
    if not samples:
        return ""
    t_max = samples[-1].time or 1.0
    buckets: list[list[float]] = [[] for _ in range(width)]
    for s in samples:
        idx = min(width - 1, int(s.time / t_max * width))
        buckets[idx].append(s.busy_pct if busy_only else s.total_pct)
    glyphs = []
    for bucket in buckets:
        if not bucket:
            glyphs.append(" ")
            continue
        level = sum(bucket) / len(bucket) / 100.0
        glyphs.append(_SPARK_CHARS[min(len(_SPARK_CHARS) - 1,
                                       int(level * (len(_SPARK_CHARS) - 1) + 0.5))])
    return "".join(glyphs)


def trace_csv(samples: Sequence[UtilizationSample]) -> str:
    """The trace as CSV (time,user,sys,iowait,total) for external plotting."""
    lines = ["time_s,user_pct,sys_pct,iowait_pct,total_pct"]
    for s in samples:
        lines.append(
            f"{s.time:.3f},{s.user_pct:.2f},{s.sys_pct:.2f},"
            f"{s.iowait_pct:.2f},{s.total_pct:.2f}"
        )
    return "\n".join(lines) + "\n"


def step_levels(
    samples: Sequence[UtilizationSample], t0: float, t1: float,
    threshold_pct: float = 2.0,
) -> list[float]:
    """Distinct utilization plateaus in a window (Fig. 1's 'steps').

    Consecutive samples whose busy% differs by less than ``threshold_pct``
    belong to one plateau; returns the plateau means in time order.
    """
    window = [s for s in samples if t0 <= s.time <= t1]
    levels: list[list[float]] = []
    for s in window:
        if levels and abs(levels[-1][-1] - s.busy_pct) < threshold_pct:
            levels[-1].append(s.busy_pct)
        else:
            levels.append([s.busy_pct])
    return [sum(level) / len(level) for level in levels]
