"""ASCII pipeline timelines (the mechanics of Figs. 2 and 4).

Renders a SupMR run's round structure as two lanes — the ingest thread
and the mapper waves — so the double-buffering overlap is visible in a
terminal::

    ingest |####|####|####|####|
    map         |==|  |==|  |==|  |==|

``render_round_timeline`` consumes the :class:`RoundTiming` records every
SupMR result carries (real or simulated), and
:func:`render_supervision_summary` condenses a result's supervision and
shard-recovery counters into one status line for the same ``--timeline``
view.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.result import RoundTiming
from repro.errors import ExperimentError

#: ``(counter key, display label)`` pairs rendered by
#: :func:`render_supervision_summary`, in display order.  Worker-level
#: supervision tallies first, then shard/coordinator-level recovery.
_SUPERVISION_FIELDS: tuple[tuple[str, str], ...] = (
    ("worker_respawns", "respawns"),
    ("worker_crashes", "crashes"),
    ("lease_expiries", "lease-expiries"),
    ("task_redispatches", "re-dispatches"),
    ("tasks_skipped", "skipped"),
    ("shard_respawns", "shard-respawns"),
    ("shard_crashes", "shard-crashes"),
    ("shard_lease_expiries", "shard-lease-expiries"),
    ("shards_lost", "shards-lost"),
    ("partitions_reassigned", "partitions-reassigned"),
    ("speculative_shards", "speculative"),
    ("exchange_refetches", "exchange-refetches"),
)


def _lane(segments: list[tuple[float, float]], total: float, width: int,
          glyph: str) -> str:
    """Render [start, end) second-spans as glyph runs on a blank lane."""
    lane = [" "] * width
    for start, end in segments:
        a = int(start / total * width)
        b = max(a + 1, int(end / total * width))
        for i in range(a, min(b, width)):
            lane[i] = glyph
    return "".join(lane)


def round_spans(rounds: Sequence[RoundTiming]) -> tuple[
    list[tuple[float, float]], list[tuple[float, float]], float
]:
    """(ingest spans, map spans, total) on the pipeline's wall clock.

    Round 0 is the serial first ingest; middle rounds overlap an ingest
    leg and a map leg starting together; the final round is map-only.
    """
    if not rounds:
        raise ExperimentError("no rounds to render")
    ingest: list[tuple[float, float]] = []
    mapping: list[tuple[float, float]] = []
    clock = 0.0
    for r in rounds:
        span = max(r.ingest_s, r.map_s)
        if r.ingest_s > 0:
            ingest.append((clock, clock + r.ingest_s))
        if r.map_s > 0:
            mapping.append((clock, clock + r.map_s))
        clock += span
    return ingest, mapping, clock


def render_round_timeline(
    rounds: Sequence[RoundTiming], width: int = 72
) -> str:
    """Two-lane ASCII timeline of the ingest chunk pipeline."""
    if width < 10:
        raise ExperimentError("width must be >= 10 characters")
    ingest, mapping, total = round_spans(rounds)
    if total <= 0:
        raise ExperimentError("rounds carry no time")
    lines = [
        f"pipeline timeline, {len(rounds)} rounds over {total:.3f}s "
        f"(# ingest, = map):",
        "ingest |" + _lane(ingest, total, width, "#") + "|",
        "map    |" + _lane(mapping, total, width, "=") + "|",
    ]
    return "\n".join(lines)


def render_supervision_summary(counters: Mapping[str, object]) -> str:
    """One-line summary of supervision/recovery counters, or ``""``.

    Picks the supervisor- and shard-level tallies out of a
    :class:`~repro.core.result.JobResult` ``counters`` mapping and
    renders the non-zero ones as ``supervision: respawns=2 crashes=1``.
    Returns the empty string when nothing noteworthy happened, so
    callers can print it unconditionally.
    """
    parts = [
        f"{label}={counters[key]}"
        for key, label in _SUPERVISION_FIELDS
        if counters.get(key)
    ]
    if not parts:
        return ""
    return "supervision: " + " ".join(parts)


def render_qos_summary(counters: Mapping[str, object]) -> str:
    """One-line summary of bandwidth-throttle counters, or ``""``.

    Rendered by ``--timeline`` alongside the supervision summary when a
    run carried an I/O budget: the metered byte count, the number of
    token-bucket waits and their total stall time, plus any injected
    ``qos.throttle.stall`` faults.  Unthrottled runs (no
    ``io_budget_bps`` counter) render nothing.
    """
    rate = counters.get("io_budget_bps")
    if not rate:
        return ""
    parts = [
        f"tenant={counters.get('tenant', 'default')}",
        f"rate={rate}B/s",
        f"metered={counters.get('throttle_bytes', 0)}B",
        f"waits={counters.get('throttle_waits', 0)}",
        f"wait_s={counters.get('throttle_wait_s', 0.0)}",
    ]
    if counters.get("throttle_stalls"):
        parts.append(f"stalls={counters['throttle_stalls']}")
    return "qos: " + " ".join(parts)


def overlap_fraction(rounds: Sequence[RoundTiming]) -> float:
    """Fraction of total map time hidden under ingest, in [0, 1].

    1.0 means every map second ran concurrently with an ingest leg
    (perfect pipelining); 0.0 means no overlap (e.g. a single chunk).
    """
    hidden = 0.0
    map_total = 0.0
    for r in rounds:
        map_total += r.map_s
        if r.ingest_s > 0 and r.map_s > 0:
            hidden += min(r.ingest_s, r.map_s)
    if map_total == 0:
        return 0.0
    return hidden / map_total
