"""Machine-readable result reports.

``JobResult`` and ``SimJobResult`` carry nested dataclasses and bytes
keys; these helpers flatten them into JSON-safe dictionaries (and JSON
text) so runs can be logged, diffed, and post-processed outside Python —
the CLI's ``--json`` flag uses them.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.result import JobResult, PhaseTimings
from repro.faults.log import FaultLog
from repro.simrt.phases import SimJobResult


def _json_safe(value: Any) -> Any:
    if isinstance(value, bytes):
        return value.decode("utf-8", "backslashreplace")
    if isinstance(value, FaultLog):
        return fault_log_dict(value)
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(_json_safe(k)): _json_safe(v) for k, v in value.items()}
    if isinstance(value, BaseException):
        return repr(value)
    return value


def fault_log_dict(log: FaultLog) -> dict[str, Any]:
    """A :class:`~repro.faults.log.FaultLog` as summary plus event list."""
    return {
        "summary": _json_safe(log.summary()),
        "events": [
            {
                "site": e.site,
                "action": e.action,
                "detail": _json_safe(e.detail),
                "scope": e.scope,
                "attempt": e.attempt,
                "time_s": e.time_s,
            }
            for e in log.events
        ],
    }


def timings_dict(timings: PhaseTimings) -> dict[str, Any]:
    """Phase timings as a flat dictionary (rounds included)."""
    return {
        "read_s": timings.read_s,
        "map_s": timings.map_s,
        "read_map_s": timings.read_map_s,
        "reduce_s": timings.reduce_s,
        "merge_s": timings.merge_s,
        "total_s": timings.total_s,
        "read_map_combined": timings.read_map_combined,
        "spill_s": timings.spill_s,
        "rounds": [
            {
                "index": r.index,
                "ingest_s": r.ingest_s,
                "map_s": r.map_s,
                "chunk_bytes": r.chunk_bytes,
            }
            for r in timings.rounds
        ],
    }


def job_result_dict(result: JobResult, include_output: bool = False) -> dict:
    """A ``JobResult`` as a JSON-safe dictionary.

    Output pairs are omitted by default (they can be huge); metadata,
    timings, counters and container stats are always included.
    """
    data: dict[str, Any] = {
        "job": result.job_name,
        "runtime": result.runtime,
        "input_bytes": result.input_bytes,
        "n_chunks": result.n_chunks,
        "n_output_pairs": result.n_output_pairs,
        "digest": result.output_digest(),
        "timings": timings_dict(result.timings),
        "container": {
            "emits": result.container_stats.emits,
            "distinct_keys": result.container_stats.distinct_keys,
            "rounds": result.container_stats.rounds,
        },
        "counters": _json_safe(result.counters),
    }
    if result.spill_stats is not None:
        s = result.spill_stats
        data["spill"] = {
            "budget_bytes": s.budget_bytes,
            "peak_accounted_bytes": s.peak_accounted_bytes,
            "within_budget": s.within_budget,
            "runs": s.runs,
            "spilled_bytes": s.spilled_bytes,
            "spilled_records": s.spilled_records,
            "combine_pairs_in": s.combine_pairs_in,
            "combine_pairs_out": s.combine_pairs_out,
            "combine_reduction": s.combine_reduction,
            "merge_fan_in": s.merge_fan_in,
            "merge_passes": s.merge_passes,
            "merge_rewritten_bytes": s.merge_rewritten_bytes,
            "spill_write_s": s.spill_write_s,
        }
    if result.fault_log is not None:
        data["faults"] = fault_log_dict(result.fault_log)
    if include_output:
        data["output"] = [
            [_json_safe(k), _json_safe(v)] for k, v in result.output
        ]
    return data


def sim_result_dict(result: SimJobResult) -> dict:
    """A simulated run as a JSON-safe dictionary (trace included)."""
    return {
        "app": result.app,
        "runtime": result.runtime,
        "input_bytes": result.input_bytes,
        "chunk_bytes": result.chunk_bytes,
        "timings": timings_dict(result.timings),
        "spans": [
            {"name": s.name, "start": s.start, "end": s.end}
            for s in result.spans
        ],
        "samples": [
            {
                "time": s.time,
                "user_pct": s.user_pct,
                "sys_pct": s.sys_pct,
                "iowait_pct": s.iowait_pct,
            }
            for s in result.samples
        ],
        "extras": _json_safe(result.extras),
    }


def to_json(result: JobResult | SimJobResult, indent: int = 2,
            include_output: bool = False) -> str:
    """Render either result kind as JSON text."""
    if isinstance(result, JobResult):
        data = job_result_dict(result, include_output=include_output)
    else:
        data = sim_result_dict(result)
    return json.dumps(data, indent=indent, sort_keys=True)
