"""Minimal ASCII table renderer for experiment reports."""

from __future__ import annotations

from typing import Sequence

from repro.errors import ExperimentError


class AsciiTable:
    """Fixed-column table with a header row, rendered monospace."""

    def __init__(self, headers: Sequence[str]) -> None:
        if not headers:
            raise ExperimentError("table needs at least one column")
        self.headers = [str(h) for h in headers]
        self.rows: list[list[str]] = []

    def add_row(self, *cells: object) -> None:
        """Append one row; cell count must match the headers."""
        if len(cells) != len(self.headers):
            raise ExperimentError(
                f"row has {len(cells)} cells; table has {len(self.headers)} columns"
            )
        self.rows.append([str(c) for c in cells])

    def render(self) -> str:
        """The table as aligned monospace text."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt(cells: Sequence[str]) -> str:
            return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

        sep = "-+-".join("-" * w for w in widths)
        lines = [fmt(self.headers), sep]
        lines.extend(fmt(row) for row in self.rows)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
