"""Shard planning: contiguous chunk blocks + partition ownership.

A :class:`ShardPlan` splits one job across ``num_shards`` independent
worker processes:

* **map side** — the ingest chunk plan is cut into *contiguous* blocks,
  one block per shard.  Contiguity is what makes the sharded output
  deterministic in the shard count: merging the shards' per-partition
  exchange runs in shard-id order reproduces the global chunk order of
  every key's values, so ``--shards 1/2/4`` produce byte-identical
  digests.
* **reduce side** — each of the job's ``num_reducers`` partitions is
  owned by the shard the consistent-hash :class:`~repro.shard.hashring.
  ShardMap` assigns it; on shard loss ownership of only that shard's
  partitions moves (to ring successors among the survivors).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chunking.chunk import Chunk, ChunkPlan
from repro.errors import ConfigError
from repro.shard.hashring import ShardMap


def chunk_blocks(n_chunks: int, num_shards: int) -> list[tuple[int, int]]:
    """``[start, end)`` chunk-index ranges, one contiguous block per shard.

    Blocks differ in size by at most one chunk; shards past the chunk
    count get empty ranges (they still participate in the reduce phase).
    """
    if num_shards < 1:
        raise ConfigError("num_shards must be >= 1")
    if n_chunks < 0:
        raise ConfigError("n_chunks must be >= 0")
    return [
        (n_chunks * i // num_shards, n_chunks * (i + 1) // num_shards)
        for i in range(num_shards)
    ]


@dataclass(frozen=True)
class ShardSpec:
    """One shard's share of the job: its chunk block and its partitions."""

    shard_id: int
    #: ``[start, end)`` indices into the chunk plan (contiguous block).
    chunk_start: int
    chunk_end: int
    #: Reducer partitions this shard owns, in index order.
    partitions: tuple[int, ...]

    @property
    def n_chunks(self) -> int:
        return self.chunk_end - self.chunk_start


class ShardPlan:
    """The full sharding of one job: specs, ring, and chunk plan."""

    def __init__(
        self,
        chunk_plan: ChunkPlan,
        num_shards: int,
        num_partitions: int,
    ) -> None:
        if num_shards < 1:
            raise ConfigError("num_shards must be >= 1")
        if num_partitions < 1:
            raise ConfigError("num_partitions must be >= 1")
        self.chunk_plan = chunk_plan
        self.num_shards = num_shards
        self.num_partitions = num_partitions
        self.ring = ShardMap(range(num_shards))
        ownership = self.ring.assign(num_partitions)
        blocks = chunk_blocks(chunk_plan.n_chunks, num_shards)
        self.shards: tuple[ShardSpec, ...] = tuple(
            ShardSpec(
                shard_id=sid,
                chunk_start=blocks[sid][0],
                chunk_end=blocks[sid][1],
                partitions=tuple(ownership[sid]),
            )
            for sid in range(num_shards)
        )

    def chunks_for(self, shard_id: int) -> list[Chunk]:
        """The shard's contiguous chunk block, in global chunk order."""
        spec = self.shards[shard_id]
        return list(self.chunk_plan.chunks[spec.chunk_start:spec.chunk_end])

    def reassign(
        self, dead: "set[int] | frozenset[int]"
    ) -> dict[int, list[int]]:
        """Ownership table with ``dead`` shards' partitions moved.

        Surviving shards keep exactly the partitions they already owned;
        only the dead shards' partitions move, each to its ring
        successor among the survivors.
        """
        survivors = self.ring.without(sorted(dead))
        return {
            sid: [
                p for p in range(self.num_partitions)
                if survivors.owner(p) == sid
            ]
            for sid in survivors.shard_ids
        }
