"""Fault-tolerant distributed sharding (``repro.shard``).

Scales one SupMR job *out* across supervised worker process groups
while keeping the paper's scale-up execution model inside each shard:

* :class:`ShardMap` — a consistent-hash ring assigning every reducer
  partition an owning shard, minimally disturbed by shard loss;
* :class:`ShardPlan` / :class:`ShardSpec` / :func:`chunk_blocks` —
  contiguous chunk-block planning that keeps the merged output
  byte-identical across shard counts;
* :mod:`repro.shard.exchange` — intermediate state exchanged as the
  existing checksummed spill-run files, CRC-verified on adoption with
  verify-then-refetch on mismatch;
* :class:`ShardedRuntime` / :func:`run_sharded` — the coordinator:
  per-shard leases with heartbeats, bounded worker respawn with
  journal resume, speculative re-execution of stragglers, and
  reduce-side partition reassignment over the ring.
"""

from repro.shard.exchange import (
    ExchangeRun,
    fetch_run,
    merged_partition_groups,
    reduce_partition,
    run_name,
    write_partition_runs,
)
from repro.shard.hashring import DEFAULT_REPLICAS, ShardMap
from repro.shard.plan import ShardPlan, ShardSpec, chunk_blocks

__all__ = [
    "DEFAULT_REPLICAS",
    "ExchangeRun",
    "ShardMap",
    "ShardPlan",
    "ShardSpec",
    "ShardedRuntime",
    "chunk_blocks",
    "fetch_run",
    "merged_partition_groups",
    "reduce_partition",
    "run_name",
    "run_sharded",
    "write_partition_runs",
]


def __getattr__(name: str):
    """Lazily import the coordinator exports (PEP 562).

    The coordinator imports the worker entrypoint
    (``repro.parallel.shard_worker``), which itself imports
    :mod:`repro.shard.exchange`; importing the coordinator eagerly here
    would close that loop into a circular import whenever the worker
    module happens to be imported first (as the API-doc generator's
    module walk does).
    """
    if name in ("ShardedRuntime", "run_sharded"):
        from repro.shard import coordinator

        return getattr(coordinator, name)
    raise AttributeError(f"module 'repro.shard' has no attribute {name!r}")
