"""Consistent-hash shard map: reducer partitions -> shard owners.

The coordinator assigns every reducer partition an owning shard through
a classic consistent-hash ring (virtual nodes per shard, positions from
the same process-stable FNV hash the partitioner uses), so ownership is
deterministic across runs and machines, roughly balanced, and — the
property the failover path relies on — *minimally disturbed* when a
shard dies: removing one shard moves only the partitions it owned, each
to its ring successor among the survivors, while every other partition
keeps its owner.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Sequence

from repro.errors import ConfigError
from repro.util.hashing import stable_hash

#: Ring positions per shard.  Enough that a handful of shards spread
#: partitions evenly; cheap enough that building a ring is trivial.
DEFAULT_REPLICAS = 64


class ShardMap:
    """An immutable consistent-hash ring over integer shard ids.

    ``owner(partition)`` is a pure function of the shard id set, the
    replica count, and the partition index — independent of insertion
    order, process, and ``PYTHONHASHSEED``.
    """

    def __init__(
        self, shard_ids: Iterable[int], replicas: int = DEFAULT_REPLICAS
    ) -> None:
        ids = sorted(set(int(s) for s in shard_ids))
        if not ids:
            raise ConfigError("ShardMap needs at least one shard id")
        if replicas < 1:
            raise ConfigError("ShardMap needs replicas >= 1")
        self.shard_ids: tuple[int, ...] = tuple(ids)
        self.replicas = replicas
        points: list[tuple[int, int]] = []
        for sid in ids:
            for replica in range(replicas):
                points.append((stable_hash(("shard", sid, replica)), sid))
        # Ties (astronomically unlikely) resolve to the lower shard id,
        # deterministically, via the tuple sort.
        points.sort()
        self._hashes = [h for h, _sid in points]
        self._owners = [sid for _h, sid in points]

    def owner(self, partition: int) -> int:
        """The shard owning ``partition`` (ring successor of its hash)."""
        h = stable_hash(("partition", int(partition)))
        i = bisect.bisect_right(self._hashes, h)
        if i == len(self._hashes):
            i = 0
        return self._owners[i]

    def assign(self, num_partitions: int) -> dict[int, list[int]]:
        """Partition indices grouped by owning shard, in index order.

        Every shard id appears in the result, possibly with an empty
        list — the coordinator dispatches to each shard either way so
        the reduce barrier stays uniform.
        """
        table: dict[int, list[int]] = {sid: [] for sid in self.shard_ids}
        for p in range(num_partitions):
            table[self.owner(p)].append(p)
        return table

    def without(self, dead: "int | Sequence[int]") -> "ShardMap":
        """A new map with ``dead`` shard(s) removed (failover view)."""
        gone = {dead} if isinstance(dead, int) else set(dead)
        survivors = [sid for sid in self.shard_ids if sid not in gone]
        if not survivors:
            raise ConfigError("cannot remove the last shard from the map")
        return ShardMap(survivors, replicas=self.replicas)

    def __len__(self) -> int:
        return len(self.shard_ids)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ShardMap shards={self.shard_ids} replicas={self.replicas}>"
