"""The sharded coordinator: fault-tolerant scale-out, one host or many.

:class:`ShardedRuntime` splits one job over ``options.num_shards``
independent supervised worker processes (:mod:`repro.parallel.
shard_worker`).  Each shard maps a *contiguous* block of the ingest
chunk plan, publishes its intermediate state as one checksummed spill-run
file per reducer partition (:mod:`repro.shard.exchange`), then reduces
the partitions the consistent-hash :class:`~repro.shard.hashring.
ShardMap` assigns it.  The coordinator merges the reduced partitions
with the job's configured merge algorithm, exactly like the unsharded
runtimes.

With ``options.peers`` set, shard worker groups are placed round-robin
on remote ``supmr agent`` daemons over the CRC-framed transport
(:mod:`repro.net`): commands and result blobs cross the wire instead of
process queues, and reduce-phase run fetches go through resumable,
verify-then-refetch range requests.  The recovery machinery below is
**placement-blind** — every worker hides behind one handle interface
(``send``/``alive``/``kill``), so leases, respawns, speculation, and
reassignment work identically for a forked child and a worker two hosts
away.

Robustness protocol:

* **leases** — every dispatched shard holds a lease renewed by each
  heartbeat on the result channel; a silent shard past
  ``policy.lease_timeout_s`` is killed and treated as dead.
* **map-phase deaths** — the dead shard's worker is respawned (bounded
  by ``policy.worker_respawn_budget``) and re-runs its block, resuming
  from its own per-shard journal when checkpointing is on.
* **host loss / partition** — a worker whose agent link died (or went
  silent past ``options.net_timeout_s``) is respawned **locally**
  without charging the respawn budget: losing a host is the network's
  fault, not the worker's.  Total peer loss therefore degrades to
  single-host execution — and because every respawn re-runs identical
  deterministic work, the digest is byte-identical to a local run.
* **stragglers** — once half the shards finished, a shard running past
  ``policy.straggler_threshold`` × the median finish time gets a
  speculative twin; the first ``map_done`` wins and the loser is killed.
  Both twins compute the identical deterministic block, so the adopted
  outbox is byte-identical either way (the tie-break is "first result
  message wins").
* **reduce-phase deaths** — the dead shard's partitions are *reassigned*
  to their ring successors among the survivors (only those partitions
  move), exercising the consistent-hash failover path.
* **exchange integrity** — every fetched run (local copy or remote
  transfer) is CRC-verified before adoption; corruption is refetched,
  never silently merged.

The ``shard.*`` and ``net.*`` fault sites are decided here, in the
coordinator, so a seeded plan replays the same failure schedule on
every run.
"""

from __future__ import annotations

import multiprocessing
import pickle
import queue as queue_mod
import shutil
import statistics
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

from repro.chunking.planner import plan_chunks, plan_whole_input
from repro.containers.base import ContainerStats
from repro.core.execution import merge_outputs
from repro.core.job import JobSpec
from repro.core.options import ChunkStrategy, RuntimeOptions
from repro.core.result import JobResult, PhaseTimings
from repro.core.timers import PhaseTimer
from repro.errors import ConfigError, NetError, ParallelError, RetryExhausted
from repro.faults.injector import FaultInjector
from repro.faults.log import (
    ACTION_REASSIGNED,
    ACTION_RESPAWNED,
    ACTION_RETRIED,
    ACTION_SPECULATIVE,
)
from repro.faults.plan import (
    SITE_NET_CONN_DROP,
    SITE_NET_FRAME_CORRUPT,
    SITE_NET_HOST_LOSS,
    SITE_NET_PARTITION,
    SITE_SHARD_EXCHANGE_CORRUPT,
    SITE_SHARD_STRAGGLER,
    SITE_SHARD_WORKER_LOSS,
)
from repro.parallel.backends import require_process_backend
from repro.parallel.shard_worker import (
    MODE_LOSS,
    MODE_RUN,
    MODE_STRAGGLE,
    MSG_MAP,
    MSG_REDUCE,
    shard_worker_main,
)
from repro.shard.exchange import collect_worker_events
from repro.shard.plan import ShardPlan
from repro.util.logging import get_logger

logger = get_logger(__name__)

#: Seconds between coordinator liveness/lease sweeps.
_POLL_S = 0.05
#: A shard is never declared a straggler before running this long —
#: speculation on sub-second jobs would only burn forks.
_SPECULATE_FLOOR_S = 1.0


class _LocalHandle:
    """One forked shard worker behind the placement-blind interface."""

    is_remote = False
    #: Where this worker's published runs can be fetched from: empty in
    #: a single-host run (plain file copies), the coordinator's own
    #: fetch exporter in a ``--peers`` run (remote reducers pull from
    #: it over the wire).
    fetch_addr = ""

    def __init__(
        self,
        proc: multiprocessing.process.BaseProcess,
        inbox: Any,
        fetch_addr: str = "",
    ) -> None:
        self.proc = proc
        self.inbox = inbox
        self.fetch_addr = fetch_addr
        self.name = proc.name

    @property
    def pid(self) -> "int | None":
        return self.proc.pid

    def send(self, msg: Any) -> None:
        self.inbox.put(msg)

    def alive(self) -> bool:
        return self.proc.is_alive()

    def kill(self) -> None:
        self.proc.kill()
        self.proc.join(timeout=5.0)

    def stop(self) -> None:
        try:
            self.inbox.put(None)
        except (ValueError, OSError):  # pragma: no cover - closed inbox
            pass

    def join(self, timeout: "float | None" = None) -> None:
        self.proc.join(timeout=timeout)

    def discard(self) -> None:
        self.inbox.cancel_join_thread()
        self.inbox.close()

    def describe_exit(self) -> str:
        return f"exited with code {self.proc.exitcode}"


@dataclass
class _ShardWorker:
    """One shard worker (local fork or remote) and its lease state."""

    sid: int
    wid: int
    handle: Any
    attempt: int = 0
    speculative: bool = False
    busy: bool = False
    started: float = 0.0
    last_heard: float = 0.0
    outbox: str = ""


@dataclass
class _Tally:
    """Coordinator-side survival counters surfaced on the job result."""

    respawns: int = 0
    crashes: int = 0
    lease_expiries: int = 0
    refetches: int = 0
    reassigned_partitions: int = 0
    host_losses: int = 0
    speculated: set = field(default_factory=set)
    shards_lost: set = field(default_factory=set)
    hosts_lost: set = field(default_factory=set)


class _Coordinator:
    """Drives one sharded job: spawn, lease, recover, collect."""

    def __init__(
        self,
        job: JobSpec,
        options: RuntimeOptions,
        plan: ShardPlan,
        workdir: Path,
        injector: FaultInjector | None,
        links: Sequence[Any] = (),
        self_addr: str = "",
    ) -> None:
        self.job = job
        self.options = options
        self.plan = plan
        self.policy = options.recovery
        self.workdir = workdir
        self.injector = injector
        self.links = list(links)
        self.self_addr = self_addr
        self.ctx = multiprocessing.get_context("fork")
        self.results_q = self.ctx.Queue()
        #: Active worker per shard id (the one reduce work goes to).
        self.workers: dict[int, _ShardWorker] = {}
        #: Speculative twins, keyed by shard id.
        self.backups: dict[int, _ShardWorker] = {}
        self.map_done: dict[int, dict] = {}
        self.outboxes: dict[int, str] = {}
        #: Fetch address per adopted outbox ("" = this host's files).
        self.via: dict[int, str] = {}
        self.tally = _Tally()
        self._wid = 0
        self._attempts: dict[int, int] = {}
        if self.links:
            from repro.net.jobs import job_to_wire, options_to_wire

            self._job_wire = job_to_wire(job)
            self._options_wire = options_to_wire(options)
            for link in self.links:
                # Worker result blobs flow into the same queue local
                # forks use; the collect/lease machinery cannot tell.
                link.attach(self.results_q.put, injector)

    # -- worker lifecycle ---------------------------------------------------

    def _spawn(
        self, sid: int, speculative: bool = False, force_local: bool = False
    ) -> _ShardWorker:
        wid = self._wid
        self._wid += 1
        link = None
        if self.links and not speculative and not force_local:
            # Contiguous round-robin placement; twins are always local
            # (they exist to beat a straggler, not to test the network)
            # and a recovery may pin the replacement to this host.
            candidate = self.links[sid % len(self.links)]
            if candidate.usable:
                link = candidate
        if link is not None:
            from repro.net.jobs import chunks_to_wire
            from repro.net.remote import RemoteHandle

            link.spawn(
                sid, wid, self._job_wire, self._options_wire,
                chunks_to_wire(self.plan.chunks_for(sid)),
                self.plan.num_partitions,
            )
            handle: Any = RemoteHandle(link, sid, wid)
        else:
            inbox = self.ctx.Queue()
            proc = self.ctx.Process(
                target=shard_worker_main,
                args=(
                    sid, self.job, self.options, self.plan.chunks_for(sid),
                    self.plan.num_partitions, inbox, self.results_q,
                ),
                daemon=True,
                name=f"repro-shard-{sid}.{wid}",
            )
            proc.start()
            handle = _LocalHandle(proc, inbox, fetch_addr=self.self_addr)
        worker = _ShardWorker(sid=sid, wid=wid, handle=handle,
                              speculative=speculative)
        if speculative:
            self.backups[sid] = worker
        else:
            self.workers[sid] = worker
            self._write_pid(worker)
        return worker

    def _write_pid(self, worker: _ShardWorker) -> None:
        """Publish the shard's current worker pid (for kill-based tests).

        Remote workers are other hosts' processes; their pids mean
        nothing here, so only local workers get a pid file.
        """
        if worker.handle.pid is None:
            return
        pid_path = self.workdir / f"worker-{worker.sid}.pid"
        pid_path.write_text(f"{worker.handle.pid}\n")

    def _kill(self, worker: _ShardWorker) -> None:
        """Forcibly end one worker and drop its command channel."""
        worker.handle.kill()
        worker.handle.discard()

    def _discard(self, worker: _ShardWorker) -> None:
        """Drop a dead worker's channel without blocking on its feeder."""
        worker.handle.discard()

    def shutdown(self) -> None:
        """Supervisor-style teardown: sentinel, join, kill stragglers."""
        everyone = list(self.workers.values()) + list(self.backups.values())
        for worker in everyone:
            worker.handle.stop()
        for worker in everyone:
            if not worker.handle.is_remote:
                worker.handle.join(timeout=5.0)
        for worker in everyone:
            if not worker.handle.is_remote and worker.handle.alive():
                worker.handle.kill()  # pragma: no cover - defensive
        for worker in everyone:
            worker.handle.discard()
        self.results_q.cancel_join_thread()
        self.results_q.close()

    # -- transport ----------------------------------------------------------

    def _collect(self) -> "tuple | None":
        try:
            blob = self.results_q.get(timeout=_POLL_S)
        except queue_mod.Empty:
            return None
        try:
            return pickle.loads(blob)
        except Exception as exc:  # noqa: BLE001 - corrupt transport
            raise ParallelError(
                f"could not decode a shard worker result: {exc!r}"
            ) from exc

    def _record(self, site: str, action: str, detail: str,
                scope: str = "", attempt: int = 0) -> None:
        if self.injector is not None:
            self.injector.log.record(
                site, action, detail, scope=scope, attempt=attempt
            )

    def _touch(self, sid: int, attempt: int) -> None:
        """Renew the lease of whichever worker of ``sid`` spoke."""
        now = time.monotonic()
        for worker in (self.workers.get(sid), self.backups.get(sid)):
            if worker is not None and worker.attempt == attempt:
                worker.last_heard = now
                return
        # Attempt no longer registered (already settled): renew the
        # shard's active worker so a late heartbeat never kills it.
        worker = self.workers.get(sid)
        if worker is not None:
            worker.last_heard = now

    # -- map phase ----------------------------------------------------------

    def _dispatch_map(self, worker: _ShardWorker, resume: bool) -> None:
        sid = worker.sid
        worker.attempt = self._attempts.get(sid, 0)
        self._attempts[sid] = worker.attempt + 1
        mode, straggle_s = MODE_RUN, 0.0
        if self.injector is not None and not worker.speculative:
            if self.injector.check(
                SITE_SHARD_WORKER_LOSS, scope=(sid,), attempt=worker.attempt
            ) is not None:
                mode = MODE_LOSS
            elif self.injector.check(
                SITE_SHARD_STRAGGLER, scope=(sid,), attempt=worker.attempt
            ) is not None:
                mode = MODE_STRAGGLE
                spec = self.injector.plan.spec_for(SITE_SHARD_STRAGGLER)
                straggle_s = (
                    spec.duration_s if spec.duration_s is not None else 1.0
                )
        outbox = self.workdir / f"out-{sid}.{worker.wid}"
        ckpt = None
        if self.options.checkpoint_dir is not None and not worker.speculative:
            # Twins must not share a journal directory with the primary
            # (concurrent writers), so only primaries checkpoint.  An
            # agent nulls this out for its own workers — the journal
            # dir is a coordinator-host path.
            ckpt = str(Path(self.options.checkpoint_dir) / f"shard-{sid}")
        worker.outbox = str(outbox)
        worker.busy = True
        worker.started = worker.last_heard = time.monotonic()
        worker.handle.send({
            "kind": MSG_MAP,
            "attempt": worker.attempt,
            "outbox": str(outbox),
            "mode": mode,
            "straggle_s": straggle_s,
            "ckpt": ckpt,
            "resume": resume,
        })

    def _inject_host_faults(self) -> None:
        """Roll the seeded host-level sites once per peer, per phase.

        ``net.host.loss`` commands the agent to die abruptly after its
        next relay (mid-map, workers and all); ``net.partition`` mutes
        it — alive but silent both ways — for the spec's duration.
        Either way the pinger declares the link unreachable and the
        recovery ladder moves the shards home.
        """
        if self.injector is None:
            return
        for i, link in enumerate(self.links):
            if not link.usable:
                continue
            if self.injector.check(SITE_NET_HOST_LOSS, scope=(i,)) is not None:
                link.inject_death(after_relays=1)
            elif self.injector.check(
                SITE_NET_PARTITION, scope=(i,)
            ) is not None:
                spec = self.injector.plan.spec_for(SITE_NET_PARTITION)
                duration = (
                    spec.duration_s
                    if spec is not None and spec.duration_s is not None
                    else 5.0
                )
                link.inject_partition(duration)

    def _settle_twins(self, sid: int, winner_attempt: int) -> None:
        """First ``map_done`` wins; the losing twin is killed.

        Both twins computed the same deterministic block, so either
        outbox is byte-identical — the tie-break only picks a process.
        """
        primary = self.workers.get(sid)
        backup = self.backups.pop(sid, None)
        if primary is not None and primary.attempt == winner_attempt:
            primary.busy = False
            if backup is not None:
                self._kill(backup)
            return
        if backup is not None and backup.attempt == winner_attempt:
            if primary is not None:
                self._kill(primary)
            backup.speculative = False
            backup.busy = False
            self.workers[sid] = backup
            self._write_pid(backup)

    def _recover_map_death(self, worker: _ShardWorker, detail: str) -> None:
        """Respawn (or promote the twin of) a shard that died mid-map."""
        sid = worker.sid
        if worker.speculative:
            # A dead backup costs nothing: the primary is still running.
            del self.backups[sid]
            self._discard(worker)
            return
        del self.workers[sid]
        self._discard(worker)
        backup = self.backups.pop(sid, None)
        if backup is not None:
            # The twin is already computing the same block — promote it
            # instead of spending a respawn.
            backup.speculative = False
            self.workers[sid] = backup
            self._write_pid(backup)
            self._record(
                SITE_SHARD_WORKER_LOSS, ACTION_RETRIED,
                f"shard {sid} primary died ({detail}); "
                "its speculative twin carries on",
                scope=repr((sid,)),
            )
            return
        if worker.handle.is_remote and not worker.handle.link.usable:
            # The degradation ladder's host rung: the worker is gone
            # because its *host* is gone (died or partitioned).  Bring
            # the shard home without charging the respawn budget — the
            # budget bounds worker pathology, not network weather — and
            # the identical deterministic block keeps the digest intact.
            self.tally.host_losses += 1
            self.tally.hosts_lost.add(worker.handle.link.addr)
            self._record(
                SITE_NET_HOST_LOSS, ACTION_RESPAWNED,
                f"shard {sid} was on unreachable host "
                f"{worker.handle.link.addr} ({detail}); respawned locally",
                scope=repr((sid,)),
            )
            replacement = self._spawn(sid, force_local=True)
            self._dispatch_map(
                replacement, resume=self.options.checkpoint_dir is not None
            )
            return
        self.tally.respawns += 1
        self._record(
            SITE_SHARD_WORKER_LOSS, ACTION_RESPAWNED,
            f"shard {sid} worker replaced: {detail}",
            scope=repr((sid,)),
        )
        if self.tally.respawns > self.policy.worker_respawn_budget:
            raise ParallelError(
                f"sharded coordinator exceeded its respawn budget "
                f"({self.policy.worker_respawn_budget}): {detail}"
            )
        replacement = self._spawn(sid)
        self._dispatch_map(
            replacement, resume=self.options.checkpoint_dir is not None
        )

    def _sweep_map(self) -> None:
        now = time.monotonic()
        for worker in (
            list(self.workers.values()) + list(self.backups.values())
        ):
            if worker.sid in self.map_done:
                continue
            if worker.handle.alive():
                if (
                    worker.busy
                    and now - worker.last_heard > self.policy.lease_timeout_s
                ):
                    self.tally.lease_expiries += 1
                    worker.handle.kill()
                    self._recover_map_death(
                        worker,
                        f"{worker.handle.name} exceeded its "
                        f"{self.policy.lease_timeout_s:.3g}s lease",
                    )
                continue
            self.tally.crashes += 1
            self._recover_map_death(
                worker,
                f"{worker.handle.name} {worker.handle.describe_exit()}",
            )

    def _maybe_speculate(self) -> None:
        if not self.policy.speculative or self.plan.num_shards < 2:
            return
        done = [p["duration"] for p in self.map_done.values()]
        if len(done) < max(1, self.plan.num_shards // 2):
            return
        threshold = max(
            _SPECULATE_FLOOR_S,
            self.policy.straggler_threshold * statistics.median(done),
        )
        now = time.monotonic()
        for sid, worker in list(self.workers.items()):
            if (
                sid in self.map_done
                or sid in self.backups
                or sid in self.tally.speculated
                or now - worker.started <= threshold
            ):
                continue
            self.tally.speculated.add(sid)
            self._record(
                SITE_SHARD_STRAGGLER, ACTION_SPECULATIVE,
                f"shard {sid} running {now - worker.started:.2f}s "
                f"(> {threshold:.2f}s); launching a speculative twin",
                scope=repr((sid,)),
            )
            twin = self._spawn(sid, speculative=True)
            self._dispatch_map(twin, resume=False)

    def run_map_phase(self) -> None:
        """Map every shard's block; survives deaths, hangs, stragglers."""
        require_process_backend()
        started = time.monotonic()
        for spec in self.plan.shards:
            worker = self._spawn(spec.shard_id)
            self._dispatch_map(worker, resume=self.options.resume)
        if self.links:
            self._inject_host_faults()
        while len(self.map_done) < self.plan.num_shards:
            msg = self._collect()
            if msg is not None:
                kind = msg[0]
                if kind == "hb":
                    _, sid, attempt, _round = msg
                    self._touch(sid, attempt)
                elif kind == "map_done":
                    _, sid, attempt, payload = msg
                    self._touch(sid, attempt)
                    if sid not in self.map_done:
                        payload["duration"] = time.monotonic() - started
                        self.map_done[sid] = payload
                        # The winner's host is where its outbox lives —
                        # reducers fetch through that address (or copy
                        # files when it is this host's).
                        self.outboxes[sid] = payload["outbox"]
                        self.via[sid] = ""
                        for w in (self.workers.get(sid),
                                  self.backups.get(sid)):
                            if w is not None and w.attempt == attempt:
                                self.via[sid] = w.handle.fetch_addr
                                break
                        self._settle_twins(sid, attempt)
                elif kind == "error":
                    _, sid, detail = msg
                    raise ParallelError(
                        f"shard {sid} failed during its map phase: {detail}"
                    )
            self._sweep_map()
            self._maybe_speculate()
        # Worker-side fault events replay in shard-id order so the log
        # sequence is deterministic regardless of completion order.
        if self.injector is not None:
            for sid in sorted(self.map_done):
                collect_worker_events(
                    self.injector.log, self.map_done[sid]["events"]
                )

    # -- reduce phase -------------------------------------------------------

    def _corrupt_plan(
        self, partitions: "list[int]"
    ) -> dict[tuple[int, int], list[int]]:
        """Pre-roll the exchange-corruption schedule for one dispatch.

        Attempts are rolled lazily — attempt ``k+1`` is only consulted
        when attempt ``k`` fired — exactly mirroring the worker's
        verify-then-refetch loop, so injected counts match fetch counts.
        """
        table: dict[tuple[int, int], list[int]] = {}
        injector = self.injector
        if injector is None:
            return table
        for p in partitions:
            for src in sorted(self.outboxes):
                attempts = []
                for a in range(self.policy.max_retries + 1):
                    if injector.check(
                        SITE_SHARD_EXCHANGE_CORRUPT, scope=(p, src), attempt=a
                    ) is None:
                        break
                    attempts.append(a)
                if attempts:
                    table[(p, src)] = attempts
        return table

    def _net_plan(
        self, partitions: "list[int]", self_addr: str
    ) -> tuple[dict, dict]:
        """Pre-roll the wire-fault schedule for one reduce dispatch.

        Only ``(partition, source)`` pairs that will actually cross the
        network are rolled: ``net.frame.corrupt`` damages the received
        copy (verify-then-refetch must repair it), ``net.conn.drop``
        severs the transfer (resume-from-offset must finish it).  Same
        lazy attempt pattern as the local corruption schedule.
        """
        corrupt: dict[tuple[int, int], list[int]] = {}
        drop: dict[tuple[int, int], list[int]] = {}
        injector = self.injector
        if injector is None:
            return corrupt, drop
        for p in partitions:
            for src in sorted(self.outboxes):
                if self.via.get(src, "") in ("", self_addr):
                    continue
                for site, table in (
                    (SITE_NET_FRAME_CORRUPT, corrupt),
                    (SITE_NET_CONN_DROP, drop),
                ):
                    attempts = []
                    for a in range(self.policy.max_retries + 1):
                        if injector.check(
                            site, scope=("fetch", p, src), attempt=a
                        ) is None:
                            break
                        attempts.append(a)
                    if attempts:
                        table[(p, src)] = attempts
        return corrupt, drop

    def _dispatch_reduce(
        self, worker: _ShardWorker, partitions: "list[int]", mode: str
    ) -> None:
        worker.busy = True
        worker.started = worker.last_heard = time.monotonic()
        msg: dict[str, Any] = {
            "kind": MSG_REDUCE,
            "mode": mode,
            "partitions": list(partitions),
            "sources": dict(self.outboxes),
            "corrupt": self._corrupt_plan(partitions),
            "workdir": str(self.workdir / f"in-{worker.sid}.{worker.wid}"),
        }
        if self.links:
            self_addr = worker.handle.fetch_addr or self.self_addr
            net_corrupt, net_drop = self._net_plan(partitions, self_addr)
            msg.update({
                "via": dict(self.via),
                "self_addr": self_addr,
                "net_timeout_s": self.options.net_timeout_s,
                "net_corrupt": net_corrupt,
                "net_drop": net_drop,
            })
        worker.handle.send(msg)

    def _reassign(
        self,
        worker: _ShardWorker,
        outstanding: dict[int, list[int]],
        pending: dict[int, list[int]],
        detail: str,
    ) -> None:
        """Move a dead reducer's partitions to their ring successors."""
        sid = worker.sid
        self.tally.shards_lost.add(sid)
        del self.workers[sid]
        self._discard(worker)
        # Both the in-flight partitions AND any queued behind the dead
        # worker are orphaned — dropping the queue would hang the phase.
        orphans = outstanding.pop(sid, []) + pending.pop(sid, [])
        if not self.workers:
            raise ParallelError(
                f"every shard worker died during the reduce phase "
                f"(last: {detail})"
            )
        if not orphans:
            return
        ring = self.plan.ring.without(sorted(self.tally.shards_lost))
        moved: dict[int, list[int]] = {}
        for p in orphans:
            moved.setdefault(ring.owner(p), []).append(p)
        self.tally.reassigned_partitions += len(orphans)
        for new_owner, ps in sorted(moved.items()):
            self._record(
                SITE_SHARD_WORKER_LOSS, ACTION_REASSIGNED,
                f"shard {sid} lost ({detail}); partition(s) "
                f"{','.join(map(str, ps))} reassigned to shard {new_owner}",
                scope=repr((sid,)),
            )
            target = self.workers[new_owner]
            if target.busy:
                pending.setdefault(new_owner, []).extend(ps)
            else:
                outstanding.setdefault(new_owner, []).extend(ps)
                self._dispatch_reduce(target, ps, MODE_RUN)

    def run_reduce_phase(self) -> dict[int, list]:
        """Reduce every partition; shard loss reassigns, never aborts."""
        parts: dict[int, list] = {}
        outstanding: dict[int, list[int]] = {}
        pending: dict[int, list[int]] = {}
        planned_losses = 0
        for spec in self.plan.shards:
            worker = self.workers[spec.shard_id]
            mode = MODE_RUN
            if (
                self.injector is not None
                # Never lose the last survivor: there would be nobody
                # left to reassign the partitions to.
                and planned_losses < self.plan.num_shards - 1
                and self.injector.check(
                    SITE_SHARD_WORKER_LOSS, scope=(spec.shard_id, "reduce")
                ) is not None
            ):
                mode = MODE_LOSS
                planned_losses += 1
            outstanding[spec.shard_id] = list(spec.partitions)
            self._dispatch_reduce(worker, list(spec.partitions), mode)
        while len(parts) < self.plan.num_partitions:
            msg = self._collect()
            if msg is not None:
                kind = msg[0]
                if kind == "hb":
                    _, sid, attempt, _p = msg
                    self._touch(sid, attempt)
                elif kind == "reduce_done":
                    _, sid, payload = msg
                    worker = self.workers.get(sid)
                    if worker is not None:
                        worker.busy = False
                        worker.last_heard = time.monotonic()
                    parts.update(payload["parts"])
                    self.tally.refetches += payload["refetches"]
                    if self.injector is not None:
                        collect_worker_events(
                            self.injector.log, payload["events"]
                        )
                    got = set(payload["parts"])
                    if sid in outstanding:
                        outstanding[sid] = [
                            p for p in outstanding[sid] if p not in got
                        ]
                    if worker is not None:
                        # Only drain the queue while the worker is still
                        # registered; if it was already removed (a done
                        # racing its own lease-expiry kill), _reassign
                        # has re-routed pending[sid] to a survivor.
                        queued = pending.pop(sid, None)
                        if queued:
                            outstanding.setdefault(sid, []).extend(queued)
                            self._dispatch_reduce(worker, queued, MODE_RUN)
                elif kind == "error":
                    _, sid, detail = msg
                    raise ParallelError(
                        f"shard {sid} failed during its reduce phase: "
                        f"{detail}"
                    )
            now = time.monotonic()
            for worker in list(self.workers.values()):
                if not worker.handle.alive():
                    self.tally.crashes += 1
                    self._reassign(
                        worker, outstanding, pending,
                        f"{worker.handle.name} "
                        f"{worker.handle.describe_exit()}",
                    )
                elif (
                    worker.busy
                    and now - worker.last_heard > self.policy.lease_timeout_s
                ):
                    self.tally.lease_expiries += 1
                    worker.handle.kill()
                    self._reassign(
                        worker, outstanding, pending,
                        f"{worker.handle.name} exceeded its "
                        f"{self.policy.lease_timeout_s:.3g}s lease",
                    )
        return parts


class ShardedRuntime:
    """SupMR split over fault-tolerant shard process groups."""

    name = "sharded"

    def __init__(self, options: RuntimeOptions) -> None:
        if options.num_shards is None:
            raise ConfigError(
                "ShardedRuntime requires options.num_shards (>= 1)"
            )
        self.options = options

    def run(self, job: JobSpec) -> JobResult:
        """Execute ``job`` across the shard group; one merged result.

        With ``options.peers`` this is the top of the degradation
        ladder: agents are dialed first (an unreachable peer *at
        startup* is a usage error — fail fast, exit 2), and any
        mid-job failure the in-run recovery could not absorb (total
        peer loss during reduce, transfer retry exhaustion) falls back
        to a full local re-run.  Both rungs execute identical
        deterministic work, so the digest never depends on which rung
        finished the job.
        """
        options = self.options
        if not options.peers:
            return self._run_once(job, options, links=())
        from repro.net.remote import AgentLink

        links: list[AgentLink] = []
        try:
            for i, addr in enumerate(options.peers):
                links.append(AgentLink(
                    addr, index=i,
                    net_timeout_s=options.net_timeout_s,
                    retries=options.recovery.max_retries,
                ))
        except Exception:
            for link in links:
                link.close()
            raise
        fallback_reason = ""
        try:
            return self._run_once(job, options, links)
        except (ParallelError, NetError, RetryExhausted) as exc:
            fallback_reason = f"{type(exc).__name__}: {exc}"
            logger.warning(
                "multi-host run failed (%s); re-running on this host only",
                exc,
            )
        finally:
            for link in links:
                link.close()
        result = self._run_once(job, options.with_(peers=None), links=())
        result.counters["net_fallback"] = "local"
        result.counters["net_fallback_reason"] = fallback_reason
        return result

    def _run_once(
        self, job: JobSpec, options: RuntimeOptions, links: Sequence[Any]
    ) -> JobResult:
        timer = PhaseTimer()
        injector = None
        if options.fault_plan is not None:
            injector = options.fault_plan.arm(
                options.recovery, clock=time.perf_counter
            )
        if options.chunk_strategy is ChunkStrategy.NONE:
            chunk_plan = plan_whole_input(job.inputs)
        else:
            chunk_plan = plan_chunks(job.inputs, job.codec, options)
        plan = ShardPlan(
            chunk_plan, options.num_shards, options.num_reducers
        )
        owned = options.shard_dir is None
        workdir = Path(
            options.shard_dir or tempfile.mkdtemp(prefix="repro-shard-")
        )
        workdir.mkdir(parents=True, exist_ok=True)
        fetch_srv = None
        self_addr = ""
        if links:
            # Remote reducers pull this host's outboxes (local shards,
            # promoted twins) through the same fetch protocol agents
            # export, so every source is reachable from every reducer.
            from repro.net.agent import AgentServer

            fetch_srv = AgentServer(
                host="127.0.0.1", port=0, workdir=workdir,
                accept_control=False,
            ).start()
            self_addr = fetch_srv.addr
        coordinator = _Coordinator(
            job, options, plan, workdir, injector,
            links=links, self_addr=self_addr,
        )
        logger.debug(
            "sharded run: %d shards over %d chunks, %d partitions, %d peers",
            plan.num_shards, chunk_plan.n_chunks, plan.num_partitions,
            len(links),
        )
        try:
            with timer.phase("total"):
                with timer.phase("read_map"):
                    coordinator.run_map_phase()
                with timer.phase("reduce"):
                    parts = coordinator.run_reduce_phase()
                    runs = [
                        parts[p] for p in range(plan.num_partitions)
                    ]
                with timer.phase("merge"):
                    output, merge_rounds = merge_outputs(runs, job, options)
        finally:
            coordinator.shutdown()
            if fetch_srv is not None:
                fetch_srv.close()
            if owned:
                shutil.rmtree(workdir, ignore_errors=True)
        done = coordinator.map_done
        container_stats = ContainerStats(
            emits=sum(p["emits"] for p in done.values()),
            distinct_keys=sum(p["distinct_keys"] for p in done.values()),
            rounds=max(
                (p["rounds"] + p["restored_rounds"] for p in done.values()),
                default=0,
            ),
        )
        tally = coordinator.tally
        resumed_rounds = sum(p["restored_rounds"] for p in done.values())
        counters: dict[str, Any] = {
            "shards": plan.num_shards,
            "merge_rounds": merge_rounds,
            "merge_algorithm": options.merge_algorithm.value,
            "executor_backend": options.executor_backend.value,
            "chunk_strategy": chunk_plan.strategy,
            "pipeline_rounds": chunk_plan.n_chunks,
            "map_tasks": sum(p["map_tasks"] for p in done.values()),
            "shard_respawns": tally.respawns,
            "shard_crashes": tally.crashes,
            "shard_lease_expiries": tally.lease_expiries,
            "shards_lost": len(tally.shards_lost),
            "partitions_reassigned": tally.reassigned_partitions,
            "speculative_shards": len(tally.speculated),
            "exchange_refetches": tally.refetches,
            # Sharded results travel as checksummed exchange-run files;
            # with peers the reduce-phase fetches cross the framed TCP
            # transport instead of the filesystem.
            "transport": "exchange-tcp" if links else "exchange-file",
        }
        if links:
            counters["net_peers"] = len(links)
            counters["net_host_losses"] = tally.host_losses
            if tally.hosts_lost:
                counters["net_hosts_lost"] = sorted(tally.hosts_lost)
        if options.checkpoint_dir is not None:
            counters["checkpointed"] = True
        if resumed_rounds:
            counters["resumed"] = True
            counters["resumed_rounds"] = resumed_rounds
        fault_log = injector.log if injector is not None else None
        if fault_log is not None:
            counters["faults_injected"] = fault_log.injected
            counters["fault_retries"] = fault_log.retries
            counters["records_quarantined"] = fault_log.quarantined
        timings = PhaseTimings(
            read_s=timer.elapsed("read_map"),
            map_s=0.0,
            reduce_s=timer.elapsed("reduce"),
            merge_s=timer.elapsed("merge"),
            total_s=timer.elapsed("total"),
            read_map_combined=True,
        )
        logger.info(
            "job %s finished on sharded: total=%.3fs shards=%d respawns=%d",
            job.name, timer.elapsed("total"), plan.num_shards, tally.respawns,
        )
        return JobResult(
            job_name=job.name,
            runtime=self.name,
            output=output,
            timings=timings,
            container_stats=container_stats,
            input_bytes=chunk_plan.total_bytes,
            n_chunks=chunk_plan.n_chunks,
            counters=counters,
            fault_log=fault_log,
        )


def run_sharded(job: JobSpec, options: RuntimeOptions) -> JobResult:
    """Run ``job`` on the sharded coordinator (``options.num_shards``)."""
    return ShardedRuntime(options).run(job)
