"""Integrity-verified run exchange between shards.

The exchange unit is the existing checksummed spill-run file
(:mod:`repro.spill.runfile`) — already a portable, self-validating
on-disk format.  After its map phase every shard writes one run per
reducer partition into its **outbox** (keys bucketed by the same
process-stable hash on every shard, sorted and grouped within the run);
during the reduce phase the owning shard **fetches** each source run
into its own inbox — a byte copy standing in for the network transfer —
and CRC-verifies the copy before adoption.  A verification failure
deletes the copy and refetches from the pristine outbox (bounded by the
recovery policy's retry budget) rather than silently merging garbage.

Reduction streams the fetched runs through a grouping k-way merge:
equal keys across shards are folded into one ``reduce_fn`` call with
their values concatenated in shard-id order, which — because shards map
*contiguous* chunk blocks — is exactly the global chunk order an
unsharded run would have produced.
"""

from __future__ import annotations

import heapq
import shutil
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Hashable, Iterable, Iterator, Sequence

from repro.containers.base import Container
from repro.core.job import JobSpec
from repro.errors import RetryExhausted, SpillError
from repro.faults.log import ACTION_REFETCHED
from repro.faults.plan import SITE_SHARD_EXCHANGE_CORRUPT
from repro.spill.manager import _flip_byte, group_sorted_pairs
from repro.spill.runfile import HEADER_BYTES, RunReader, RunWriter
from repro.util.hashing import stable_hash

Pair = tuple[Hashable, Any]
Group = tuple[Hashable, tuple[Any, ...]]
SortKeyFn = Callable[[Hashable], Any]
#: ``(site, action, detail, scope, attempt)`` rows a worker ships back
#: to the coordinator for replay into the job's fault log.
EventRow = tuple[str, str, str, str, int]


@dataclass(frozen=True)
class ExchangeRun:
    """One partition run a shard published to its outbox."""

    partition: int
    name: str
    records: int
    payload_bytes: int


def run_name(partition: int) -> str:
    """Canonical outbox file name for one partition's run."""
    return f"part-{partition:05d}.spl"


def write_partition_runs(
    container: Container,
    num_partitions: int,
    directory: str | Path,
    sort_key: SortKeyFn | None = None,
) -> list[ExchangeRun]:
    """Seal ``container`` and publish one sorted run per partition.

    Keys are bucketed by ``stable_hash(key) % num_partitions`` — *not*
    by the container's own partitioning — so partition ``p`` holds the
    same key set on every shard regardless of container type (the array
    container buckets by segment index, which would scatter a key across
    partitions differently per shard count).  Pairs are drawn from
    ``partitions(1)`` so equal keys keep pure emit (segment) order —
    round-robin segment interleaving would make the value order depend
    on the shard-local segment count.  The bucket sort is stable, so
    that order survives into the run; empty partitions still get a
    (zero-record) run, keeping the fetch protocol uniform.
    """
    key_of = sort_key or (lambda key: key)
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    container.seal()
    buckets: list[list[tuple[Hashable, Iterable[Any]]]] = [
        [] for _ in range(num_partitions)
    ]
    (all_pairs,) = container.partitions(1)
    for key, values in all_pairs:
        buckets[stable_hash(key) % num_partitions].append((key, values))
    manifest: list[ExchangeRun] = []
    for p, pairs in enumerate(buckets):
        pairs.sort(key=lambda kv: key_of(kv[0]))
        path = directory / run_name(p)
        with RunWriter(path) as writer:
            for key, values in group_sorted_pairs(pairs):
                writer.write_group(key, values)
            records, payload = writer.records, writer.payload_bytes
        manifest.append(ExchangeRun(
            partition=p, name=path.name, records=records,
            payload_bytes=payload,
        ))
    return manifest


def fetch_run(
    src: Path,
    dst: Path,
    corrupt_attempts: Sequence[int] = (),
    max_retries: int = 3,
    events: "list[EventRow] | None" = None,
    scope: str = "",
) -> tuple[RunReader, int]:
    """Copy one exchange run and CRC-verify the copy before adoption.

    ``corrupt_attempts`` are the fetch attempts the coordinator decided
    the ``shard.exchange_corrupt`` site damages in transit (a byte of
    the *copy* is flipped; the outbox original stays pristine, which is
    why a refetch can succeed).  A copy that fails validation or the CRC
    re-scan is deleted and refetched, bounded by ``max_retries``;
    exhaustion raises :class:`~repro.errors.RetryExhausted`.

    Returns the validated reader over the adopted copy and how many
    refetches it took.
    """
    last: Exception | None = None
    for attempt in range(max_retries + 1):
        shutil.copyfile(src, dst)
        if attempt in corrupt_attempts:
            size = dst.stat().st_size
            # Flip a payload byte when there is payload, else a header
            # byte — either way validation must catch it.
            offset = (
                HEADER_BYTES + (size - HEADER_BYTES) // 2
                if size > HEADER_BYTES else max(0, size - 1)
            )
            _flip_byte(dst, offset)
        try:
            reader = RunReader(dst)
            if not reader.verify():
                raise SpillError(
                    f"{dst}: exchanged run failed its checksum"
                )
        except SpillError as exc:
            last = exc
            dst.unlink(missing_ok=True)
            if events is not None and attempt < max_retries:
                events.append((
                    SITE_SHARD_EXCHANGE_CORRUPT, ACTION_REFETCHED,
                    f"attempt {attempt + 1} rejected ({exc}); refetching",
                    scope, attempt,
                ))
            continue
        return reader, attempt
    raise RetryExhausted(
        f"{SITE_SHARD_EXCHANGE_CORRUPT}: {max_retries + 1} fetch attempt(s) "
        f"of {src.name} failed; last error: {last}",
        site=SITE_SHARD_EXCHANGE_CORRUPT,
        attempts=max_retries + 1,
    ) from last


def merged_partition_groups(
    readers: Sequence[RunReader],
    sort_key: SortKeyFn | None = None,
) -> Iterator[Group]:
    """K-way merge the shards' runs for one partition, grouping keys.

    ``readers`` must be in shard-id order; ``heapq.merge`` is stable, so
    equal keys concatenate their value tuples in that order — the global
    chunk order under contiguous block assignment.
    """
    key_of = sort_key or (lambda key: key)
    streams: list[Iterator[Group]] = [iter(r) for r in readers]
    merged = heapq.merge(*streams, key=lambda group: key_of(group[0]))
    return group_sorted_pairs(merged)


def reduce_partition(
    job: JobSpec, groups: Iterable[Group]
) -> list[Pair]:
    """Run the job's reducer over one partition's merged groups."""
    out: list[Pair] = []
    for key, values in groups:
        out.extend(job.reduce_fn(key, values))
    if job.sorted_output:
        out.sort(key=job.output_key)
    return out


def collect_worker_events(log: Any, events: Iterable[EventRow]) -> None:
    """Replay worker-side event rows into the coordinator's fault log."""
    for site, action, detail, scope, attempt in events:
        log.record(site, action, detail, scope=scope, attempt=attempt)


def elapsed_since(started: float) -> float:
    """Seconds since ``started`` on the perf-counter clock."""
    return time.perf_counter() - started
