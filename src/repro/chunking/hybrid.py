"""Hybrid inter/intra-file chunking (paper section III.A.1, future work).

Packs whole files into byte-budgeted chunks (intra-file behaviour) and
splits any file larger than the budget at record boundaries (inter-file
behaviour), so one plan handles Hadoop's "one big file" and "many small
files" input shapes simultaneously — and anything in between, such as a
directory of mixed log files.

Packing is first-fit in the given file order (order preservation matters:
downstream tools expect deterministic chunk indexing), never reordering
files, and a chunk closes as soon as adding the next file would exceed
the budget — except that every chunk contains at least one source, so a
file bigger than the budget becomes a run of inter-file chunks of its
own.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.chunking.boundary import find_record_end_in_file
from repro.chunking.chunk import Chunk, ChunkPlan, ChunkSource
from repro.errors import ChunkingError
from repro.io.datafile import file_sizes


def plan_hybrid_chunks(
    paths: Sequence[str | Path],
    chunk_bytes: int,
    delimiter: bytes,
) -> ChunkPlan:
    """Pack/split ``paths`` into ~``chunk_bytes`` record-aligned chunks."""
    if chunk_bytes < 1:
        raise ChunkingError(f"chunk size must be >= 1 byte, got {chunk_bytes}")
    sized = file_sizes(paths)
    if not sized:
        raise ChunkingError("hybrid chunking needs at least one input file")

    chunks: list[Chunk] = []
    pending: list[ChunkSource] = []
    pending_bytes = 0
    notes: list[str] = []

    def flush() -> None:
        nonlocal pending, pending_bytes
        if pending:
            chunks.append(Chunk(index=len(chunks), sources=tuple(pending)))
            pending = []
            pending_bytes = 0

    for path, size in sized:
        if size > chunk_bytes:
            # Oversized file: close the open pack, then split inter-file.
            flush()
            start = 0
            while start < size:
                tentative = start + chunk_bytes
                if tentative >= size:
                    end = size
                else:
                    end = find_record_end_in_file(path, tentative, delimiter,
                                                  size)
                if end <= start:
                    raise ChunkingError(
                        f"chunk planning stalled at offset {start} of {path}"
                    )
                chunks.append(
                    Chunk(index=len(chunks),
                          sources=(ChunkSource(path, start, end - start),))
                )
                start = end
            notes.append(f"{path.name} ({size} B) split inter-file")
            continue
        if pending and pending_bytes + size > chunk_bytes:
            flush()
        pending.append(ChunkSource(path, 0, size))
        pending_bytes += size
    flush()

    plan = ChunkPlan(
        chunks=tuple(chunks),
        strategy="hybrid",
        requested_size=chunk_bytes,
        notes=tuple(notes),
    )
    plan.validate_contiguous()
    return plan
