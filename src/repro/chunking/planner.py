"""Strategy-dispatching chunk planner.

Turns (input files, codec, options) into a :class:`ChunkPlan`:
``NONE`` wraps the whole input in a single chunk (the original runtime's
one-shot ingest), ``INTER_FILE`` requires exactly one input file, and
``INTRA_FILE`` coalesces the file list.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.chunking.chunk import Chunk, ChunkPlan, ChunkSource
from repro.chunking.interfile import plan_interfile_chunks
from repro.chunking.intrafile import plan_intrafile_chunks
from repro.errors import ChunkingError
from repro.io.datafile import file_sizes
from repro.io.records import RecordCodec


def plan_whole_input(paths: Sequence[str | Path]) -> ChunkPlan:
    """One chunk spanning every input file (no pipelining possible)."""
    sized = file_sizes(paths)
    if not sized:
        raise ChunkingError("no input files")
    sources = tuple(ChunkSource(p, 0, s) for p, s in sized)
    plan = ChunkPlan(
        chunks=(Chunk(index=0, sources=sources),),
        strategy="whole-input",
        requested_size=None,
    )
    plan.validate_contiguous()
    return plan


def plan_chunks(
    paths: Sequence[str | Path],
    codec: RecordCodec,
    options,
) -> ChunkPlan:
    """Dispatch on ``options.chunk_strategy``.

    ``options`` is a :class:`repro.core.options.RuntimeOptions`; accepted
    duck-typed to keep this package independent of the runtime layer.
    """
    from repro.core.options import ChunkStrategy  # local: avoid cycle at import

    strategy = options.chunk_strategy
    if strategy is ChunkStrategy.NONE:
        return plan_whole_input(paths)
    if strategy is ChunkStrategy.INTER_FILE:
        if len(paths) != 1:
            raise ChunkingError(
                f"inter-file chunking expects exactly one input file, "
                f"got {len(paths)}"
            )
        return plan_interfile_chunks(paths[0], options.chunk_bytes, codec.delimiter)
    if strategy is ChunkStrategy.INTRA_FILE:
        return plan_intrafile_chunks(paths, options.files_per_chunk)
    if strategy is ChunkStrategy.VARIABLE:
        from repro.chunking.variable import plan_variable_chunks

        if len(paths) != 1:
            raise ChunkingError(
                f"variable chunking expects exactly one input file, "
                f"got {len(paths)}"
            )
        return plan_variable_chunks(paths[0], options.chunk_schedule,
                                    codec.delimiter)
    if strategy is ChunkStrategy.HYBRID:
        from repro.chunking.hybrid import plan_hybrid_chunks

        return plan_hybrid_chunks(paths, options.chunk_bytes, codec.delimiter)
    raise ChunkingError(f"unknown chunk strategy: {strategy!r}")
