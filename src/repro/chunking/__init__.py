"""Ingest chunk management (paper section III.A).

SupMR partitions the input into similarly-sized **ingest chunks** before
producing map input splits, and streams them through the pipeline.  Two
strategies, mirroring Hadoop's two input shapes:

* **inter-file** (:mod:`repro.chunking.interfile`) — one big file split
  into byte-size chunks, with split points nudged forward to the next
  record delimiter so no key/value straddles chunks;
* **intra-file** (:mod:`repro.chunking.intrafile`) — many small files
  coalesced N-per-chunk; the last chunk may hold fewer files (the
  paper's 30-files/size-4 => 8-chunks example).

:mod:`repro.chunking.planner` picks the strategy from
:class:`repro.core.options.RuntimeOptions` and yields a uniform
:class:`~repro.chunking.chunk.ChunkPlan`.
"""

from repro.chunking.boundary import adjust_split_point, find_record_end_in_file
from repro.chunking.chunk import Chunk, ChunkPlan, ChunkSource
from repro.chunking.hybrid import plan_hybrid_chunks
from repro.chunking.interfile import plan_interfile_chunks
from repro.chunking.intrafile import plan_intrafile_chunks
from repro.chunking.planner import plan_chunks
from repro.chunking.variable import plan_variable_chunks

__all__ = [
    "Chunk",
    "ChunkPlan",
    "ChunkSource",
    "adjust_split_point",
    "find_record_end_in_file",
    "plan_interfile_chunks",
    "plan_intrafile_chunks",
    "plan_variable_chunks",
    "plan_hybrid_chunks",
    "plan_chunks",
]
