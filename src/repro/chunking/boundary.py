r"""Split-point adjustment: never cut a record in half.

Paper section III.A.1: "the runtime makes small adjustments to the split
point: it seeks to the user-defined chunk size, checks to see if it is in
the middle of a key or value, and then continually increases the split
point until reaching the end of the value."

Both an in-memory form (:func:`adjust_split_point`, used on loaded bytes
and in tests) and a file form (:func:`find_record_end_in_file`, used by
the planner, which probes the file in small windows rather than loading
it) are provided.
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import ChunkingError

#: Bytes probed per window while searching for the delimiter on disk.
_PROBE_WINDOW = 64 * 1024


def adjust_split_point(data: bytes, pos: int, delimiter: bytes) -> int:
    """Smallest record-aligned offset >= ``pos`` within ``data``.

    Returns ``len(data)`` when no delimiter follows; ``pos`` of 0 or
    ``len(data)`` is already aligned by definition.
    """
    if not delimiter:
        raise ChunkingError("delimiter must be non-empty")
    if pos < 0 or pos > len(data):
        raise ChunkingError(f"split point {pos} outside data of {len(data)} B")
    if pos == 0 or pos == len(data):
        return pos
    return _next_delimiter_end(data, pos, delimiter)


def _next_delimiter_end(data: bytes, pos: int, delimiter: bytes) -> int:
    """First offset >= pos that is the end of a delimiter occurrence."""
    # Start scanning early enough to catch a delimiter that straddles pos
    # or ends exactly at it (pos already record-aligned => stays put).
    start = max(0, pos - len(delimiter))
    idx = data.find(delimiter, start)
    while idx != -1:
        end = idx + len(delimiter)
        if end >= pos:
            return end
        idx = data.find(delimiter, idx + 1)
    return len(data)


def find_record_end_in_file(
    path: str | Path, pos: int, delimiter: bytes, file_size: int | None = None
) -> int:
    """Record-aligned offset >= ``pos`` in ``path``, probing windows.

    This is what the inter-file planner calls for each tentative split —
    the "seek and extend" behaviour from the paper, without reading the
    whole file.
    """
    if not delimiter:
        raise ChunkingError("delimiter must be non-empty")
    path = Path(path)
    size = file_size if file_size is not None else path.stat().st_size
    if pos < 0 or pos > size:
        raise ChunkingError(f"split point {pos} outside file of {size} B")
    if pos == 0 or pos == size:
        return pos
    with open(path, "rb") as fh:
        # Back up so a delimiter straddling `pos` is visible in the window.
        window_start = max(0, pos - len(delimiter))
        while window_start < size:
            fh.seek(window_start)
            window = fh.read(_PROBE_WINDOW + len(delimiter) - 1)
            if not window:
                break
            idx = window.find(delimiter)
            while idx != -1:
                end = window_start + idx + len(delimiter)
                if end >= pos:
                    return min(end, size)
                idx = window.find(delimiter, idx + 1)
            window_start += _PROBE_WINDOW
    return size
