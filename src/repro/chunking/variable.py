"""Variable-sized ingest chunks (paper section III.A.1, future work).

"More complicated abstractions, such as variable sized ingest chunks or
a hybrid inter/intra-file chunking approach, could allow the runtime to
tune the system (i.e. ingest at size x and operate on size y) but is not
implemented in our initial prototype."  This module implements the
variable-size half: a chunk plan cut to an explicit byte-size schedule,
each split point still nudged to a record boundary.

The schedule semantics: sizes are consumed in order; when the schedule
runs out, the last size repeats until the file is exhausted.  This is
what the feedback tuner (:mod:`repro.tuning.feedback`) produces — an
opening ramp followed by a steady-state size.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.chunking.boundary import find_record_end_in_file
from repro.chunking.chunk import Chunk, ChunkPlan, ChunkSource
from repro.errors import ChunkingError


def plan_variable_chunks(
    path: str | Path,
    schedule: Sequence[int],
    delimiter: bytes,
) -> ChunkPlan:
    """Chunk ``path`` following the byte-size ``schedule``."""
    if not schedule:
        raise ChunkingError("variable chunking needs a non-empty schedule")
    if any(int(s) < 1 for s in schedule):
        raise ChunkingError(f"schedule sizes must be >= 1 byte: {schedule!r}")
    path = Path(path)
    if not path.is_file():
        raise ChunkingError(f"input file missing: {path}")
    size = path.stat().st_size
    chunks: list[Chunk] = []
    start = 0
    index = 0
    while start < size:
        want = int(schedule[min(index, len(schedule) - 1)])
        tentative = start + want
        if tentative >= size:
            end = size
        else:
            end = find_record_end_in_file(path, tentative, delimiter, size)
        if end <= start:
            raise ChunkingError(f"chunk planning stalled at offset {start}")
        chunks.append(
            Chunk(index=index, sources=(ChunkSource(path, start, end - start),))
        )
        start = end
        index += 1
    plan = ChunkPlan(
        chunks=tuple(chunks),
        strategy="variable",
        requested_size=None,
        notes=(f"schedule of {len(schedule)} size(s), "
               f"last size repeats: {int(schedule[-1])} B",),
    )
    plan.validate_contiguous()
    return plan
