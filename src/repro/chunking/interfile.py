"""Inter-file chunking: split one big file at record boundaries.

"For inter-file chunking, the user specifies the desired chunk size in
bytes" (section III.A.1).  Each tentative split at a multiple of the
chunk size is nudged forward to the next record end, so chunks are
similarly sized but never cut a record.  A pathological record longer
than the chunk size simply produces an oversized chunk (and swallows the
following split points), which the plan records in its notes.
"""

from __future__ import annotations

from pathlib import Path

from repro.chunking.boundary import find_record_end_in_file
from repro.chunking.chunk import Chunk, ChunkPlan, ChunkSource
from repro.errors import ChunkingError


def plan_interfile_chunks(
    path: str | Path,
    chunk_bytes: int,
    delimiter: bytes,
) -> ChunkPlan:
    """Chunk ``path`` into ~``chunk_bytes`` record-aligned pieces."""
    if chunk_bytes < 1:
        raise ChunkingError(f"chunk size must be >= 1 byte, got {chunk_bytes}")
    path = Path(path)
    if not path.is_file():
        raise ChunkingError(f"input file missing: {path}")
    size = path.stat().st_size
    notes: list[str] = []
    chunks: list[Chunk] = []
    start = 0
    index = 0
    while start < size:
        tentative = start + chunk_bytes
        if tentative >= size:
            end = size
        else:
            end = find_record_end_in_file(path, tentative, delimiter, size)
        if end <= start:
            raise ChunkingError(
                f"chunk planning stalled at offset {start} of {path}"
            )
        if end - start > 2 * chunk_bytes:
            notes.append(
                f"chunk {index} is {end - start} B (> 2x requested); a record "
                "longer than the chunk size forced an oversized chunk"
            )
        chunks.append(
            Chunk(index=index, sources=(ChunkSource(path, start, end - start),))
        )
        start = end
        index += 1
    plan = ChunkPlan(
        chunks=tuple(chunks),
        strategy="inter-file",
        requested_size=chunk_bytes,
        notes=tuple(notes),
    )
    plan.validate_contiguous()
    return plan
