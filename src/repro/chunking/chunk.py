"""Chunk data structures: what the ingest thread loads and mappers see.

A :class:`Chunk` is a *description* (which byte ranges of which files);
:meth:`Chunk.load` materializes it into memory — that load is the ingest
work the pipeline overlaps with map computation.  This mirrors the
paper's external ingest-chunk library: "the chunk struct, a struct for
passing around the job state, and functions for reading chunks and
locating chunk boundaries" (section V.A).
"""

from __future__ import annotations

import mmap
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from repro.errors import ChunkingError, FaultInjected
from repro.io.datafile import read_slice

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import FaultInjector
    from repro.qos.throttle import TokenBucket

#: Per-thread scratch buffer for :meth:`Chunk.warm`.  Warm is called once
#: per chunk per ingest reader; with multi-reader prefetch that is a hot
#: path, and reusing one buffer per thread (threads never share it, so no
#: locking) avoids a fresh megabyte allocation per chunk.
_warm_local = threading.local()


def _warm_scratch(size: int) -> memoryview:
    """Return this thread's warm buffer, growing it to ``size`` if needed."""
    buf = getattr(_warm_local, "buf", None)
    if buf is None or len(buf) < size:
        buf = bytearray(size)
        _warm_local.buf = buf
    return memoryview(buf)


@dataclass(frozen=True)
class ChunkSource:
    """One contiguous byte range of one file."""

    path: Path
    offset: int
    length: int

    def __post_init__(self) -> None:
        if self.offset < 0 or self.length < 0:
            raise ChunkingError(f"bad source range {self!r}")


@dataclass(frozen=True)
class Chunk:
    """An ingest chunk: ordered source ranges totalling ``length`` bytes."""

    index: int
    sources: tuple[ChunkSource, ...]

    @property
    def length(self) -> int:
        return sum(s.length for s in self.sources)

    @property
    def paths(self) -> tuple[Path, ...]:
        return tuple(s.path for s in self.sources)

    def load(
        self,
        injector: "FaultInjector | None" = None,
        attempt: int = 0,
        throttle: "TokenBucket | None" = None,
    ) -> "bytes | bytearray":
        """Read the chunk into memory (the ingest-phase work).

        With an armed ``injector`` this is the retry *unit* for the
        ``ingest.read`` fault site: injected errors propagate and
        injected short reads are detected against the planned chunk
        length, so the runtime's bounded retry re-loads the whole chunk.

        With a ``throttle`` (:class:`repro.qos.throttle.TokenBucket`)
        the chunk's bytes are charged against the job's I/O budget
        before they are read — the ingest half of bandwidth isolation.
        Retries re-charge, because a retry re-reads the bytes.

        The fault-free paths avoid ``read_slice``'s seek+read+concat
        copy chain: single-source chunks slice one copy straight out of
        an ``mmap`` of the file, and multi-source chunks ``readinto`` a
        preallocated buffer so the parts are never joined.  The injector
        path keeps ``read_slice`` because that is where the
        ``ingest.read`` fault site lives.
        """
        if injector is None:
            if throttle is not None:
                throttle.acquire(self.length)
            if len(self.sources) == 1:
                return self._load_single_mmap(self.sources[0])
            return self._load_multi_readinto()
        parts = [
            read_slice(
                src.path, src.offset, src.length,
                injector=injector, scope=(self.index, i), attempt=attempt,
                throttle=throttle,
            )
            for i, src in enumerate(self.sources)
        ]
        data = parts[0] if len(parts) == 1 else b"".join(parts)
        if len(data) != self.length:
            from repro.faults.plan import SITE_INGEST_READ

            raise FaultInjected(
                f"chunk {self.index}: short read "
                f"({len(data)} of {self.length} bytes)",
                site=SITE_INGEST_READ,
            )
        return data

    @staticmethod
    def _load_single_mmap(src: ChunkSource) -> bytes:
        """One mmap slice: a single kernel-to-user copy, no seek dance."""
        if src.length == 0:
            return b""
        with open(src.path, "rb") as f:
            size = os.fstat(f.fileno()).st_size
            if size == 0:
                return b""
            with mmap.mmap(f.fileno(), 0, access=mmap.ACCESS_READ) as mm:
                start = min(src.offset, size)
                return mm[start:min(src.offset + src.length, size)]

    def _load_multi_readinto(self) -> bytearray:
        """All sources read straight into one preallocated buffer.

        Each source lands at its final position via ``readinto`` on a
        ``memoryview`` window, so there is no per-part bytes object and
        no ``b"".join`` pass.  Short files shrink the buffer (matching
        the old path, where ``read_slice`` simply returned fewer bytes).
        """
        buf = bytearray(self.length)
        view = memoryview(buf)
        filled = 0
        for src in self.sources:
            if src.length == 0:
                continue
            try:
                f = open(src.path, "rb")
            except OSError:
                continue
            with f:
                f.seek(src.offset)
                want = src.length
                while want:
                    got = f.readinto(view[filled:filled + want])
                    if not got:
                        break
                    filled += got
                    want -= got
        del view
        if filled != len(buf):
            del buf[filled:]
        return buf

    def warm(
        self,
        buffer_size: int = 1 << 20,
        throttle: "TokenBucket | None" = None,
    ) -> int:
        """Touch every source byte so it lands in the page cache.

        The process backend's ingest phase: the pipeline's background
        loader warms the chunk instead of materializing it, and the
        forked mappers then fault their split windows in from cache.
        Returns the number of bytes touched.  A ``throttle`` charges the
        chunk's bytes up front, same as :meth:`load` — exactly once per
        chunk, regardless of how many prefetch readers are running.

        Reads go through a per-thread reusable scratch buffer: warm is
        never the consumer of the bytes, so the buffer's contents are
        discarded and each ingest reader can recycle one allocation
        across every chunk it touches.
        """
        if throttle is not None:
            throttle.acquire(self.length)
        view = _warm_scratch(buffer_size)
        touched = 0
        for src in self.sources:
            try:
                f = open(src.path, "rb")
            except OSError:
                continue
            with f:
                f.seek(src.offset)
                want = src.length
                while want:
                    got = f.readinto(view[:min(want, buffer_size)])
                    if not got:
                        break
                    touched += got
                    want -= got
        return touched


@dataclass(frozen=True)
class ChunkPlan:
    """The full ordered chunk stream for a job."""

    chunks: tuple[Chunk, ...]
    strategy: str  # "inter-file" | "intra-file" | "whole-input"
    requested_size: int | None = None  # bytes (inter) or files (intra)
    notes: tuple[str, ...] = field(default=())

    @property
    def n_chunks(self) -> int:
        return len(self.chunks)

    @property
    def total_bytes(self) -> int:
        return sum(c.length for c in self.chunks)

    def __iter__(self) -> Iterator[Chunk]:
        return iter(self.chunks)

    def validate_contiguous(self) -> None:
        """Sanity check: chunks tile their files without gaps or overlap."""
        cursor: dict[Path, int] = {}
        for chunk in self.chunks:
            for src in chunk.sources:
                expected = cursor.get(src.path, 0)
                if src.offset != expected:
                    raise ChunkingError(
                        f"chunk {chunk.index}: {src.path} resumes at "
                        f"{src.offset}, expected {expected}"
                    )
                cursor[src.path] = src.offset + src.length
