"""Chunk data structures: what the ingest thread loads and mappers see.

A :class:`Chunk` is a *description* (which byte ranges of which files);
:meth:`Chunk.load` materializes it into memory — that load is the ingest
work the pipeline overlaps with map computation.  This mirrors the
paper's external ingest-chunk library: "the chunk struct, a struct for
passing around the job state, and functions for reading chunks and
locating chunk boundaries" (section V.A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from repro.errors import ChunkingError, FaultInjected
from repro.io.datafile import read_slice

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import FaultInjector


@dataclass(frozen=True)
class ChunkSource:
    """One contiguous byte range of one file."""

    path: Path
    offset: int
    length: int

    def __post_init__(self) -> None:
        if self.offset < 0 or self.length < 0:
            raise ChunkingError(f"bad source range {self!r}")


@dataclass(frozen=True)
class Chunk:
    """An ingest chunk: ordered source ranges totalling ``length`` bytes."""

    index: int
    sources: tuple[ChunkSource, ...]

    @property
    def length(self) -> int:
        return sum(s.length for s in self.sources)

    @property
    def paths(self) -> tuple[Path, ...]:
        return tuple(s.path for s in self.sources)

    def load(
        self,
        injector: "FaultInjector | None" = None,
        attempt: int = 0,
    ) -> bytes:
        """Read the chunk into memory (the ingest-phase work).

        With an armed ``injector`` this is the retry *unit* for the
        ``ingest.read`` fault site: injected errors propagate and
        injected short reads are detected against the planned chunk
        length, so the runtime's bounded retry re-loads the whole chunk.
        """
        if injector is None:
            if len(self.sources) == 1:
                src = self.sources[0]
                return read_slice(src.path, src.offset, src.length)
            parts = [
                read_slice(s.path, s.offset, s.length) for s in self.sources
            ]
            return b"".join(parts)
        parts = [
            read_slice(
                src.path, src.offset, src.length,
                injector=injector, scope=(self.index, i), attempt=attempt,
            )
            for i, src in enumerate(self.sources)
        ]
        data = parts[0] if len(parts) == 1 else b"".join(parts)
        if len(data) != self.length:
            from repro.faults.plan import SITE_INGEST_READ

            raise FaultInjected(
                f"chunk {self.index}: short read "
                f"({len(data)} of {self.length} bytes)",
                site=SITE_INGEST_READ,
            )
        return data


@dataclass(frozen=True)
class ChunkPlan:
    """The full ordered chunk stream for a job."""

    chunks: tuple[Chunk, ...]
    strategy: str  # "inter-file" | "intra-file" | "whole-input"
    requested_size: int | None = None  # bytes (inter) or files (intra)
    notes: tuple[str, ...] = field(default=())

    @property
    def n_chunks(self) -> int:
        return len(self.chunks)

    @property
    def total_bytes(self) -> int:
        return sum(c.length for c in self.chunks)

    def __iter__(self) -> Iterator[Chunk]:
        return iter(self.chunks)

    def validate_contiguous(self) -> None:
        """Sanity check: chunks tile their files without gaps or overlap."""
        cursor: dict[Path, int] = {}
        for chunk in self.chunks:
            for src in chunk.sources:
                expected = cursor.get(src.path, 0)
                if src.offset != expected:
                    raise ChunkingError(
                        f"chunk {chunk.index}: {src.path} resumes at "
                        f"{src.offset}, expected {expected}"
                    )
                cursor[src.path] = src.offset + src.length
