"""Intra-file chunking: coalesce many small files into each chunk.

"For intra-file chunking, the user specifies how many files to combine
into one chunk ... if the user wants to process 30 files with an
intra-file chunk size of 4 files, the runtime will produce 8 chunks,
where 7 chunks will contain the user-defined 4 files and 1 chunk will
contain the 2 remaining files" (section III.A.1).  Whole files are never
split, so no boundary adjustment is needed.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

from repro.chunking.chunk import Chunk, ChunkPlan, ChunkSource
from repro.errors import ChunkingError
from repro.io.datafile import file_sizes


def plan_intrafile_chunks(
    paths: Sequence[str | Path] | Iterable[str | Path],
    files_per_chunk: int,
) -> ChunkPlan:
    """Group ``paths`` (in the given order) ``files_per_chunk`` at a time."""
    if files_per_chunk < 1:
        raise ChunkingError(
            f"files per chunk must be >= 1, got {files_per_chunk}"
        )
    sized = file_sizes(paths)
    if not sized:
        raise ChunkingError("intra-file chunking needs at least one input file")
    chunks: list[Chunk] = []
    for index, start in enumerate(range(0, len(sized), files_per_chunk)):
        group = sized[start: start + files_per_chunk]
        sources = tuple(
            ChunkSource(path=path, offset=0, length=size) for path, size in group
        )
        chunks.append(Chunk(index=index, sources=sources))
    notes: tuple[str, ...] = ()
    last = len(chunks[-1].sources)
    if last != files_per_chunk:
        notes = (f"last chunk holds {last} file(s) (requested {files_per_chunk})",)
    plan = ChunkPlan(
        chunks=tuple(chunks),
        strategy="intra-file",
        requested_size=files_per_chunk,
        notes=notes,
    )
    plan.validate_contiguous()
    return plan
