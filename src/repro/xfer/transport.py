"""The transport codec: how task and result payloads cross a fork.

Both halves of a forked worker pair share one transport object (it rides
the fork); :meth:`pack` runs on whichever side produces a payload and
:meth:`unpack` on whichever side consumes it, with the queue between
them carrying only the small control frames pack returns.

:class:`PipeTransport` is the PR-3 behaviour: the whole pickled payload
is the control frame and rides the queue's pipe.  :class:`ShmTransport`
pickles with protocol 5 — out-of-band buffers included, so a NumPy
histogram delta's cells are never copied into the pickle stream — and
writes ``[pickle blob | buffer 0 | buffer 1 | …]`` into one
shared-memory segment; the frame is just the segment name and layout.
Payloads below ``inline_max`` stay on the pipe (a segment per tiny
result would cost more than it saves).

Receiving is one ``mmap`` and one ``pickle.loads`` straight out of the
segment.  Out-of-band buffers are copied into parent-owned bytearrays
during the load — deliberately, so no reconstructed object can alias a
segment after it is unlinked — which still halves the copies of the
pipe path (pipe: feeder-thread write + parent read; shm: one read).
"""

from __future__ import annotations

import pickle
from typing import Any

from repro.errors import ConfigError
from repro.util.logging import get_logger
from repro.xfer.segments import SegmentPool, shm_available, write_segment

try:  # pragma: no cover - platform guard mirrors segments.py
    from multiprocessing import shared_memory as _shm_mod
except ImportError:  # pragma: no cover
    _shm_mod = None  # type: ignore[assignment]

logger = get_logger(__name__)

TRANSPORT_PIPE = "pipe"
TRANSPORT_SHM = "shm"
TRANSPORT_AUTO = "auto"

_TRANSPORTS = (TRANSPORT_AUTO, TRANSPORT_PIPE, TRANSPORT_SHM)

#: Payloads smaller than this ride the queue pipe even under shm.
DEFAULT_INLINE_MAX = 16 * 1024

#: Control-frame tags.
_TAG_INLINE = "i"
_TAG_SEGMENT = "s"


def resolve_transport(value: "str | None") -> str:
    """Validate and concretize a transport choice to ``pipe`` or ``shm``.

    ``auto`` (and ``None``) picks shared memory when the box supports it.
    An explicit ``shm`` on a box without working shared memory degrades
    to ``pipe`` with a warning rather than failing the job — the
    transport changes speed, never feasibility.
    """
    value = TRANSPORT_AUTO if value is None else str(value).lower()
    if value not in _TRANSPORTS:
        raise ConfigError(
            f"unknown transport {value!r}; choose one of "
            + ", ".join(_TRANSPORTS)
        )
    if value == TRANSPORT_PIPE:
        return TRANSPORT_PIPE
    if shm_available():
        return TRANSPORT_SHM
    if value == TRANSPORT_SHM:
        logger.warning(
            "shared-memory transport requested but unavailable "
            "(no usable /dev/shm); falling back to pipe transport"
        )
    return TRANSPORT_PIPE


class PipeTransport:
    """The synchronous-pickle-over-the-queue baseline transport."""

    kind = TRANSPORT_PIPE

    def pack(self, payload: Any, *, keep: bool = False) -> tuple:
        """One in-band frame; ``keep`` is meaningless without segments."""
        return (_TAG_INLINE, pickle.dumps(payload, protocol=5), ())

    def unpack(self, frame: tuple) -> Any:
        """Decode a frame produced by :meth:`pack`."""
        tag, blob, buffers = frame
        return pickle.loads(blob, buffers=buffers)

    # Segment-lifecycle hooks, inert on the pipe path so callers need no
    # per-transport branches.

    def release(self, frame: tuple) -> None:
        """No segment to drop."""

    def reap(self, pid: "int | None" = None) -> int:
        """No segments to reap; always 0."""
        return 0

    def cleanup(self) -> int:
        """No segments to clean up; always 0."""
        return 0


class ShmTransport:
    """Shared-memory frames for large payloads, pipe frames for small."""

    kind = TRANSPORT_SHM

    def __init__(
        self,
        nonce: "str | None" = None,
        inline_max: int = DEFAULT_INLINE_MAX,
    ) -> None:
        self.pool = SegmentPool(nonce)
        self.inline_max = inline_max

    @property
    def nonce(self) -> str:
        return self.pool.nonce

    def pack(self, payload: Any, *, keep: bool = False) -> tuple:
        """Encode ``payload``; large ones go out-of-band via a segment.

        ``keep=True`` (parent-side task dispatch) leaves the segment
        mapped and tracked in the pool so a re-dispatch can reuse it;
        the caller releases it at wave end.  ``keep=False`` (worker-side
        results) closes the mapping immediately — the parent maps it by
        name and unlinks it after the read.
        """
        buffers: list[pickle.PickleBuffer] = []
        blob = pickle.dumps(payload, protocol=5, buffer_callback=buffers.append)
        views = [b.raw() for b in buffers]
        total = len(blob) + sum(len(v) for v in views)
        if total < self.inline_max:
            return (_TAG_INLINE, blob, tuple(bytes(v) for v in views))
        name = self.pool.next_name()
        lens = tuple(len(v) for v in views)
        if keep:
            shm = _shm_mod.SharedMemory(create=True, size=max(1, total),
                                        name=name)
            offset = 0
            for part in (blob, *views):
                shm.buf[offset:offset + len(part)] = part
                offset += len(part)
            self.pool.adopt(name, shm)
        else:
            write_segment(name, [blob, *views])
        return (_TAG_SEGMENT, name, len(blob), lens)

    def unpack(self, frame: tuple) -> Any:
        """Decode a frame; segment frames are read in place and dropped.

        Raises :class:`~repro.xfer.segments.SegmentLost` when the named
        segment no longer exists (its worker died and was reaped) — the
        caller decides whether that is a stale duplicate or a real loss.
        """
        if frame[0] == _TAG_INLINE:
            return pickle.loads(frame[1], buffers=frame[2])
        _tag, name, blob_len, buf_lens = frame
        view = self.pool.attach(name)
        try:
            offset = blob_len
            buffers = []
            for length in buf_lens:
                # Copy out-of-band buffers so nothing the unpickler
                # builds can alias the segment past its unlink.
                buffers.append(bytearray(view[offset:offset + length]))
                offset += length
            return pickle.loads(view[:blob_len], buffers=buffers)
        finally:
            self.pool.release(name)

    def release(self, frame: tuple) -> None:
        """Drop a ``keep``-packed frame's segment (wave-end cleanup)."""
        if frame and frame[0] == _TAG_SEGMENT:
            self.pool.release(frame[1])

    def reap(self, pid: "int | None" = None) -> int:
        """Unlink a dead worker's stray segments (supervisor hook)."""
        return self.pool.reap(pid)

    def cleanup(self) -> int:
        """Job-exit guarantee: no segment of this job's nonce survives."""
        return self.pool.cleanup()


def make_transport(
    kind: "str | None" = TRANSPORT_AUTO,
    nonce: "str | None" = None,
    inline_max: int = DEFAULT_INLINE_MAX,
) -> "PipeTransport | ShmTransport":
    """Build the transport ``kind`` resolves to on this box."""
    if resolve_transport(kind) == TRANSPORT_SHM:
        return ShmTransport(nonce, inline_max=inline_max)
    return PipeTransport()
