"""Shared-memory segments: storage layer of the zero-copy transport.

Naming contract: every segment a job creates is called
``rxf<nonce>p<pid>s<seq>`` — the job nonce scopes reaping (a cleanup
pass may unlink *only* its own job's strays, never a concurrent job's),
and the pid identifies the creating process so the supervisor can reap a
SIGKILLed worker's orphans specifically.

Lifecycle contract: the **parent** unlinks everything.  Workers create
result segments, write, ``close()`` and post the name; the parent maps,
reads, and ``close()+unlink()``s.  Python's ``resource_tracker`` is
deliberately unregistered on both sides (on 3.11/3.12 even *attaching*
registers a segment, so the tracker would double-unlink or warn about
segments the pool manages by hand).  Crash paths are covered by
:meth:`SegmentPool.reap`: ``/dev/shm`` is scanned for the job's nonce
prefix and any segment not accounted for is unlinked — run after the
supervisor's dead-worker detection and unconditionally on job exit, so
a SIGKILLed worker cannot leak.
"""

from __future__ import annotations

import os
import secrets
import threading
from typing import Iterable, Sequence

from repro.errors import ParallelError

try:  # pragma: no cover - import guard for exotic platforms
    from multiprocessing import shared_memory as _shm_mod
except ImportError:  # pragma: no cover
    _shm_mod = None  # type: ignore[assignment]

#: Prefix shared by every segment this repo creates; the reaper keys on it.
SEG_PREFIX = "rxf"

#: Where POSIX shm segments appear as files (Linux); used only for reaping.
_SHM_DIR = "/dev/shm"


class SegmentLost(ParallelError):
    """A posted segment vanished before the receiver could map it."""


def segment_name(nonce: str, pid: int, seq: int) -> str:
    """The canonical segment name (short: POSIX caps shm names tightly)."""
    return f"{SEG_PREFIX}{nonce}p{pid}s{seq}"


def new_nonce() -> str:
    """A fresh 8-hex job nonce scoping segment names and reaping."""
    return secrets.token_hex(4)


def _untrack(shm: "_shm_mod.SharedMemory") -> None:
    """Drop a segment from the resource tracker; the pool owns cleanup.

    Registers before unregistering so the net effect is "not tracked" on
    every interpreter version — 3.11 registers only on create, 3.12+
    also on attach, and the tracker's cache is a set so the extra
    register is harmless.
    """
    try:  # pragma: no cover - depends on interpreter internals
        from multiprocessing import resource_tracker

        resource_tracker.register(shm._name, "shared_memory")
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # noqa: BLE001 - tracker bookkeeping is best-effort
        pass


def _unlink(shm: "_shm_mod.SharedMemory") -> bool:
    """Unlink a segment the pool untracked, without tracker noise.

    ``SharedMemory.unlink`` unregisters from the resource tracker as a
    side effect; since :func:`_untrack` already removed the name, that
    would make the tracker process log a KeyError.  Re-register first so
    unlink's unregister is balanced.
    """
    try:  # pragma: no cover - tracker bookkeeping is best-effort
        from multiprocessing import resource_tracker

        resource_tracker.register(shm._name, "shared_memory")
    except Exception:  # noqa: BLE001
        pass
    try:
        shm.unlink()
        return True
    except FileNotFoundError:
        try:  # pragma: no cover - raced cleanup
            from multiprocessing import resource_tracker

            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:  # noqa: BLE001
            pass
        return False


_AVAILABLE: "bool | None" = None


def shm_available() -> bool:
    """True when shared-memory segments can actually be created here.

    Probes once per process: creates and immediately unlinks a 1-byte
    segment.  Containers without a writable ``/dev/shm`` (and platforms
    without ``multiprocessing.shared_memory``) return False, and the
    transport falls back to the pipe path.
    """
    global _AVAILABLE
    if _AVAILABLE is None:
        if _shm_mod is None:
            _AVAILABLE = False
        else:
            try:
                probe = _shm_mod.SharedMemory(
                    create=True, size=1,
                    name=segment_name(new_nonce(), os.getpid(), 0),
                )
                _untrack(probe)
                probe.close()
                _unlink(probe)
                _AVAILABLE = True
            except Exception:  # noqa: BLE001 - any failure means "no shm"
                _AVAILABLE = False
    return _AVAILABLE


def write_segment(name: str, parts: Sequence["bytes | memoryview"]) -> int:
    """Create ``name`` and lay ``parts`` out back to back; returns size.

    Used by whichever side *produces* a payload.  The segment is closed
    (unmapped) before returning — the receiver maps it by name — and is
    never unlinked here: the parent-side :class:`SegmentPool` owns that.
    """
    total = sum(len(p) for p in parts)
    shm = _shm_mod.SharedMemory(create=True, size=max(1, total), name=name)
    _untrack(shm)
    offset = 0
    for part in parts:
        shm.buf[offset:offset + len(part)] = part
        offset += len(part)
    shm.close()
    return total


class SegmentPool:
    """Ref-counted registry of one job's live shared-memory segments.

    One pool lives in the job's parent process.  Forked workers inherit
    it but only use :meth:`next_name` (their pid keeps names distinct);
    all map/unlink bookkeeping stays parent-side.  ``cleanup()`` is the
    job-exit guarantee: it releases everything still tracked *and* reaps
    nonce-matching strays from ``/dev/shm``, so even segments created by
    a worker that was SIGKILLed between ``write`` and ``post`` are
    unlinked.
    """

    def __init__(self, nonce: "str | None" = None) -> None:
        self.nonce = nonce or new_nonce()
        self._owner_pid = os.getpid()
        self._seq = 0
        self._seq_pid = os.getpid()
        self._lock = threading.Lock()
        #: name -> (SharedMemory, refcount); parent-side only.
        self._live: dict[str, list] = {}

    # -- naming ------------------------------------------------------------

    def next_name(self) -> str:
        """A fresh name for this process to create (fork-aware)."""
        with self._lock:
            if self._seq_pid != os.getpid():
                # Forked child: restart its own sequence under its pid.
                self._seq_pid = os.getpid()
                self._seq = 0
            self._seq += 1
            return segment_name(self.nonce, os.getpid(), self._seq)

    @property
    def is_owner(self) -> bool:
        """True in the process that created the pool (the job parent)."""
        return os.getpid() == self._owner_pid

    # -- mapping -----------------------------------------------------------

    def attach(self, name: str) -> memoryview:
        """Map ``name`` and return its buffer; balanced by :meth:`release`.

        Re-attaching a name the pool already holds bumps a refcount
        instead of double-mapping (a re-dispatched task payload).
        """
        with self._lock:
            entry = self._live.get(name)
            if entry is not None:
                entry[1] += 1
                return entry[0].buf
        try:
            shm = _shm_mod.SharedMemory(name=name)
        except FileNotFoundError:
            raise SegmentLost(f"shared-memory segment {name!r} vanished")
        _untrack(shm)
        with self._lock:
            self._live[name] = [shm, 1]
        return shm.buf

    def adopt(self, name: str, shm: "_shm_mod.SharedMemory") -> None:
        """Track a segment this process created itself (dispatch payloads)."""
        _untrack(shm)
        with self._lock:
            self._live[name] = [shm, 1]

    def release(self, name: str) -> None:
        """Drop one reference; the last one unmaps and (owner) unlinks."""
        with self._lock:
            entry = self._live.get(name)
            if entry is None:
                return
            entry[1] -= 1
            if entry[1] > 0:
                return
            del self._live[name]
            shm = entry[0]
        try:
            shm.close()
        except Exception:  # noqa: BLE001 - unmap is best-effort
            pass
        if self.is_owner:
            _unlink(shm)

    def live_names(self) -> tuple[str, ...]:
        """Names currently tracked (tests and leak diagnostics)."""
        with self._lock:
            return tuple(self._live)

    # -- crash cleanup -----------------------------------------------------

    def stray_names(self, pid: "int | None" = None) -> list[str]:
        """Nonce-matching segments on disk that this pool is not tracking.

        ``pid`` narrows the scan to one (dead) worker's segments.  An
        unreadable or missing ``/dev/shm`` yields an empty list — on such
        platforms the transport would have fallen back to pipes anyway.
        """
        marker = f"p{pid}s" if pid is not None else ""
        prefix = SEG_PREFIX + self.nonce
        try:
            entries = os.listdir(_SHM_DIR)
        except OSError:
            return []
        with self._lock:
            tracked = set(self._live)
        return [
            e for e in entries
            if e.startswith(prefix) and marker in e and e not in tracked
        ]

    def reap(self, pid: "int | None" = None) -> int:
        """Unlink stray segments (optionally one worker's); returns count.

        Only the pool owner reaps, and only segments whose creators can
        no longer post them — call with a ``pid`` after that worker was
        confirmed dead, or with no pid once all workers have exited.
        """
        if not self.is_owner:
            return 0
        reaped = 0
        for name in self.stray_names(pid):
            try:
                shm = _shm_mod.SharedMemory(name=name)
            except FileNotFoundError:
                continue
            _untrack(shm)
            try:
                shm.close()
            except Exception:  # noqa: BLE001 - unmap is best-effort
                pass
            if _unlink(shm):
                reaped += 1
        return reaped

    def cleanup(self) -> int:
        """Job-exit guarantee: release every mapping, reap every stray."""
        for name in self.live_names():
            # Force the refcount to zero: cleanup outranks leaked refs.
            with self._lock:
                entry = self._live.pop(name, None)
            if entry is None:
                continue
            try:
                entry[0].close()
            except Exception:  # noqa: BLE001
                pass
            if self.is_owner:
                _unlink(entry[0])
        return self.reap()


def orphaned_segments(nonces: Iterable[str] = ()) -> list[str]:
    """All ``rxf``-prefixed segments on disk (optionally nonce-filtered).

    Test helper for the leak assertions: after a job — crashes and all —
    this must come back empty for that job's nonce.
    """
    try:
        entries = os.listdir(_SHM_DIR)
    except OSError:
        return []
    prefixes = tuple(SEG_PREFIX + n for n in nonces) or (SEG_PREFIX,)
    return [e for e in entries if e.startswith(prefixes)]
