"""repro.xfer — zero-copy shared-memory result transport.

The process backend's original result path pushed every pickled
:class:`~repro.containers.base.ContainerDelta` and reduced run through a
``multiprocessing.Queue`` pipe: the worker's feeder thread writes the
bytes into a 64 KiB kernel pipe, the parent reads them back out, and
megabytes of combined map output cross the kernel twice.  This package
moves the payload out of the pipe: workers write one pickle
(protocol 5, out-of-band buffers included) into a
``multiprocessing.shared_memory`` segment and post only a tiny control
frame — the segment name and layout — through the queue.  The parent
maps the segment and unpickles straight out of it.

:mod:`repro.xfer.segments` owns segment naming and the leak-proof
lifecycle (ref-counted :class:`~repro.xfer.segments.SegmentPool`,
nonce-scoped reaping of crashed workers' strays);
:mod:`repro.xfer.transport` is the codec both halves of a fork share.
"""

from repro.xfer.segments import SegmentLost, SegmentPool, shm_available
from repro.xfer.transport import (
    TRANSPORT_AUTO,
    TRANSPORT_PIPE,
    TRANSPORT_SHM,
    PipeTransport,
    ShmTransport,
    make_transport,
    resolve_transport,
)

__all__ = [
    "SegmentLost",
    "SegmentPool",
    "shm_available",
    "TRANSPORT_AUTO",
    "TRANSPORT_PIPE",
    "TRANSPORT_SHM",
    "PipeTransport",
    "ShmTransport",
    "make_transport",
    "resolve_transport",
]
