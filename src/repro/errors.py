"""Exception hierarchy for the SupMR reproduction.

All library-raised errors derive from :class:`ReproError` so callers can
catch one base class at API boundaries without swallowing interpreter
errors (``TypeError`` etc. still propagate for genuine programming bugs).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """A runtime/machine/workload configuration is invalid."""


class ChunkingError(ReproError):
    """Ingest-chunk planning or boundary adjustment failed."""


class ContainerError(ReproError):
    """Misuse of an intermediate key-value container."""


class RuntimeStateError(ReproError):
    """A runtime was driven through an invalid state transition."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class WorkloadError(ReproError):
    """A data generator or record codec was asked for something invalid."""


class ExperimentError(ReproError):
    """An experiment harness was configured or run incorrectly."""


class SpillError(ReproError):
    """The out-of-core spill subsystem hit an invalid state or a bad run
    file (truncated, corrupted, or misframed)."""
