"""Exception hierarchy for the SupMR reproduction.

All library-raised errors derive from :class:`ReproError` so callers can
catch one base class at API boundaries without swallowing interpreter
errors (``TypeError`` etc. still propagate for genuine programming bugs).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """A runtime/machine/workload configuration is invalid."""


class ChunkingError(ReproError):
    """Ingest-chunk planning or boundary adjustment failed."""


class ContainerError(ReproError):
    """Misuse of an intermediate key-value container."""


class RuntimeStateError(ReproError):
    """A runtime was driven through an invalid state transition."""


class DrainTimeout(RuntimeStateError):
    """:meth:`~repro.core.scheduler.TaskScheduler.drain` timed out.

    Carries the number of tasks still pending so callers can size a
    retry or report how much work was abandoned.  Subclasses
    :class:`RuntimeStateError` because an un-drained scheduler is an
    invalid state to tear down from.
    """

    def __init__(self, message: str, pending: int = 0) -> None:
        super().__init__(message)
        self.pending = pending


class DeadlineExceeded(RuntimeStateError):
    """A whole-job deadline (``RuntimeOptions.job_deadline_s``) expired.

    Raised internally to stop admitting new work; the runtimes catch it
    and return the partial result with a ``degraded`` marker rather than
    letting it propagate.
    """


class CheckpointError(ReproError):
    """A job journal could not be read, written, or matched to the job.

    Raised on fingerprint mismatches (resuming a checkpoint that was
    written by a *different* job or option set) and on structurally
    invalid journal files whose corruption cannot be safely ignored.
    """


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class WorkloadError(ReproError):
    """A data generator or record codec was asked for something invalid."""


class ExperimentError(ReproError):
    """An experiment harness was configured or run incorrectly."""


class SpillError(ReproError):
    """The out-of-core spill subsystem hit an invalid state or a bad run
    file (truncated, corrupted, or misframed)."""


class ParallelError(ReproError):
    """The process-backed execution engine (:mod:`repro.parallel`) could
    not run: fork unavailable, a worker died without reporting a result,
    or a worker's failure could not be transported back."""


class ServiceError(ReproError):
    """Base class for the long-lived job service (:mod:`repro.service`):
    daemon, framed transport, and client failures."""


class ProtocolError(ServiceError):
    """A transport frame violated the wire protocol.

    Carries a ``reason`` tag (``truncated`` | ``bad-magic`` | ``bad-crc``
    | ``version`` | ``oversize`` | ``bad-payload`` | ``stalled``) so
    tests and retry logic can branch on *how* the frame was bad, not
    just that it was.
    """

    def __init__(self, message: str, reason: str = "") -> None:
        super().__init__(message)
        self.reason = reason


class AdmissionError(ServiceError):
    """The service refused to admit a submitted job.

    ``code`` is the typed rejection class (``queue-full`` |
    ``budget-exceeded`` | ``draining``) — over-admission is answered
    with this error instead of unbounded queuing.
    """

    def __init__(self, message: str, code: str = "") -> None:
        super().__init__(message)
        self.code = code


class JobNotFound(ServiceError):
    """A status/result/cancel request named a job the service does not
    know (never submitted, or already garbage-collected)."""


class NetError(ServiceError):
    """Base class for the multi-host transport (:mod:`repro.net`):
    agent links, remote worker dispatch, and the remote run exchange."""


class PeerUnreachable(NetError):
    """A configured peer could not be reached.

    At coordinator startup this is a usage error (the ``--peers`` list
    names a host that is not running an agent — exit code 2); mid-job it
    is handled internally by the degradation ladder (local respawn or
    full local fallback) and never escapes to the caller.
    """

    def __init__(self, message: str, peer: str = "") -> None:
        super().__init__(message)
        self.peer = peer


class FaultError(ReproError):
    """Base class for the fault-injection and recovery subsystem
    (:mod:`repro.faults`)."""


class FaultInjected(FaultError):
    """A fault armed by a :class:`~repro.faults.plan.FaultPlan` fired.

    Carries the site name so recovery wrappers and tests can tell an
    injected fault from an organic one.
    """

    def __init__(self, message: str, site: str = "") -> None:
        super().__init__(message)
        self.site = site


class RetryExhausted(FaultError):
    """A recovery retry loop used up its budget without succeeding.

    Always raised ``from`` the last underlying failure, so the original
    cause stays on the exception chain (``__cause__``).
    """

    def __init__(self, message: str, site: str = "", attempts: int = 0) -> None:
        super().__init__(message)
        self.site = site
        self.attempts = attempts


class QuarantineOverflow(FaultError):
    """More records were quarantined than the skip budget allows."""

    def __init__(self, message: str, site: str = "", quarantined: int = 0) -> None:
        super().__init__(message)
        self.site = site
        self.quarantined = quarantined
