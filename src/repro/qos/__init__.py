"""Multi-tenant QoS: bandwidth allocators, token-bucket throttling,
and the weighted-fair job queue.

The paper's thesis is that disk and memory *bandwidth* — not CPU — is
the scarce resource on a scale-up node.  Once the job service runs many
concurrent jobs on one box, that bandwidth is contended across tenants;
this package is the arbitration layer:

* :mod:`repro.qos.allocator` — deterministic, unit-conserving bandwidth
  allocation policies (:class:`FairShare`, :class:`MaxMinFairShare`,
  :class:`PriorityLevels`) shared by the simulator's fluid-flow disk
  model and the service's dispatch-time share assignment;
* :mod:`repro.qos.throttle` — the real enforcement mechanism: a
  monotonic-clock :class:`TokenBucket` wired into the runtimes' hot I/O
  edges (chunk ingest reads, spill run writes), plus per-tenant bucket
  registries fed by an allocator's current shares;
* :mod:`repro.qos.scheduling` — the service's weighted-fair queue with
  priority aging, replacing the single priority heap so no tenant and
  no priority class can starve.
"""

from repro.qos.allocator import (
    BandwidthAllocator,
    FairShare,
    MaxMinFairShare,
    PriorityLevels,
    make_allocator,
)
from repro.qos.scheduling import QueueEntry, WeightedFairQueue
from repro.qos.throttle import TenantBuckets, TokenBucket

__all__ = [
    "BandwidthAllocator",
    "FairShare",
    "MaxMinFairShare",
    "PriorityLevels",
    "make_allocator",
    "QueueEntry",
    "WeightedFairQueue",
    "TenantBuckets",
    "TokenBucket",
]
