"""Bandwidth allocation policies: deterministic, unit-conserving.

A :class:`BandwidthAllocator` answers one question: given a capacity and
a set of registered flows (each with a demand, a weight, and a priority),
what rate does each flow get *right now*?  The same answer is used in
two places:

* the **simulator** (:class:`repro.simhw.resources.BandwidthResource`)
  re-allocates every time the flow set changes, so concurrent simulated
  jobs contend the way concurrent real jobs do;
* the **service** computes dispatch-time shares of the configured node
  bandwidth and feeds them to per-tenant token buckets
  (:mod:`repro.qos.throttle`) that enforce them on the real I/O paths.

Every policy is a pure function of the registered flows — no clocks, no
randomness — and *unit-conserving*: the allocations never sum past the
capacity (modulo float epsilon), and no flow is ever handed more than it
asked for.  Registration order does not change the result beyond float
associativity.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Hashable

from repro.errors import ConfigError

#: Float slop shared with the simulator's fluid-flow kernel.
EPSILON = 1e-9


@dataclass
class _Registration:
    """One flow's current request."""

    flow: Hashable
    demand: float  # units/second wanted; math.inf = "everything"
    weight: float
    priority: int


def waterfill(
    regs: "list[_Registration]", capacity: float
) -> dict[Hashable, float]:
    """Weighted max-min fair (water-filling) rates, demand-capped.

    Repeatedly hands unsatisfied flows an equal weighted share of the
    leftover capacity; flows whose demand falls below their share are
    granted exactly their demand and drop out, freeing the surplus for
    the rest.  This is the same loop the simulator's fluid-flow channel
    runs — kept verbatim (same epsilon, same capping comparison) so the
    two stay numerically identical.
    """
    rates: dict[Hashable, float] = {r.flow: 0.0 for r in regs}
    unallocated = float(capacity)
    pending = [r for r in regs if r.demand > EPSILON]
    while pending and unallocated > EPSILON:
        total_weight = sum(r.weight for r in pending)
        share_per_weight = unallocated / total_weight
        capped = [
            r for r in pending
            if r.weight * share_per_weight >= r.demand - EPSILON
        ]
        if not capped:
            for r in pending:
                rates[r.flow] = r.weight * share_per_weight
            unallocated = 0.0
            break
        for r in capped:
            rates[r.flow] = r.demand
            unallocated -= r.demand
        pending = [r for r in pending if r not in capped]
    return rates


class BandwidthAllocator(ABC):
    """Base class: register flows, then compute their allocated rates.

    Mirrors the register/compute/lookup shape of the psim allocator
    hierarchy: :meth:`reset` clears the registration set, each
    :meth:`register` files one flow's demand, :meth:`allocate` computes
    every rate at once, and :meth:`share` looks one up afterwards.
    """

    #: Policy name (the ``--qos-policy`` CLI value).
    policy = "abstract"

    def __init__(self, capacity: float) -> None:
        if not capacity > 0:
            raise ConfigError(
                f"{type(self).__name__}: capacity must be positive, "
                f"got {capacity!r}"
            )
        self.capacity = float(capacity)
        self._regs: list[_Registration] = []
        self._allocations: dict[Hashable, float] = {}

    # -- registration ------------------------------------------------------

    def reset(self) -> None:
        """Forget every registered flow and computed allocation."""
        self._regs.clear()
        self._allocations.clear()

    def set_capacity(self, capacity: float) -> None:
        """Change the capacity (device degradation, reconfiguration)."""
        if not capacity > 0:
            raise ConfigError(
                f"{type(self).__name__}: capacity must be positive"
            )
        self.capacity = float(capacity)

    def register(
        self,
        flow: Hashable,
        demand: float,
        weight: float = 1.0,
        priority: int = 0,
    ) -> None:
        """File one flow's request; ``demand=math.inf`` asks for everything."""
        if demand < 0:
            raise ConfigError(f"flow {flow!r}: demand must be >= 0")
        if weight <= 0:
            raise ConfigError(f"flow {flow!r}: weight must be positive")
        for reg in self._regs:
            if reg.flow == flow:
                raise ConfigError(f"flow {flow!r} registered twice")
        self._regs.append(
            _Registration(flow=flow, demand=float(demand),
                          weight=float(weight), priority=int(priority))
        )

    # -- results -----------------------------------------------------------

    def allocate(self) -> dict[Hashable, float]:
        """Compute (and cache) every registered flow's rate."""
        self._allocations = self._compute()
        return dict(self._allocations)

    @abstractmethod
    def _compute(self) -> dict[Hashable, float]:
        """Policy body: flow -> allocated rate."""

    def share(self, flow: Hashable) -> float:
        """One flow's rate from the last :meth:`allocate` (0.0 if absent)."""
        return self._allocations.get(flow, 0.0)

    @property
    def total_demand(self) -> float:
        """Sum of registered demands (may be ``inf``)."""
        return sum(r.demand for r in self._regs)

    @property
    def total_allocated(self) -> float:
        """Sum of the last computed allocations."""
        return sum(self._allocations.values())

    @property
    def utilization(self) -> float:
        """Allocated fraction of capacity, in [0, 1]."""
        return min(1.0, self.total_allocated / self.capacity)


class FairShare(BandwidthAllocator):
    """Plain weighted fair share, demand-capped, surplus *not* recycled.

    Every flow gets ``capacity * weight / total_weight``, clipped to its
    demand.  Capacity a demand-limited flow leaves on the table is not
    redistributed — the simplest conserving policy, and the baseline the
    max-min tests compare against (max-min always allocates at least as
    much in aggregate).
    """

    policy = "fair-share"

    def _compute(self) -> dict[Hashable, float]:
        if not self._regs:
            return {}
        total_weight = sum(r.weight for r in self._regs)
        return {
            r.flow: min(r.demand, self.capacity * r.weight / total_weight)
            for r in self._regs
        }


class MaxMinFairShare(BandwidthAllocator):
    """Weighted max-min fairness via demand-capped water-filling.

    The policy both the fluid-flow simulator and the service default to:
    no flow can raise its rate without lowering that of a flow with an
    equal-or-smaller rate, and surplus from demand-satisfied flows is
    recycled until the capacity or every demand is exhausted.
    """

    policy = "max-min"

    def _compute(self) -> dict[Hashable, float]:
        return waterfill(self._regs, self.capacity)


class PriorityLevels(BandwidthAllocator):
    """Strict priority levels; max-min water-filling within each level.

    Higher ``priority`` values are served first: level *k* water-fills
    whatever capacity levels above it left over.  A saturated high level
    starves lower ones entirely — which is why the *service* pairs this
    policy with queue-side priority aging, not why the allocator should
    soften it.
    """

    policy = "priority"

    def _compute(self) -> dict[Hashable, float]:
        rates: dict[Hashable, float] = {r.flow: 0.0 for r in self._regs}
        remaining = self.capacity
        for level in sorted({r.priority for r in self._regs}, reverse=True):
            if remaining <= EPSILON:
                break
            level_regs = [r for r in self._regs if r.priority == level]
            level_rates = waterfill(level_regs, remaining)
            for flow, rate in level_rates.items():
                rates[flow] = rate
                remaining -= rate
        return rates


class HostCapacityAllocator(BandwidthAllocator):
    """Per-host capacity composition over one inner policy.

    The cluster-aware service's allocator: every flow is registered
    with the ``host`` its job was placed on, each host owns its *own*
    capacity (the constructor capacity by default — the node bandwidth
    models one host's disk, so ten agents have ten disks — overridable
    per host via ``host_capacity``), and the configured inner policy
    splits each host's capacity among the flows placed there.  Two jobs
    on the same agent split that host's share; jobs on different hosts
    do not contend at all.

    Conservation therefore holds *per host*, not globally:
    ``total_allocated`` may exceed the constructor capacity once flows
    span multiple hosts, by design.
    """

    policy = "per-host"

    def __init__(
        self,
        capacity: float,
        inner_policy: str = "max-min",
        host_capacity: "dict[str, float] | None" = None,
    ) -> None:
        super().__init__(capacity)
        if inner_policy not in POLICIES:
            raise ConfigError(
                f"unknown inner policy {inner_policy!r}; known policies: "
                + ", ".join(sorted(POLICIES))
            )
        self.inner_policy = inner_policy
        self._host_capacity = dict(host_capacity or {})
        self._hosts: dict[Hashable, str] = {}

    def reset(self) -> None:
        """Forget every registered flow plus the host assignments."""
        super().reset()
        self._hosts.clear()

    def register(
        self,
        flow: Hashable,
        demand: float,
        weight: float = 1.0,
        priority: int = 0,
        host: str = "local",
    ) -> None:
        """File one flow's request against its host's capacity."""
        super().register(flow, demand, weight=weight, priority=priority)
        self._hosts[flow] = host

    def _compute(self) -> dict[Hashable, float]:
        by_host: dict[str, list[_Registration]] = {}
        for reg in self._regs:
            by_host.setdefault(
                self._hosts.get(reg.flow, "local"), []
            ).append(reg)
        rates: dict[Hashable, float] = {}
        for host, regs in by_host.items():
            inner = make_allocator(
                self.inner_policy,
                self._host_capacity.get(host, self.capacity),
            )
            for reg in regs:
                inner.register(
                    reg.flow, reg.demand,
                    weight=reg.weight, priority=reg.priority,
                )
            rates.update(inner.allocate())
        return rates


#: Policy-name -> class registry (the ``--qos-policy`` surface).
POLICIES: dict[str, type[BandwidthAllocator]] = {
    FairShare.policy: FairShare,
    MaxMinFairShare.policy: MaxMinFairShare,
    PriorityLevels.policy: PriorityLevels,
}


def make_allocator(policy: str, capacity: float) -> BandwidthAllocator:
    """Instantiate a policy by name; unknown names are a typed error."""
    cls = POLICIES.get(policy)
    if cls is None:
        raise ConfigError(
            f"unknown QoS policy {policy!r}; known policies: "
            + ", ".join(sorted(POLICIES))
        )
    return cls(capacity)


def brute_force_max_min(
    demands: "list[float]", capacity: float, iterations: int = 64
) -> "list[float]":
    """Reference max-min computation by bisection on the water level.

    Independent of :func:`waterfill`'s loop structure (it searches for
    the level ``L`` where ``sum(min(d, L))`` meets the capacity), so the
    property tests can cross-check the production algorithm against a
    structurally different implementation.  Equal weights only.
    """
    finite_total = sum(d for d in demands if not math.isinf(d))
    if all(not math.isinf(d) for d in demands) and finite_total <= capacity:
        return list(demands)
    lo, hi = 0.0, capacity
    for _ in range(iterations):
        mid = (lo + hi) / 2.0
        if sum(min(d, mid) for d in demands) > capacity:
            hi = mid
        else:
            lo = mid
    return [min(d, lo) for d in demands]
