"""Token-bucket I/O throttling: the real enforcement half of QoS.

A :class:`TokenBucket` meters bytes against a refill rate on the
monotonic clock.  The runtimes charge it on their hot I/O edges — chunk
ingest reads (:meth:`repro.chunking.chunk.Chunk.load`) and spill run
writes (:class:`repro.spill.runfile.RunWriter` via the spill manager) —
so a job with an ``io_budget`` consumes disk bandwidth at its assigned
rate and no faster.  Throttling only ever *delays* work; it never drops
or reorders bytes, which is why output digests are byte-identical under
any throttle settings.

The bucket uses a debt model: an acquire larger than the burst allowance
is granted immediately and driven into token debt, and the *next*
acquire waits the debt out.  That keeps single large transfers (a whole
ingest chunk) simple while still converging to the configured average
rate.

``qos.throttle.stall`` is the chaos hook: an armed fault plan injects
refill stalls (extra waiting, never data damage) that the job-level
deadline / degradation ladder absorbs like any other slow device.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Callable, Hashable

from repro.errors import ConfigError
from repro.faults.plan import SITE_QOS_THROTTLE_STALL

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.qos.allocator import BandwidthAllocator

#: Injected stall length when the fault spec does not say (seconds).
DEFAULT_STALL_S = 0.05

#: Default burst allowance, in seconds of tokens at the configured rate.
DEFAULT_BURST_S = 1.0


class TokenBucket:
    """A thread-safe token bucket over the monotonic clock.

    Parameters
    ----------
    rate_bps:
        Refill rate in bytes (tokens) per second; must be positive.
    burst_bytes:
        Token cap — the largest instantaneous burst the bucket allows to
        accumulate.  Defaults to one second of tokens.  The bucket
        starts full.
    clock / sleep:
        Injectable for deterministic tests; default to
        :func:`time.monotonic` / :func:`time.sleep`.
    injector / scope:
        Arm the ``qos.throttle.stall`` fault site: positive decisions
        add an extra stall (``spec.duration_s`` or the default) to the
        computed wait.
    """

    def __init__(
        self,
        rate_bps: float,
        burst_bytes: float | None = None,
        *,
        clock: Callable[[], float] | None = None,
        sleep: Callable[[float], None] | None = None,
        injector=None,
        scope: Hashable = (),
    ) -> None:
        if not rate_bps > 0:
            raise ConfigError(f"TokenBucket rate must be positive, got {rate_bps!r}")
        self.rate_bps = float(rate_bps)
        self.burst_bytes = float(
            burst_bytes if burst_bytes is not None
            else rate_bps * DEFAULT_BURST_S
        )
        if not self.burst_bytes > 0:
            raise ConfigError("TokenBucket burst must be positive")
        self._clock = clock if clock is not None else time.monotonic
        self._sleep = sleep if sleep is not None else time.sleep
        self._injector = injector
        self._scope = scope
        self._lock = threading.Lock()
        self._tokens = self.burst_bytes  # starts full; may go negative (debt)
        self._last_refill = self._clock()
        self._acquires = 0
        #: Counters surfaced on JobResult: bytes metered, waiting done.
        self.tokens_consumed = 0
        self.wait_s = 0.0
        self.waits = 0
        self.stalls = 0

    # -- mechanics ---------------------------------------------------------

    def _refill_locked(self) -> None:
        now = self._clock()
        elapsed = now - self._last_refill
        self._last_refill = now
        if elapsed > 0:
            self._tokens = min(
                self.burst_bytes, self._tokens + elapsed * self.rate_bps
            )

    def set_rate(self, rate_bps: float) -> None:
        """Re-rate the bucket (allocator shares changed); debt carries over."""
        if not rate_bps > 0:
            raise ConfigError("TokenBucket rate must be positive")
        with self._lock:
            self._refill_locked()  # integrate at the old rate first
            self.rate_bps = float(rate_bps)

    @property
    def tokens(self) -> float:
        """Current token balance (negative = accumulated debt)."""
        with self._lock:
            self._refill_locked()
            return self._tokens

    def acquire(self, amount: int, attempt: int = 0) -> float:
        """Charge ``amount`` bytes; sleeps the debt out.  Returns the wait.

        The charge is taken immediately (debt model), so concurrent
        acquirers serialize their waiting fairly: each sees the debt the
        previous ones left and pays it down before proceeding.
        """
        if amount < 0:
            raise ConfigError(f"cannot acquire {amount!r} tokens")
        wait = 0.0
        with self._lock:
            self._refill_locked()
            self._tokens -= amount
            self.tokens_consumed += amount
            self._acquires += 1
            seq = self._acquires
            if self._tokens < 0:
                wait = -self._tokens / self.rate_bps
        if self._injector is not None:
            decision = self._injector.check(
                SITE_QOS_THROTTLE_STALL,
                scope=(self._scope, seq), attempt=attempt,
            )
            if decision is not None:
                duration = decision.spec.duration_s
                wait += duration if duration is not None else DEFAULT_STALL_S
                with self._lock:
                    self.stalls += 1
        if wait > 0:
            with self._lock:
                self.wait_s += wait
                self.waits += 1
            self._sleep(wait)
        return wait

    def counters(self) -> dict[str, float]:
        """The bucket's tallies, ready to merge into result counters."""
        with self._lock:
            out: dict[str, float] = {
                "throttle_bytes": self.tokens_consumed,
                "throttle_wait_s": round(self.wait_s, 6),
                "throttle_waits": self.waits,
                "io_budget_bps": int(self.rate_bps),
            }
            if self.stalls:
                out["throttle_stalls"] = self.stalls
            return out


def bucket_from_options(options, injector=None) -> "TokenBucket | None":
    """The job's ingest/spill bucket, or None on the fast path.

    ``options.io_budget is None`` (the default) returns None — no bucket
    object, no locks, no clock reads — so unthrottled runs pay nothing
    for the QoS layer (the BENCH_pr7 gate pins this).
    """
    budget = getattr(options, "io_budget", None)
    if budget is None:
        return None
    burst = getattr(options, "io_burst", None)
    return TokenBucket(
        float(budget),
        float(burst) if burst is not None else None,
        injector=injector,
        scope=getattr(options, "tenant", "default"),
    )


class TenantBuckets:
    """Per-tenant token buckets fed by an allocator's current shares.

    The registry re-runs the allocator whenever a tenant's demand
    changes and re-rates every live bucket to its new share, so the
    enforced rates always reflect the current contention — the service
    uses the same computation to assign dispatch-time budgets, and the
    in-process tests drive real concurrent throttled I/O through it.
    """

    def __init__(
        self,
        allocator: "BandwidthAllocator",
        *,
        burst_s: float = DEFAULT_BURST_S,
        clock: Callable[[], float] | None = None,
        sleep: Callable[[float], None] | None = None,
    ) -> None:
        self.allocator = allocator
        self.burst_s = burst_s
        self._clock = clock
        self._sleep = sleep
        self._lock = threading.Lock()
        self._demands: dict[str, tuple[float, float, int]] = {}
        self._buckets: dict[str, TokenBucket] = {}

    def set_demand(
        self, tenant: str, demand: float,
        weight: float = 1.0, priority: int = 0,
    ) -> float:
        """(Re)declare one tenant's demand; returns its new share."""
        with self._lock:
            self._demands[tenant] = (float(demand), float(weight), priority)
            return self._recompute_locked()[tenant]

    def remove(self, tenant: str) -> None:
        """Drop a tenant; the survivors immediately absorb its share."""
        with self._lock:
            self._demands.pop(tenant, None)
            self._buckets.pop(tenant, None)
            self._recompute_locked()

    def _recompute_locked(self) -> dict[str, float]:
        self.allocator.reset()
        for tenant, (demand, weight, priority) in self._demands.items():
            self.allocator.register(
                tenant, demand, weight=weight, priority=priority
            )
        shares = self.allocator.allocate()
        for tenant, share in shares.items():
            rate = max(share, 1.0)  # never rate a bucket at zero
            bucket = self._buckets.get(tenant)
            if bucket is None:
                self._buckets[tenant] = TokenBucket(
                    rate, rate * self.burst_s,
                    clock=self._clock, sleep=self._sleep,
                )
            else:
                bucket.set_rate(rate)
        return shares

    def bucket(self, tenant: str) -> TokenBucket:
        """The tenant's live bucket (must have declared a demand)."""
        with self._lock:
            if tenant not in self._buckets:
                raise ConfigError(f"tenant {tenant!r} has no declared demand")
            return self._buckets[tenant]

    def shares(self) -> dict[str, float]:
        """Current share per tenant (a fresh allocation pass)."""
        with self._lock:
            return dict(self._recompute_locked()) if self._demands else {}

    def tenants(self) -> tuple[str, ...]:
        """Tenant names with a currently declared demand."""
        with self._lock:
            return tuple(self._demands)
