"""Weighted-fair job queueing with priority aging.

The service's replacement for its original single priority heap.  Two
fairness mechanisms compose:

* **Across tenants** — virtual-time weighted fair queueing: each tenant
  advances a virtual clock by ``1/weight`` per dispatched job, and the
  tenant with the smallest clock goes next.  A tenant that floods the
  queue only advances its own clock, so an interactive tenant's next job
  is never more than one round behind regardless of backlog depth.
* **Within a tenant** — priority ordering (higher first, FIFO within a
  level) softened by aging: a queued job's effective priority rises by
  one for every ``aging_every`` dispatches it sits through, so a
  low-priority class is delayed by a *bounded* number of higher-priority
  dispatches instead of starving forever.

Determinism: ties break on tenant name and admission sequence number —
no clocks, no randomness — so a queue replayed from the same admissions
pops in the same order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ConfigError

#: Default dispatches-per-priority-step for aging (0 disables aging).
DEFAULT_AGING_EVERY = 8


@dataclass
class QueueEntry:
    """One queued job: identity plus everything ordering needs."""

    job_id: str
    tenant: str = "default"
    priority: int = 0
    seq: int = 0
    #: Global dispatch count at enqueue time (the aging baseline).
    enqueued_at_pop: int = field(default=0, compare=False)


class WeightedFairQueue:
    """Virtual-time WFQ across tenants, aged priorities within each."""

    def __init__(
        self,
        aging_every: int = DEFAULT_AGING_EVERY,
        weights: "dict[str, float] | None" = None,
    ) -> None:
        if aging_every < 0:
            raise ConfigError("aging_every must be >= 0 (0 disables aging)")
        self.aging_every = aging_every
        self._weights = dict(weights or {})
        self._queues: dict[str, list[QueueEntry]] = {}
        self._vtime: dict[str, float] = {}
        #: Virtual clock of the most recent dispatch — newly active
        #: tenants start here, not at zero, so a latecomer cannot claim
        #: an unbounded backlog of "owed" service.
        self._clock_v = 0.0
        self._pops = 0
        #: Dispatches whose winner outran its nominal priority via aging.
        self.aged = 0

    # -- inspection --------------------------------------------------------

    def __len__(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def depth(self, tenant: "str | None" = None) -> int:
        """Queued jobs for one tenant, or in total when ``tenant`` is None."""
        if tenant is None:
            return len(self)
        return len(self._queues.get(tenant, ()))

    def tenants(self) -> dict[str, int]:
        """Queued-job count per tenant with a non-empty queue."""
        return {t: len(q) for t, q in self._queues.items() if q}

    def weight(self, tenant: str) -> float:
        """The tenant's fair-share weight (1.0 unless configured)."""
        return self._weights.get(tenant, 1.0)

    # -- mutation ----------------------------------------------------------

    def push(self, entry: QueueEntry) -> None:
        """Enqueue one job under its tenant."""
        queue = self._queues.setdefault(entry.tenant, [])
        if not queue:
            # (re)activation: pick the virtual clock up from "now"
            self._vtime[entry.tenant] = max(
                self._vtime.get(entry.tenant, 0.0), self._clock_v
            )
        entry.enqueued_at_pop = self._pops
        queue.append(entry)

    def remove(self, job_id: str) -> bool:
        """Drop one queued job by id (cancellation); True when found."""
        for queue in self._queues.values():
            for i, entry in enumerate(queue):
                if entry.job_id == job_id:
                    del queue[i]
                    return True
        return False

    def _effective_priority(self, entry: QueueEntry) -> int:
        if not self.aging_every:
            return entry.priority
        waited = self._pops - entry.enqueued_at_pop
        return entry.priority + waited // self.aging_every

    def pop(
        self, eligible: "Callable[[QueueEntry], bool] | None" = None
    ) -> "QueueEntry | None":
        """Dispatch the next job (None when empty).

        ``eligible`` filters dispatchability without disturbing the
        fairness state — the cluster-aware service uses it to hold back
        jobs that want agent placement while the pool is still being
        probed.  Tenants are visited in virtual-time order and the best
        eligible entry of the first tenant holding one wins; ineligible
        entries stay queued untouched, and when *nothing* is eligible
        no clock advances (the queue looks exactly as it did before).
        """
        active = sorted(
            (t for t, q in self._queues.items() if q),
            key=lambda t: (self._vtime.get(t, 0.0), t),
        )
        for tenant in active:
            queue = self._queues[tenant]
            candidates = [
                i for i in range(len(queue))
                if eligible is None or eligible(queue[i])
            ]
            if candidates:
                break
        else:
            return None
        best = max(
            candidates,
            key=lambda i: (
                self._effective_priority(queue[i]), -queue[i].seq
            ),
        )
        entry = queue.pop(best)
        if self._effective_priority(entry) > entry.priority:
            self.aged += 1
        self._pops += 1
        self._vtime[tenant] = (
            self._vtime.get(tenant, 0.0) + 1.0 / self.weight(tenant)
        )
        self._clock_v = self._vtime[tenant]
        return entry
