"""Output writers: persist job results in record formats.

The paper's jobs end with results in memory; a usable system also writes
them back out.  ``write_terasort_output`` emits the standard
``key<SP>payload\\r\\n`` records (round-trippable through
:class:`~repro.io.records.TeraRecordCodec`), ``write_text_pairs`` a
``key<TAB>value`` text dump for the aggregate jobs.

:class:`FramedRecordWriter` / :func:`iter_framed_records` are the binary
length-prefixed framing the out-of-core spill subsystem
(:mod:`repro.spill`) stores its run files in: each record is a 4-byte
big-endian length followed by that many payload bytes, with a running
CRC-32 so readers can reject corrupted or truncated files.
"""

from __future__ import annotations

import struct
import zlib
from pathlib import Path
from typing import Any, BinaryIO, Hashable, Iterable, Iterator

from repro.errors import WorkloadError
from repro.io.records import TeraRecordCodec

_FLUSH_BYTES = 1 << 20

_FRAME_PREFIX = struct.Struct(">I")  # 4-byte big-endian record length


def write_terasort_output(
    path: str | Path,
    pairs: Iterable[tuple[bytes, bytes]],
    codec: TeraRecordCodec | None = None,
) -> int:
    """Write (key, payload) pairs as terasort records; returns bytes."""
    codec = codec or TeraRecordCodec()
    written = 0
    buf: list[bytes] = []
    buffered = 0
    with open(path, "wb") as fh:
        for key, payload in pairs:
            if len(key) != codec.key_len:
                raise WorkloadError(
                    f"key {key!r} is not {codec.key_len} bytes"
                )
            record = key + b" " + payload + codec.delimiter
            buf.append(record)
            buffered += len(record)
            if buffered >= _FLUSH_BYTES:
                fh.write(b"".join(buf))
                written += buffered
                buf, buffered = [], 0
        if buf:
            fh.write(b"".join(buf))
            written += buffered
    return written


class FramedRecordWriter:
    """Length-prefixed binary record framing with a running CRC-32.

    Writes go through a caller-supplied binary file object; the writer
    buffers small records and tracks ``records``, ``payload_bytes`` and
    ``crc32`` so a container format (e.g. a spill run file) can persist
    them in its header.
    """

    def __init__(self, fh: BinaryIO) -> None:
        self._fh = fh
        self._buf: list[bytes] = []
        self._buffered = 0
        self.records = 0
        self.payload_bytes = 0
        self.crc32 = 0

    def write(self, payload: bytes) -> None:
        """Append one framed record."""
        frame = _FRAME_PREFIX.pack(len(payload)) + payload
        self.crc32 = zlib.crc32(frame, self.crc32)
        self._buf.append(frame)
        self._buffered += len(frame)
        self.records += 1
        self.payload_bytes += len(frame)
        if self._buffered >= _FLUSH_BYTES:
            self.flush()

    def flush(self) -> None:
        """Push buffered frames to the underlying file."""
        if self._buf:
            self._fh.write(b"".join(self._buf))
            self._buf, self._buffered = [], 0


def iter_framed_records(
    fh: BinaryIO, n_records: int | None = None
) -> Iterator[bytes]:
    """Yield framed record payloads written by :class:`FramedRecordWriter`.

    Reads exactly ``n_records`` frames when given (raising
    :class:`~repro.errors.WorkloadError` on a short file), otherwise
    until EOF; a frame cut off mid-record always raises.
    """
    read = 0
    while n_records is None or read < n_records:
        prefix = fh.read(_FRAME_PREFIX.size)
        if not prefix and n_records is None:
            return
        if len(prefix) < _FRAME_PREFIX.size:
            raise WorkloadError(
                f"framed stream truncated after {read} records"
            )
        (length,) = _FRAME_PREFIX.unpack(prefix)
        payload = fh.read(length)
        if len(payload) < length:
            raise WorkloadError(
                f"framed record {read} truncated: "
                f"expected {length} bytes, got {len(payload)}"
            )
        yield payload
        read += 1


def write_text_pairs(
    path: str | Path,
    pairs: Iterable[tuple[Hashable, Any]],
) -> int:
    """Write key<TAB>value lines (keys/values stringified; bytes decoded)."""

    def render(x: Any) -> str:
        if isinstance(x, bytes):
            return x.decode("utf-8", "backslashreplace")
        return str(x)

    lines = 0
    with open(path, "w", encoding="utf-8") as fh:
        for key, value in pairs:
            fh.write(f"{render(key)}\t{render(value)}\n")
            lines += 1
    return lines
