"""Output writers: persist job results in record formats.

The paper's jobs end with results in memory; a usable system also writes
them back out.  ``write_terasort_output`` emits the standard
``key<SP>payload\\r\\n`` records (round-trippable through
:class:`~repro.io.records.TeraRecordCodec`), ``write_text_pairs`` a
``key<TAB>value`` text dump for the aggregate jobs.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Hashable, Iterable

from repro.errors import WorkloadError
from repro.io.records import TeraRecordCodec

_FLUSH_BYTES = 1 << 20


def write_terasort_output(
    path: str | Path,
    pairs: Iterable[tuple[bytes, bytes]],
    codec: TeraRecordCodec | None = None,
) -> int:
    """Write (key, payload) pairs as terasort records; returns bytes."""
    codec = codec or TeraRecordCodec()
    written = 0
    buf: list[bytes] = []
    buffered = 0
    with open(path, "wb") as fh:
        for key, payload in pairs:
            if len(key) != codec.key_len:
                raise WorkloadError(
                    f"key {key!r} is not {codec.key_len} bytes"
                )
            record = key + b" " + payload + codec.delimiter
            buf.append(record)
            buffered += len(record)
            if buffered >= _FLUSH_BYTES:
                fh.write(b"".join(buf))
                written += buffered
                buf, buffered = [], 0
        if buf:
            fh.write(b"".join(buf))
            written += buffered
    return written


def write_text_pairs(
    path: str | Path,
    pairs: Iterable[tuple[Hashable, Any]],
) -> int:
    """Write key<TAB>value lines (keys/values stringified; bytes decoded)."""

    def render(x: Any) -> str:
        if isinstance(x, bytes):
            return x.decode("utf-8", "backslashreplace")
        return str(x)

    lines = 0
    with open(path, "w", encoding="utf-8") as fh:
        for key, value in pairs:
            fh.write(f"{render(key)}\t{render(value)}\n")
            lines += 1
    return lines
