"""Filesystem helpers for ingest: sized reads and input inventories."""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterable, Sequence

from repro.errors import WorkloadError


def read_slice(path: str | Path, offset: int, length: int) -> bytes:
    """Read ``length`` bytes of ``path`` starting at ``offset``.

    Short reads past EOF return what exists; a negative slice raises.
    """
    if offset < 0 or length < 0:
        raise WorkloadError(f"invalid slice [{offset}, +{length}) of {path}")
    with open(path, "rb") as fh:
        fh.seek(offset)
        return fh.read(length)


def file_sizes(paths: Iterable[str | Path]) -> list[tuple[Path, int]]:
    """(path, size) for every input file; missing files raise."""
    out: list[tuple[Path, int]] = []
    for p in paths:
        path = Path(p)
        if not path.is_file():
            raise WorkloadError(f"input file missing: {path}")
        out.append((path, path.stat().st_size))
    return out


def total_input_bytes(paths: Sequence[str | Path]) -> int:
    """Total bytes across the input files."""
    return sum(size for _path, size in file_sizes(paths))


def ensure_dir(path: str | Path) -> Path:
    """Create ``path`` (and parents) if needed; return it as ``Path``."""
    p = Path(path)
    p.mkdir(parents=True, exist_ok=True)
    return p


def remove_if_exists(path: str | Path) -> None:
    """Delete ``path`` if present; quiet if it is not."""
    try:
        os.unlink(path)
    except FileNotFoundError:
        pass
