"""Filesystem helpers for ingest: sized reads and input inventories.

``read_slice`` is the fault-injection site ``ingest.read``: when an
armed :class:`~repro.faults.injector.FaultInjector` is passed in, a
firing decision either raises a transient
:class:`~repro.errors.FaultInjected` before the read (kind ``error``) or
truncates the returned bytes (kind ``short``) — both of which the
chunk-level retry in the runtimes recovers from.  With no injector the
function is byte-for-byte the original fast path.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import TYPE_CHECKING, Hashable, Iterable, Sequence

from repro.errors import FaultInjected, WorkloadError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import FaultInjector
    from repro.qos.throttle import TokenBucket


def read_slice(
    path: str | Path,
    offset: int,
    length: int,
    *,
    injector: "FaultInjector | None" = None,
    scope: Hashable = (),
    attempt: int = 0,
    throttle: "TokenBucket | None" = None,
) -> bytes:
    """Read ``length`` bytes of ``path`` starting at ``offset``.

    Short reads past EOF return what exists; a negative slice raises.
    ``injector``/``scope``/``attempt`` arm the ``ingest.read`` fault site
    (see module docstring); production reads pass none of them.  A
    ``throttle`` charges the requested bytes against the job's I/O
    budget before the read happens.
    """
    if offset < 0 or length < 0:
        raise WorkloadError(f"invalid slice [{offset}, +{length}) of {path}")
    if throttle is not None:
        throttle.acquire(length)
    decision = None
    if injector is not None:
        from repro.faults.plan import KIND_SHORT, SITE_INGEST_READ

        decision = injector.check(
            SITE_INGEST_READ, scope=(str(path),) + tuple(scope), attempt=attempt
        )
        if decision is not None and decision.kind != KIND_SHORT:
            raise FaultInjected(
                f"injected transient read error on {path} "
                f"[{offset}, +{length})",
                site=SITE_INGEST_READ,
            )
    with open(path, "rb") as fh:
        fh.seek(offset)
        data = fh.read(length)
    if decision is not None:
        # kind "short": deliver only half of what the caller asked for,
        # as a flaky device would; chunk loading detects the shortfall.
        return data[: len(data) // 2]
    return data


def file_sizes(paths: Iterable[str | Path]) -> list[tuple[Path, int]]:
    """(path, size) for every input file; missing files raise."""
    out: list[tuple[Path, int]] = []
    for p in paths:
        path = Path(p)
        if not path.is_file():
            raise WorkloadError(f"input file missing: {path}")
        out.append((path, path.stat().st_size))
    return out


def total_input_bytes(paths: Sequence[str | Path]) -> int:
    """Total bytes across the input files."""
    return sum(size for _path, size in file_sizes(paths))


def ensure_dir(path: str | Path) -> Path:
    """Create ``path`` (and parents) if needed; return it as ``Path``."""
    p = Path(path)
    p.mkdir(parents=True, exist_ok=True)
    return p


def remove_if_exists(path: str | Path) -> None:
    """Delete ``path`` if present; quiet if it is not."""
    try:
        os.unlink(path)
    except FileNotFoundError:
        pass
