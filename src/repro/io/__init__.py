"""Record formats and file helpers shared by the runtime and workloads."""

from repro.io.datafile import file_sizes, read_slice, total_input_bytes
from repro.io.writer import write_terasort_output, write_text_pairs
from repro.io.records import (
    RecordCodec,
    TeraRecordCodec,
    TextCodec,
    WholeLineCodec,
)

__all__ = [
    "RecordCodec",
    "TeraRecordCodec",
    "TextCodec",
    "WholeLineCodec",
    "read_slice",
    "file_sizes",
    "total_input_bytes",
    "write_terasort_output",
    "write_text_pairs",
]
