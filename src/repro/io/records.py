r"""Record codecs: how raw input bytes decompose into records.

The chunking layer needs exactly one fact about the data — the record
*delimiter* — to adjust split points so no key or value straddles two
ingest chunks (paper section III.A.1: "each key-value pair in the input
for Terasort is terminated with \r\n, so the split function continually
increases the split point until reaching a newline").  The map phase
additionally needs to parse records into key/value pairs; both concerns
live here.

Codecs operate on ``bytes`` and never copy more than the records they
yield — ingest chunks can be hundreds of MB.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import WorkloadError


def corrupt_record(record: bytes, salt: int = 0) -> bytes:
    """A deterministically damaged copy of ``record`` (fault injection).

    Models bit rot the way the ``record.corrupt`` fault site needs it:
    a delimiter-free garbage prefix replaces the head of the record, so
    the result still parses as *one* record but fails structural
    validation wherever the codec can check structure.  Pure function of
    ``(record, salt)`` — same plan seed, same corruption.
    """
    garbage = bytes((salt + 0x9E + i * 31) % 251 + 1 for i in range(8))
    garbage = garbage.replace(b"\n", b"\x01").replace(b"\r", b"\x02")
    return garbage + record[len(garbage):]


@dataclass(frozen=True)
class RecordCodec:
    """Base codec: newline-delimited records, whole line is the payload."""

    delimiter: bytes = b"\n"

    def validate(self, record: bytes) -> bool:
        """Best-effort structural check of one raw record.

        The base codec has no structure to check (any byte run is a
        legal line), so detection of corrupt records falls back to the
        injector's ground truth — mirroring real pipelines, where
        *record-level checksums*, not parsers, catch rot in free text.
        Structured codecs override this with real checks.
        """
        return self.delimiter not in record

    def iter_records(self, data: bytes) -> Iterator[bytes]:
        """Yield raw records (without the delimiter)."""
        if not data:
            return
        start = 0
        dlen = len(self.delimiter)
        while True:
            idx = data.find(self.delimiter, start)
            if idx == -1:
                if start < len(data):
                    yield data[start:]
                return
            yield data[start:idx]
            start = idx + dlen

    def record_end(self, data: bytes, pos: int) -> int:
        """Smallest offset >= ``pos`` that ends a record (after delimiter).

        Returns ``len(data)`` when no delimiter follows (the final,
        possibly unterminated record).
        """
        if pos >= len(data):
            return len(data)
        idx = data.find(self.delimiter, pos)
        if idx == -1:
            return len(data)
        return idx + len(self.delimiter)


@dataclass(frozen=True)
class TeraRecordCodec(RecordCodec):
    r"""Terasort-style records: ``<key> <payload>\r\n``.

    ``key_len`` ASCII bytes of key, one space, a payload, CRLF terminator —
    100 bytes per record by default, mirroring gensort's layout in the
    textual form the paper describes.
    """

    delimiter: bytes = b"\r\n"
    key_len: int = 10
    record_len: int = 100

    def validate(self, record: bytes) -> bool:
        """Terasort records have checkable structure: printable-ASCII
        key, separator space, full payload length."""
        if len(record) < self.key_len + 1:
            return False
        if record[self.key_len:self.key_len + 1] != b" ":
            return False
        return all(0x20 <= b < 0x7F for b in record[: self.key_len])

    def split_record(self, record: bytes) -> tuple[bytes, bytes]:
        """(key, payload) for one raw record."""
        if len(record) < self.key_len + 1:
            raise WorkloadError(f"terasort record too short: {record!r}")
        return record[: self.key_len], record[self.key_len + 1:]

    def iter_pairs(self, data: bytes) -> Iterator[tuple[bytes, bytes]]:
        """Yield (key, payload) per record in ``data``."""
        for record in self.iter_records(data):
            if record:  # tolerate a trailing empty fragment
                yield self.split_record(record)


@dataclass(frozen=True)
class TextCodec(RecordCodec):
    """Plain text: newline-delimited lines, whitespace-separated words."""

    delimiter: bytes = b"\n"

    def iter_words(self, data: bytes) -> Iterator[bytes]:
        """Yield whitespace-separated words across lines."""
        for line in self.iter_records(data):
            yield from line.split()


@dataclass(frozen=True)
class WholeLineCodec(RecordCodec):
    """Each line is one record whose key is the entire line (grep/index)."""

    delimiter: bytes = b"\n"

    def iter_lines(self, data: bytes) -> Iterator[bytes]:
        """Yield each line as one record."""
        yield from self.iter_records(data)
