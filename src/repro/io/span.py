"""Zero-copy byte windows over ingest buffers.

:class:`ByteSpan` is the currency of the zero-copy ingest path: a
``[start, stop)`` window over a bytes-like *base* (``bytes``,
``bytearray``, or an ``mmap.mmap``) that supports exactly the operations
the record codecs and split logic use — ``find``, ``len``, slicing,
``endswith`` — without ever copying the underlying buffer.  Slicing a
span yields ``bytes`` of just the requested range (records are small;
the buffers they come from are not), while :meth:`ByteSpan.span` carves
a narrower zero-copy window.

``memoryview`` cannot play this role because it neither exposes
``find`` nor knows its offset into the base object; ``ByteSpan`` keeps
the base and the offsets explicit, which also lets the process backend
describe a split as ``(path, offset, length)`` and rebuild the same
window over an ``mmap`` inside the worker.
"""

from __future__ import annotations

from typing import Any, Union

#: What map functions may see as their input split.
BytesLike = Union[bytes, bytearray, "ByteSpan"]


class ByteSpan:
    """A zero-copy ``[start, stop)`` window over a bytes-like base."""

    __slots__ = ("base", "start", "stop")

    def __init__(self, base: Any, start: int = 0, stop: int | None = None):
        length = len(base)
        if stop is None:
            stop = length
        if not 0 <= start <= stop <= length:
            raise ValueError(
                f"span [{start}, {stop}) outside base of {length} bytes"
            )
        self.base = base
        self.start = start
        self.stop = stop

    # -- sizing ------------------------------------------------------------

    def __len__(self) -> int:
        return self.stop - self.start

    def __bool__(self) -> bool:
        return self.stop > self.start

    # -- searching ---------------------------------------------------------

    def find(self, sub: bytes, start: int = 0, end: int | None = None) -> int:
        """``bytes.find`` semantics, with offsets relative to the span."""
        lo = self.start + min(max(start, 0), len(self))
        hi = self.stop if end is None else self.start + min(end, len(self))
        idx = self.base.find(sub, lo, hi)
        return -1 if idx == -1 else idx - self.start

    def endswith(self, suffix: bytes) -> bool:
        """True when the window's tail equals ``suffix``."""
        n = len(suffix)
        if n > len(self):
            return False
        return bytes(self.base[self.stop - n:self.stop]) == suffix

    def startswith(self, prefix: bytes) -> bool:
        """True when the window's head equals ``prefix``."""
        n = len(prefix)
        if n > len(self):
            return False
        return bytes(self.base[self.start:self.start + n]) == prefix

    # -- materializing -----------------------------------------------------

    def __getitem__(self, item: int | slice) -> Any:
        if isinstance(item, slice):
            start, stop, step = item.indices(len(self))
            if step != 1:
                raise ValueError("ByteSpan slices must be contiguous")
            return bytes(self.base[self.start + start:self.start + stop])
        if item < 0:
            item += len(self)
        if not 0 <= item < len(self):
            raise IndexError("ByteSpan index out of range")
        return self.base[self.start + item]

    def tobytes(self) -> bytes:
        """The window's contents as one ``bytes`` copy."""
        return bytes(self.base[self.start:self.stop])

    def __bytes__(self) -> bytes:
        return self.tobytes()

    def split(self, sep: bytes | None = None) -> list[bytes]:
        """``bytes.split`` over the window (materializes the pieces)."""
        return self.tobytes().split(sep)

    # -- narrowing ---------------------------------------------------------

    def span(self, start: int, stop: int) -> "ByteSpan":
        """A narrower zero-copy window, offsets relative to this span."""
        if not 0 <= start <= stop <= len(self):
            raise ValueError(
                f"sub-span [{start}, {stop}) outside span of {len(self)} bytes"
            )
        return ByteSpan(self.base, self.start + start, self.start + stop)

    # -- comparison / repr -------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ByteSpan):
            return self.tobytes() == other.tobytes()
        if isinstance(other, (bytes, bytearray, memoryview)):
            return self.tobytes() == bytes(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.tobytes())

    def __repr__(self) -> str:
        return f"ByteSpan([{self.start}:{self.stop}] of {len(self.base)}B base)"


def as_span(data: Any) -> ByteSpan:
    """``data`` as a :class:`ByteSpan` (no copy; spans pass through)."""
    if isinstance(data, ByteSpan):
        return data
    return ByteSpan(data)


def materialize(data: Any) -> bytes:
    """``data`` as real ``bytes`` (copies only when it must)."""
    if isinstance(data, bytes):
        return data
    if isinstance(data, ByteSpan):
        return data.tobytes()
    return bytes(data)
