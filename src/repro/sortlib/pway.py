"""Parallel p-way merge (Salzberg): N sorted runs -> one array, one pass.

Workers get disjoint, balanced *output ranges* computed by multisequence
selection, so they proceed without synchronization and every key is
scanned exactly once — versus O(log N) scans for iterative pairwise
merging.  This is the merge `__gnu_parallel::sort` performs and the one
SupMR swaps in for the Phoenix++ merge phase.

The ``parallelism`` argument controls partitioning (p output ranges).  An
optional executor actually overlaps the range merges; under CPython's GIL
that buys little for pure-Python comparisons, so by default ranges are
merged sequentially — the algorithmic structure (and the simulated-time
behaviour modelled in :mod:`repro.simrt`) is what the paper's result rests
on, as documented in DESIGN.md.
"""

from __future__ import annotations

from concurrent.futures import Executor
from typing import Any, Callable, Sequence

from repro.sortlib.kway import kway_merge
from repro.sortlib.multiway_partition import multiway_partition

KeyFn = Callable[[Any], Any]


def _identity(x: Any) -> Any:
    return x


def pway_merge(
    runs: Sequence[Sequence[Any]],
    parallelism: int,
    key: KeyFn | None = None,
    executor: Executor | None = None,
) -> list[Any]:
    """Merge sorted ``runs`` with ``parallelism`` single-pass workers.

    Equivalent output to :func:`repro.sortlib.kway.kway_merge` (including
    tie order); raises ``ValueError`` for non-positive parallelism.
    ``key=None`` means natural item order and lets each range merge take
    the ``heapq.merge`` fast path.
    """
    if parallelism < 1:
        raise ValueError("parallelism must be >= 1")
    runs = [r for r in runs]
    total = sum(len(r) for r in runs)
    if total == 0:
        return []
    parallelism = min(parallelism, total)
    bounds = multiway_partition(runs, parallelism, key or _identity)

    def merge_range(t: int) -> list[Any]:
        slices = [
            runs[j][bounds[t][j]: bounds[t + 1][j]] for j in range(len(runs))
        ]
        return kway_merge(slices, key)

    if executor is None:
        pieces = [merge_range(t) for t in range(parallelism)]
    else:
        pieces = list(executor.map(merge_range, range(parallelism)))

    out: list[Any] = []
    for piece in pieces:
        out.extend(piece)
    return out
