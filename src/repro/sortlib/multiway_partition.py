"""Multisequence selection: split k sorted runs at a global rank.

This is the enabling primitive of Salzberg-style p-way parallel merging:
to let p workers merge disjoint *output ranges* with no synchronization,
we must find, for a global rank r, per-run cut indices ``i_j`` such that

* ``sum(i_j) == r``, and
* every element left of a cut sorts <= every element right of any cut
  (ties broken by run index, matching k-way merge emission order).

The algorithm binary-searches on pivot values drawn from the runs: each
step picks the midpoint of the largest active range, ranks it globally
with bisection, and discards half of every active range.  Complexity is
O(k * log(max run length) * log(total)) comparisons — negligible next to
the merge itself.
"""

from __future__ import annotations

import bisect
from typing import Any, Callable, Sequence

KeyFn = Callable[[Any], Any]


def _identity(x: Any) -> Any:
    return x


def multiway_select(
    runs: Sequence[Sequence[Any]], rank: int, key: KeyFn = _identity
) -> list[int]:
    """Cut indices ``i_j`` (one per run) for global tie-broken ``rank``.

    ``rank`` counts elements in the left part; 0 cuts before everything,
    ``total`` after everything.  Ties at the cut value go to the left part
    from lower-index runs first (k-way merge order).
    """
    k = len(runs)
    total = sum(len(r) for r in runs)
    if not 0 <= rank <= total:
        raise ValueError(f"rank {rank} out of range [0, {total}]")
    keys: list[list[Any]] = [[key(x) for x in run] for run in runs]
    lo = [0] * k
    hi = [len(r) for r in runs]

    while True:
        if sum(lo) == rank:
            return lo
        if sum(hi) == rank:
            return hi
        # Pick a pivot from the run with the widest active window.
        widest = max(range(k), key=lambda j: hi[j] - lo[j])
        if hi[widest] - lo[widest] == 0:
            raise AssertionError("selection failed to converge")  # pragma: no cover
        mid = (lo[widest] + hi[widest]) // 2
        pivot = keys[widest][mid]
        rank_lt = sum(bisect.bisect_left(kj, pivot) for kj in keys)
        rank_le = sum(bisect.bisect_right(kj, pivot) for kj in keys)
        if rank <= rank_lt:
            for j in range(k):
                hi[j] = min(hi[j], bisect.bisect_left(keys[j], pivot))
                lo[j] = min(lo[j], hi[j])
        elif rank >= rank_le:
            for j in range(k):
                lo[j] = max(lo[j], bisect.bisect_right(keys[j], pivot))
                hi[j] = max(hi[j], lo[j])
        else:
            # The cut lands inside the pivot's tie group: take all
            # elements < pivot, then fill the remainder with ties from
            # lower-index runs first (matches k-way emission order).
            cuts = [bisect.bisect_left(kj, pivot) for kj in keys]
            need = rank - rank_lt
            for j in range(k):
                ties = bisect.bisect_right(keys[j], pivot) - cuts[j]
                take = min(ties, need)
                cuts[j] += take
                need -= take
                if need == 0:
                    break
            return cuts


def multiway_partition(
    runs: Sequence[Sequence[Any]], parts: int, key: KeyFn = _identity
) -> list[list[int]]:
    """Cut points dividing k runs into ``parts`` balanced output ranges.

    Returns ``parts + 1`` cut vectors; range ``t`` of the output is the
    per-run slices ``runs[j][cuts[t][j]:cuts[t+1][j]]``.  Output ranges
    differ in size by at most one element.
    """
    if parts < 1:
        raise ValueError("parts must be >= 1")
    total = sum(len(r) for r in runs)
    boundaries: list[list[int]] = [[0] * len(runs)]
    for t in range(1, parts):
        boundaries.append(multiway_select(runs, (t * total) // parts, key))
    boundaries.append([len(r) for r in runs])
    return boundaries
