"""Heap-based k-way merge of sorted runs.

One output pass over all input items with an O(log k) tournament per item.
This is the sequential core that each p-way merge worker runs on its
assigned output range, and — because it accepts **lazy iterators**, not
just materialized lists — the streaming engine the out-of-core spill
subsystem drives run files through without loading them fully.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, Iterator, Sequence

KeyFn = Callable[[Any], Any]


def _identity(x: Any) -> Any:
    return x


def kway_merge(
    runs: Sequence[Iterable[Any]], key: KeyFn | None = None
) -> list[Any]:
    """Merge k sorted runs into one sorted list in a single pass.

    Runs may be any iterables (lists, generators, file-backed readers);
    each is consumed exactly once.  Stable across runs: ties are emitted
    in run order (run 0 first), which matches the guarantee of repeated
    stable 2-way merging and lets tests compare the two algorithms
    item-for-item.
    """
    return list(iter_kway_merge(runs, key))


def iter_kway_merge(
    runs: Sequence[Iterable[Any]], key: KeyFn | None = None
) -> Iterator[Any]:
    """Streaming form of :func:`kway_merge`: O(k) live items in memory.

    Only one item per run is buffered, so merging k lazily-read runs
    (e.g. spill run files) never materializes them.

    With ``key=None`` (natural item order) the merge delegates straight
    to :func:`heapq.merge`, whose tight loop skips the per-item tuple
    decoration entirely — ties still resolve in run order, as
    ``heapq.merge`` is stable across its input iterables.  With a key
    function, entries are decorated **once** per item as ``(sort_key,
    run_index, item, iterator)`` — the key is never recomputed during
    heap sifting, and the unique run index breaks every tie before
    ``item`` would be compared, so items themselves never need to be
    orderable.
    """
    if key is None:
        yield from heapq.merge(*runs)
        return
    heap: list[tuple[Any, int, Any, Iterator[Any]]] = []
    for run_idx, run in enumerate(runs):
        it = iter(run)
        for first in it:
            heap.append((key(first), run_idx, first, it))
            break
    heapq.heapify(heap)
    while heap:
        _k, run_idx, item, it = heap[0]
        yield item
        for nxt in it:
            heapq.heapreplace(heap, (key(nxt), run_idx, nxt, it))
            break
        else:
            heapq.heappop(heap)


def merged_length(runs: Iterable[Sequence[Any]]) -> int:
    """Total output length a merge of ``runs`` will produce.

    Requires sized runs (``len()``); lazy iterators have no cheap
    length, so streaming callers count as they consume instead.
    """
    return sum(len(r) for r in runs)
