"""Heap-based k-way merge of sorted runs.

One output pass over all input items with an O(log k) tournament per item.
This is the sequential core that each p-way merge worker runs on its
assigned output range.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, Iterator, Sequence

KeyFn = Callable[[Any], Any]


def _identity(x: Any) -> Any:
    return x


def kway_merge(
    runs: Sequence[Sequence[Any]], key: KeyFn = _identity
) -> list[Any]:
    """Merge k sorted runs into one sorted list in a single pass.

    Stable across runs: ties are emitted in run order (run 0 first), which
    matches the guarantee of repeated stable 2-way merging and lets tests
    compare the two algorithms item-for-item.
    """
    return list(iter_kway_merge(runs, key))


def iter_kway_merge(
    runs: Sequence[Sequence[Any]], key: KeyFn = _identity
) -> Iterator[Any]:
    """Streaming form of :func:`kway_merge`."""
    heap: list[tuple[Any, int, int]] = []
    for run_idx, run in enumerate(runs):
        if len(run) > 0:
            heap.append((key(run[0]), run_idx, 0))
    heapq.heapify(heap)
    while heap:
        k, run_idx, pos = heapq.heappop(heap)
        run = runs[run_idx]
        yield run[pos]
        pos += 1
        if pos < len(run):
            heapq.heappush(heap, (key(run[pos]), run_idx, pos))


def merged_length(runs: Iterable[Sequence[Any]]) -> int:
    """Total output length a merge of ``runs`` will produce."""
    return sum(len(r) for r in runs)
