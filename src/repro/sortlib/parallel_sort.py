"""Parallel multiway mergesort — the ``__gnu_parallel::sort`` equivalent.

Structure (exactly what OpenMP's sort does, and what SupMR calls after
disabling the Phoenix++ runtime sort):

1. split the input into p nearly-equal blocks;
2. sort each block independently (these are the "many small lists sorted
   in parallel" at the start of the paper's merge-phase trace);
3. merge the p sorted blocks with a single p-way merge pass.

The result is stable for equal keys (block order is preserved by the tie
rules of the p-way merge).
"""

from __future__ import annotations

from concurrent.futures import Executor
from typing import Any, Callable, Sequence

from repro.sortlib.pway import pway_merge

KeyFn = Callable[[Any], Any]


def _identity(x: Any) -> Any:
    return x


def split_blocks(items: Sequence[Any], parts: int) -> list[list[Any]]:
    """Split ``items`` into ``parts`` contiguous, nearly equal blocks."""
    if parts < 1:
        raise ValueError("parts must be >= 1")
    n = len(items)
    blocks: list[list[Any]] = []
    start = 0
    for t in range(parts):
        end = ((t + 1) * n) // parts
        blocks.append(list(items[start:end]))
        start = end
    return blocks


def parallel_sort(
    items: Sequence[Any],
    parallelism: int,
    key: KeyFn | None = None,
    executor: Executor | None = None,
) -> list[Any]:
    """Sort ``items`` with p-block sort + single p-way merge.

    Matches ``sorted(items, key=key)`` (stable) for any input;
    ``key=None`` sorts by natural order and takes the no-key merge fast
    path.  An ``executor`` (thread pool or
    :class:`~repro.parallel.fork_pool.ForkExecutor`) overlaps both the
    block sorts and the range merges.
    """
    if parallelism < 1:
        raise ValueError("parallelism must be >= 1")
    if len(items) <= 1:
        return list(items)
    blocks = split_blocks(items, min(parallelism, len(items)))

    def sort_block(block: list[Any]) -> list[Any]:
        block.sort(key=key)
        return block

    if executor is None:
        runs = [sort_block(b) for b in blocks]
    else:
        runs = list(executor.map(sort_block, blocks))
    return pway_merge(runs, parallelism, key=key, executor=executor)
