"""Sorting and merging algorithms.

The paper contrasts two merge strategies for the MapReduce merge phase:

* **Iterative 2-way merge rounds** (`repro.sortlib.merge_sort`) — the
  original Phoenix++ behaviour: sorted runs are merged pairwise, halving
  the number of active threads each round and re-scanning every key once
  per round.  This is the "step curve" bottleneck in the paper's Fig. 1.
* **p-way merge** (`repro.sortlib.pway`) — Salzberg's algorithm as used
  by ``__gnu_parallel::sort``: all N runs are merged in a *single pass*
  by p processors, each producing a disjoint range of the output found by
  multisequence selection (`repro.sortlib.multiway_partition`).

`repro.sortlib.parallel_sort` composes block sorting with the p-way merge
into a drop-in equivalent of OpenMP's parallel sort, and
`repro.sortlib.samplesort` provides the classic alternative as an
extension/ablation.
"""

from repro.sortlib.kway import kway_merge
from repro.sortlib.merge_sort import (
    MergeRound,
    merge_pair,
    merge_rounds_schedule,
    pairwise_merge_sort,
)
from repro.sortlib.multiway_partition import multiway_partition, multiway_select
from repro.sortlib.parallel_sort import parallel_sort
from repro.sortlib.pway import pway_merge
from repro.sortlib.samplesort import sample_sort

__all__ = [
    "merge_pair",
    "pairwise_merge_sort",
    "merge_rounds_schedule",
    "MergeRound",
    "kway_merge",
    "multiway_select",
    "multiway_partition",
    "pway_merge",
    "parallel_sort",
    "sample_sort",
]
