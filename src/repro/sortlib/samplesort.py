"""Sample sort — ablation alternative to multiway mergesort.

Included because the paper's merge discussion ("scale-out Hadoop can be
modified to use custom sort functions") invites comparing single-pass
parallel sorts.  Sample sort picks p-1 splitters from a random sample,
buckets the input, and sorts buckets independently; unlike multiway
mergesort its bucket sizes are only *probabilistically* balanced, which
the ablation bench quantifies.
"""

from __future__ import annotations

import bisect
import random
from typing import Any, Callable, Sequence

KeyFn = Callable[[Any], Any]


def _identity(x: Any) -> Any:
    return x


def choose_splitters(
    items: Sequence[Any],
    parts: int,
    key: KeyFn = _identity,
    oversample: int = 8,
    rng: random.Random | None = None,
) -> list[Any]:
    """p-1 splitter *keys* from an oversampled random sample."""
    if parts < 1:
        raise ValueError("parts must be >= 1")
    if parts == 1 or not items:
        return []
    rng = rng or random.Random(0x5A17)
    sample_size = min(len(items), parts * oversample)
    sample = sorted((key(x) for x in rng.sample(list(items), sample_size)))
    return [sample[(t * sample_size) // parts] for t in range(1, parts)]


def sample_sort(
    items: Sequence[Any],
    parallelism: int,
    key: KeyFn = _identity,
    rng: random.Random | None = None,
) -> list[Any]:
    """Sort via splitter bucketing; equals ``sorted(items, key=key)``.

    Not stable across buckets for keys equal to a splitter; tests compare
    key order only (the MapReduce merge phase orders by key).
    """
    if parallelism < 1:
        raise ValueError("parallelism must be >= 1")
    if len(items) <= 1:
        return list(items)
    splitters = choose_splitters(items, parallelism, key, rng=rng)
    buckets: list[list[Any]] = [[] for _ in range(len(splitters) + 1)]
    for x in items:
        buckets[bisect.bisect_right(splitters, key(x))].append(x)
    out: list[Any] = []
    for bucket in buckets:
        bucket.sort(key=key)
        out.extend(bucket)
    return out


def bucket_sizes(
    items: Sequence[Any],
    parallelism: int,
    key: KeyFn = _identity,
    rng: random.Random | None = None,
) -> list[int]:
    """Bucket occupancy for the ablation bench (load-balance metric)."""
    splitters = choose_splitters(items, parallelism, key, rng=rng)
    sizes = [0] * (len(splitters) + 1)
    for x in items:
        sizes[bisect.bisect_right(splitters, key(x))] += 1
    return sizes
