"""Iterative pairwise (2-way) merging — the Phoenix++ baseline.

Given N sorted runs, the baseline merges them pairwise: round 1 produces
ceil(N/2) runs, round 2 ceil(N/4), and so on until one remains.  Every
round re-scans (almost) every key, so the total work is O(total * rounds)
comparisons — the inefficiency the paper's merge optimization removes.

:func:`merge_rounds_schedule` exposes the round structure (how many
merges, how many bytes scanned, how many workers can be active) without
touching data; the simulated runtime uses it to model the step-down
utilization curve, and tests use it to check the cost accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

KeyFn = Callable[[Any], Any]


def _identity(x: Any) -> Any:
    return x


def merge_pair(
    left: Sequence[Any], right: Sequence[Any], key: KeyFn = _identity
) -> list[Any]:
    """Merge two sorted sequences into a new sorted list (stable: ties
    prefer the left run, matching list-merge semantics)."""
    out: list[Any] = []
    i = j = 0
    nl, nr = len(left), len(right)
    while i < nl and j < nr:
        if key(right[j]) < key(left[i]):
            out.append(right[j])
            j += 1
        else:
            out.append(left[i])
            i += 1
    if i < nl:
        out.extend(left[i:])
    if j < nr:
        out.extend(right[j:])
    return out


def pairwise_merge_sort(
    runs: Sequence[Sequence[Any]], key: KeyFn = _identity
) -> tuple[list[Any], int]:
    """Merge sorted ``runs`` with iterative 2-way rounds.

    Returns ``(merged, rounds)`` where ``rounds`` is the number of merge
    rounds executed (0 for zero or one input run).
    """
    current: list[list[Any]] = [list(r) for r in runs]
    rounds = 0
    while len(current) > 1:
        rounds += 1
        nxt: list[list[Any]] = []
        for i in range(0, len(current) - 1, 2):
            nxt.append(merge_pair(current[i], current[i + 1], key))
        if len(current) % 2 == 1:
            nxt.append(current[-1])
        current = nxt
    return (current[0] if current else []), rounds


@dataclass(frozen=True)
class MergeRound:
    """Cost-model view of one pairwise round."""

    index: int
    merges: int  # concurrent 2-way merges => usable workers
    runs_in: int
    items_scanned: int  # items touched this round (items in merged pairs)


def merge_rounds_schedule(run_lengths: Sequence[int]) -> list[MergeRound]:
    """The round-by-round schedule pairwise merging would follow.

    Only lengths are needed: each round pairs adjacent runs; a leftover
    odd run is carried to the next round unscanned.
    """
    lengths = [int(n) for n in run_lengths if n >= 0]
    if any(n < 0 for n in run_lengths):
        raise ValueError("run lengths must be non-negative")
    schedule: list[MergeRound] = []
    idx = 0
    while len(lengths) > 1:
        idx += 1
        merges = len(lengths) // 2
        scanned = sum(lengths[: 2 * merges])
        nxt = [lengths[i] + lengths[i + 1] for i in range(0, 2 * merges, 2)]
        if len(lengths) % 2 == 1:
            nxt.append(lengths[-1])
        schedule.append(
            MergeRound(index=idx, merges=merges, runs_in=len(lengths),
                       items_scanned=scanned)
        )
        lengths = nxt
    return schedule


def total_items_scanned(run_lengths: Sequence[int]) -> int:
    """Total item touches across all pairwise rounds (the re-scan cost)."""
    return sum(r.items_scanned for r in merge_rounds_schedule(run_lengths))
