"""Grep — emit lines matching a pattern, with match counts.

A map-dominated job with near-empty reduce/merge phases, useful for the
"benefit depends on phase complexity" ablation (Conclusion 1): grep
behaves like word count during ingest but produces far fewer pairs.
"""

from __future__ import annotations

import re
from collections import Counter
from pathlib import Path
from typing import Hashable, Iterable, Sequence

from repro.containers import HashContainer, SumCombiner
from repro.core.job import JobSpec, MapContext
from repro.io.records import WholeLineCodec

_CODEC = WholeLineCodec()


def make_grep_job(
    inputs: Sequence[str | Path],
    pattern: bytes,
    name: str = "grep",
) -> JobSpec:
    """Count occurrences of each matching line.

    ``pattern`` is a bytes regex; keys are the matching lines themselves.
    """
    compiled = re.compile(pattern)

    def map_fn(ctx: MapContext) -> None:
        for line in _CODEC.iter_lines(ctx.data):
            if compiled.search(line):
                ctx.emit(line, 1)

    def reduce_fn(
        key: Hashable, values: Sequence[int]
    ) -> Iterable[tuple[Hashable, int]]:
        yield (key, sum(values))

    return JobSpec(
        name=name,
        inputs=tuple(Path(p) for p in inputs),
        map_fn=map_fn,
        reduce_fn=reduce_fn,
        container_factory=lambda: HashContainer(SumCombiner()),
        codec=_CODEC,
    )


def reference_grep(
    inputs: Sequence[str | Path], pattern: bytes
) -> dict[bytes, int]:
    """Naive grep counts for verification."""
    compiled = re.compile(pattern)
    counts: Counter[bytes] = Counter()
    for path in inputs:
        for line in _CODEC.iter_lines(Path(path).read_bytes()):
            if compiled.search(line):
                counts[line] += 1
    return dict(counts)
