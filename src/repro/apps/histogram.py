"""Histogram — bucket numeric samples (Phoenix's histogram, numeric form).

Input lines are ASCII numbers; map buckets each sample into one of
``n_buckets`` uniform bins over ``[lo, hi)`` and emits ``(bucket, 1)``.
A tiny intermediate set (like word count, but with integer keys), so it
stresses the combiner path with a different key type.
"""

from __future__ import annotations

from pathlib import Path
from typing import Hashable, Iterable, Sequence

from repro.containers import HashContainer, SumCombiner
from repro.core.job import JobSpec, MapContext
from repro.errors import ConfigError
from repro.io.records import WholeLineCodec

_CODEC = WholeLineCodec()


def bucket_of(value: float, lo: float, hi: float, n_buckets: int) -> int:
    """Uniform bin index, clamping out-of-range samples to the edge bins."""
    if value < lo:
        return 0
    if value >= hi:
        return n_buckets - 1
    return int((value - lo) / (hi - lo) * n_buckets)


def make_histogram_job(
    inputs: Sequence[str | Path],
    lo: float,
    hi: float,
    n_buckets: int = 16,
    name: str = "histogram",
    container: str = "hash",
) -> JobSpec:
    """``container`` selects "hash" (default) or "fixed" — the
    fixed-width array container, histogram's natural Phoenix++ choice
    (dense small integer keys, no hashing or lookups)."""
    if n_buckets < 1:
        raise ConfigError("n_buckets must be >= 1")
    if not lo < hi:
        raise ConfigError("need lo < hi")
    if container not in ("hash", "fixed"):
        raise ConfigError(f"unknown container choice {container!r}")

    def map_fn(ctx: MapContext) -> None:
        for line in _CODEC.iter_lines(ctx.data):
            stripped = line.strip()
            if stripped:
                ctx.emit(bucket_of(float(stripped), lo, hi, n_buckets), 1)

    def reduce_fn(
        key: Hashable, values: Sequence[int]
    ) -> Iterable[tuple[Hashable, int]]:
        yield (key, sum(values))

    if container == "fixed":
        from repro.containers.fixed_array import FixedArrayContainer

        factory = lambda: FixedArrayContainer(n_buckets)  # noqa: E731
    else:
        factory = lambda: HashContainer(SumCombiner())  # noqa: E731
    return JobSpec(
        name=name,
        inputs=tuple(Path(p) for p in inputs),
        map_fn=map_fn,
        reduce_fn=reduce_fn,
        container_factory=factory,
        codec=_CODEC,
    )


def reference_histogram(
    inputs: Sequence[str | Path], lo: float, hi: float, n_buckets: int = 16
) -> dict[int, int]:
    """Naive single-pass histogram for verification."""
    counts: dict[int, int] = {}
    for path in inputs:
        for line in _CODEC.iter_lines(Path(path).read_bytes()):
            stripped = line.strip()
            if stripped:
                b = bucket_of(float(stripped), lo, hi, n_buckets)
                counts[b] = counts.get(b, 0) + 1
    return counts
