r"""Inverted index — word -> sorted list of documents containing it.

The many-small-files workload shape (intra-file chunking's natural
customer).  Because chunk coalescing erases file boundaries, documents
self-identify: each input line is ``<doc-id>\t<text>``.  Map emits
``(word, doc_id)``; reduce dedups and sorts the posting list.
"""

from __future__ import annotations

from pathlib import Path
from typing import Hashable, Iterable, Sequence

from repro.containers import HashContainer, ListCombiner
from repro.core.job import JobSpec, MapContext
from repro.errors import WorkloadError
from repro.io.records import WholeLineCodec

_CODEC = WholeLineCodec()


def index_map(ctx: MapContext) -> None:
    r"""Parse ``doc\tword word ...`` lines; emit (word, doc)."""
    for line in _CODEC.iter_lines(ctx.data):
        if not line.strip():
            continue
        doc, _tab, text = line.partition(b"\t")
        if not _tab:
            raise WorkloadError(f"index line missing doc id: {line[:40]!r}")
        for word in text.split():
            ctx.emit(word, doc)


def index_reduce(
    key: Hashable, values: Sequence[bytes]
) -> Iterable[tuple[Hashable, tuple[bytes, ...]]]:
    """Posting list: sorted, de-duplicated doc ids."""
    yield (key, tuple(sorted(set(values))))


def make_inverted_index_job(
    inputs: Sequence[str | Path], name: str = "inverted-index"
) -> JobSpec:
    """An inverted-index job over self-identifying line files."""
    return JobSpec(
        name=name,
        inputs=tuple(Path(p) for p in inputs),
        map_fn=index_map,
        reduce_fn=index_reduce,
        container_factory=lambda: HashContainer(ListCombiner()),
        codec=_CODEC,
    )


def reference_index(
    inputs: Sequence[str | Path],
) -> dict[bytes, tuple[bytes, ...]]:
    """Naive posting-list construction for verification."""
    postings: dict[bytes, set[bytes]] = {}
    for path in inputs:
        for line in _CODEC.iter_lines(Path(path).read_bytes()):
            if not line.strip():
                continue
            doc, _tab, text = line.partition(b"\t")
            for word in text.split():
                postings.setdefault(word, set()).add(doc)
    return {w: tuple(sorted(docs)) for w, docs in postings.items()}


def write_index_corpus(
    directory: str | Path,
    docs: dict[str, str],
) -> list[Path]:
    r"""Write ``doc-id -> text`` as one ``<id>\t<line>`` file per doc."""
    out_dir = Path(directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    paths: list[Path] = []
    for doc_id in sorted(docs):
        lines = [
            f"{doc_id}\t{line}".encode("utf-8")
            for line in docs[doc_id].splitlines()
            if line.strip()
        ]
        path = out_dir / f"{doc_id}.txt"
        path.write_bytes(b"\n".join(lines) + b"\n" if lines else b"")
        paths.append(path)
    return paths
