"""String match — count occurrences of a fixed set of needle strings.

The Phoenix suite's string_match: scan the input for each needle and
count hits.  Map-heavy with a tiny intermediate set (one key per needle),
so its pipeline benefit resembles word count's while its merge phase is
effectively free — a useful point on the Conclusion 1 spectrum.
"""

from __future__ import annotations

from pathlib import Path
from typing import Hashable, Iterable, Sequence

from repro.containers import HashContainer, SumCombiner
from repro.core.job import JobSpec, MapContext
from repro.errors import ConfigError
from repro.io.records import WholeLineCodec

_CODEC = WholeLineCodec()


def count_occurrences(haystack: bytes, needle: bytes) -> int:
    """Non-overlapping occurrence count (bytes.count semantics)."""
    return haystack.count(needle)


def make_string_match_job(
    inputs: Sequence[str | Path],
    needles: Sequence[bytes],
    name: str = "string-match",
) -> JobSpec:
    """Count occurrences of each needle across the input."""
    if not needles:
        raise ConfigError("string match needs at least one needle")
    needles = tuple(needles)

    def map_fn(ctx: MapContext) -> None:
        for line in _CODEC.iter_lines(ctx.data):
            for needle in needles:
                hits = count_occurrences(line, needle)
                if hits:
                    ctx.emit(needle, hits)

    def reduce_fn(
        key: Hashable, values: Sequence[int]
    ) -> Iterable[tuple[Hashable, int]]:
        yield (key, sum(values))

    return JobSpec(
        name=name,
        inputs=tuple(Path(p) for p in inputs),
        map_fn=map_fn,
        reduce_fn=reduce_fn,
        container_factory=lambda: HashContainer(SumCombiner()),
        codec=_CODEC,
    )


def reference_match(
    inputs: Sequence[str | Path], needles: Sequence[bytes]
) -> dict[bytes, int]:
    """Naive needle counting for verification."""
    counts: dict[bytes, int] = {}
    for path in inputs:
        for line in _CODEC.iter_lines(Path(path).read_bytes()):
            for needle in needles:
                hits = count_occurrences(line, needle)
                if hits:
                    counts[needle] = counts.get(needle, 0) + hits
    return counts
