r"""Sort — the paper's merge-bottleneck benchmark (60 GB Terasort data).

Map parses ``\r\n``-terminated records into (key, payload) pairs and
emits into the **unlocked array container** — sort has unique keys, so a
hash container would pay a pointless lookup per record (section V.B).
Reduce is the identity; the merge phase does the actual ordering, which
is why the merge algorithm choice (pairwise rounds vs p-way) dominates
this job's time.
"""

from __future__ import annotations

from pathlib import Path
from typing import Hashable, Iterable, Sequence

from repro.containers import ArrayContainer
from repro.core.job import JobSpec, MapContext
from repro.io.records import TeraRecordCodec

_CODEC = TeraRecordCodec()


def sort_map(ctx: MapContext) -> None:
    """Emit (key, payload) per record; no aggregation."""
    for key, payload in _CODEC.iter_pairs(ctx.data):
        ctx.emit(key, payload)


def sort_reduce(
    key: Hashable, values: Sequence[bytes]
) -> Iterable[tuple[Hashable, bytes]]:
    """Identity: every record passes through."""
    for value in values:
        yield (key, value)


def make_sort_job(
    inputs: Sequence[str | Path],
    name: str = "sort",
    codec: TeraRecordCodec | None = None,
) -> JobSpec:
    """A Terasort-style sort job over one big record file."""
    codec = codec or _CODEC

    def map_fn(ctx: MapContext) -> None:
        for key, payload in codec.iter_pairs(ctx.data):
            ctx.emit(key, payload)

    return JobSpec(
        name=name,
        inputs=tuple(Path(p) for p in inputs),
        map_fn=map_fn,
        reduce_fn=sort_reduce,
        container_factory=ArrayContainer,
        codec=codec,
    )


def reference_sort(
    inputs: Sequence[str | Path], codec: TeraRecordCodec | None = None
) -> list[tuple[bytes, bytes]]:
    """Naive in-memory sort for verification (stable by key)."""
    codec = codec or _CODEC
    pairs: list[tuple[bytes, bytes]] = []
    for path in inputs:
        pairs.extend(codec.iter_pairs(Path(path).read_bytes()))
    pairs.sort(key=lambda kv: kv[0])
    return pairs
