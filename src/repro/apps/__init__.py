"""Ready-made MapReduce applications.

Word count and sort are the paper's two benchmarks ("these applications
represent different spectrums of the application space"); grep, string
match, histogram, inverted index, k-means and linear regression round out
the classic Phoenix suite so the runtime generalizes beyond the paper's
pair.  Each module exposes ``make_job(...) -> JobSpec`` plus a naive
reference implementation used by tests to verify output.
"""

from repro.apps.grep import make_grep_job, reference_grep
from repro.apps.histogram import make_histogram_job, reference_histogram
from repro.apps.inverted_index import make_inverted_index_job, reference_index
from repro.apps.kmeans import KMeansResult, run_kmeans
from repro.apps.linear_regression import (
    make_linear_regression_job,
    solve_regression,
)
from repro.apps.matrix_multiply import make_matmul_job, result_matrix, write_matrix_rows
from repro.apps.pca import PCAResult, run_pca
from repro.apps.sortapp import make_sort_job, reference_sort
from repro.apps.string_match import make_string_match_job, reference_match
from repro.apps.wordcount import make_wordcount_job, reference_wordcount

__all__ = [
    "make_wordcount_job",
    "reference_wordcount",
    "make_sort_job",
    "make_matmul_job",
    "result_matrix",
    "write_matrix_rows",
    "reference_sort",
    "make_grep_job",
    "reference_grep",
    "make_histogram_job",
    "reference_histogram",
    "make_inverted_index_job",
    "reference_index",
    "make_string_match_job",
    "reference_match",
    "make_linear_regression_job",
    "solve_regression",
    "run_kmeans",
    "run_pca",
    "PCAResult",
    "KMeansResult",
]
