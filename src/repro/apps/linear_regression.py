"""Linear regression — least-squares fit via MapReduce partial sums.

Phoenix's linear_regression: map accumulates the five sufficient
statistics (n, Σx, Σy, Σxx, Σxy) over its split and emits one partial
per statistic; reduce folds them.  ``solve_regression`` turns the job
output into (slope, intercept).  Input lines are ``x y`` pairs.
"""

from __future__ import annotations

from pathlib import Path
from typing import Hashable, Iterable, Sequence

from repro.containers import HashContainer, SumCombiner
from repro.core.job import JobSpec, MapContext
from repro.errors import WorkloadError
from repro.io.records import WholeLineCodec

_CODEC = WholeLineCodec()

_STATS = ("n", "sx", "sy", "sxx", "sxy")


def regression_map(ctx: MapContext) -> None:
    """Accumulate sufficient statistics locally, emit once per split."""
    n = 0
    sx = sy = sxx = sxy = 0.0
    for line in _CODEC.iter_lines(ctx.data):
        stripped = line.strip()
        if not stripped:
            continue
        parts = stripped.split()
        if len(parts) != 2:
            raise WorkloadError(f"regression line not 'x y': {line[:40]!r}")
        x, y = float(parts[0]), float(parts[1])
        n += 1
        sx += x
        sy += y
        sxx += x * x
        sxy += x * y
    if n:
        ctx.emit("n", float(n))
        ctx.emit("sx", sx)
        ctx.emit("sy", sy)
        ctx.emit("sxx", sxx)
        ctx.emit("sxy", sxy)


def regression_reduce(
    key: Hashable, values: Sequence[float]
) -> Iterable[tuple[Hashable, float]]:
    """Fold partial statistics by summation."""
    yield (key, sum(values))


def make_linear_regression_job(
    inputs: Sequence[str | Path], name: str = "linear-regression"
) -> JobSpec:
    """A least-squares-fit job over 'x y' line files."""
    return JobSpec(
        name=name,
        inputs=tuple(Path(p) for p in inputs),
        map_fn=regression_map,
        reduce_fn=regression_reduce,
        container_factory=lambda: HashContainer(SumCombiner()),
        codec=_CODEC,
    )


def solve_regression(output: list[tuple[Hashable, float]]) -> tuple[float, float]:
    """(slope, intercept) from the job's output pairs."""
    stats = dict(output)
    missing = [s for s in _STATS if s not in stats]
    if missing:
        raise WorkloadError(f"regression output missing stats: {missing}")
    n, sx, sy, sxx, sxy = (stats[s] for s in _STATS)
    denom = n * sxx - sx * sx
    if denom == 0:
        raise WorkloadError("degenerate regression input (zero variance in x)")
    slope = (n * sxy - sx * sy) / denom
    intercept = (sy - slope * sx) / n
    return slope, intercept
