"""PCA — the Phoenix suite's two-pass statistical workload.

Principal component analysis over row vectors needs two MapReduce
passes: pass 1 computes the column means, pass 2 the covariance matrix
of the centered data (each map task emits its split's partial
``X_c^T @ X_c`` and row count).  ``run_pca`` chains the passes and
diagonalizes the covariance — a realistic multi-job workload whose
second pass depends on the first's output.

Input format: ``write_matrix_rows``'s ``row_idx v0 v1 ...`` lines.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Hashable, Iterable, Sequence

import numpy as np

from repro.apps.matrix_multiply import parse_row
from repro.containers import HashContainer
from repro.containers.combiners import Combiner
from repro.core.job import JobSpec, MapContext
from repro.core.options import RuntimeOptions
from repro.core.phoenix import PhoenixRuntime
from repro.errors import WorkloadError
from repro.io.records import WholeLineCodec

_CODEC = WholeLineCodec()


class _ArraySumCombiner(Combiner):
    """Componentwise summation of numpy arrays."""

    def initial(self, value: np.ndarray) -> np.ndarray:
        """Copy the first array (later updates mutate the state)."""
        return np.array(value, dtype=float)

    def update(self, state: np.ndarray, value: np.ndarray) -> np.ndarray:
        """Accumulate componentwise."""
        state += value
        return state


def _array_container() -> HashContainer:
    return HashContainer(_ArraySumCombiner())


def make_mean_job(inputs: Sequence[str | Path], name: str = "pca-mean") -> JobSpec:
    """Pass 1: per-split partial column sums and counts."""

    def map_fn(ctx: MapContext) -> None:
        total: np.ndarray | None = None
        count = 0
        for line in _CODEC.iter_lines(ctx.data):
            if not line.strip():
                continue
            _idx, row = parse_row(line)
            total = row if total is None else total + row
            count += 1
        if count:
            ctx.emit("sum", total)
            ctx.emit("count", np.array([float(count)]))

    def reduce_fn(key: Hashable, values) -> Iterable[tuple[Hashable, tuple]]:
        acc = values[0]
        for v in values[1:]:
            acc = acc + v
        yield (key, tuple(float(x) for x in acc))

    return JobSpec(name=name, inputs=tuple(Path(p) for p in inputs),
                   map_fn=map_fn, reduce_fn=reduce_fn,
                   container_factory=_array_container, codec=_CODEC)


def make_covariance_job(
    inputs: Sequence[str | Path],
    means: np.ndarray,
    name: str = "pca-cov",
) -> JobSpec:
    """Pass 2: partial centered scatter matrices ``X_c^T @ X_c``."""
    mu = np.asarray(means, dtype=float)

    def map_fn(ctx: MapContext) -> None:
        rows = []
        for line in _CODEC.iter_lines(ctx.data):
            if not line.strip():
                continue
            _idx, row = parse_row(line)
            rows.append(row - mu)
        if rows:
            centered = np.array(rows)
            ctx.emit("scatter", centered.T @ centered)
            ctx.emit("count", np.array([[float(len(rows))]]))

    def reduce_fn(key: Hashable, values) -> Iterable[tuple[Hashable, tuple]]:
        acc = values[0]
        for v in values[1:]:
            acc = acc + v
        yield (key, tuple(map(tuple, np.atleast_2d(acc).tolist())))

    return JobSpec(name=name, inputs=tuple(Path(p) for p in inputs),
                   map_fn=map_fn, reduce_fn=reduce_fn,
                   container_factory=_array_container, codec=_CODEC)


@dataclass
class PCAResult:
    """Means, covariance and its eigendecomposition (descending)."""

    means: np.ndarray
    covariance: np.ndarray
    eigenvalues: np.ndarray
    components: np.ndarray  # rows are principal directions

    @property
    def explained_variance_ratio(self) -> np.ndarray:
        """Fraction of total variance per component."""
        total = self.eigenvalues.sum()
        if total <= 0:
            raise WorkloadError("degenerate covariance (zero variance)")
        return self.eigenvalues / total


def run_pca(
    inputs: Sequence[str | Path],
    options: RuntimeOptions | None = None,
) -> PCAResult:
    """Two chained MapReduce passes, then an eigendecomposition."""
    runtime = PhoenixRuntime(options or RuntimeOptions.baseline())

    mean_out = dict(runtime.run(make_mean_job(inputs)).output)
    if "count" not in mean_out or "sum" not in mean_out:
        raise WorkloadError("PCA pass 1 produced no data (empty input?)")
    count = float(mean_out["count"][0])
    means = np.array(mean_out["sum"]) / count

    cov_out = dict(runtime.run(make_covariance_job(inputs, means)).output)
    n = float(np.array(cov_out["count"])[0][0])
    if n < 2:
        raise WorkloadError("PCA needs at least two rows")
    covariance = np.array(cov_out["scatter"]) / (n - 1)

    eigenvalues, eigenvectors = np.linalg.eigh(covariance)
    order = np.argsort(eigenvalues)[::-1]
    return PCAResult(
        means=means,
        covariance=covariance,
        eigenvalues=eigenvalues[order],
        components=eigenvectors[:, order].T,
    )
