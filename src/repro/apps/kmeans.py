"""k-means — iterative MapReduce, exercising the persistent-container
lineage the paper cites (Twister [8]).

Each iteration is one MapReduce job: map assigns every point to its
nearest centroid and emits ``(cluster, (vector, 1))``; the combiner sums
componentwise, so reduce receives per-cluster (sum, count) and produces
new centroids.  ``run_kmeans`` loops until movement falls below ``tol``
or ``max_iters`` elapses — a multi-round workload the scale-up runtime
serves without re-ingesting (points are parsed once per iteration from
the same in-memory chunks in a real deployment; here each iteration is an
independent job, which keeps the example honest about what the runtime
does and does not cache).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path
from typing import Hashable, Iterable, Sequence

from repro.containers.base import Container
from repro.containers.combiners import Combiner
from repro.containers.hash_container import HashContainer
from repro.core.job import JobSpec, MapContext
from repro.core.options import RuntimeOptions
from repro.core.phoenix import PhoenixRuntime
from repro.errors import ConfigError, WorkloadError
from repro.io.records import WholeLineCodec

_CODEC = WholeLineCodec()

Vector = tuple[float, ...]


class _VectorSumCombiner(Combiner):
    """Combine (vector, count) pairs by componentwise sum."""

    def initial(self, value: tuple[Vector, int]):
        return (list(value[0]), value[1])

    def update(self, state, value: tuple[Vector, int]):
        acc, count = state
        vec, n = value
        if len(vec) != len(acc):
            raise WorkloadError("inconsistent point dimensionality")
        for i, x in enumerate(vec):
            acc[i] += x
        return (acc, count + n)

    def finish(self, state):
        return [(tuple(state[0]), state[1])]


def parse_point(line: bytes) -> Vector:
    """Parse a whitespace-separated coordinate line into a vector."""
    return tuple(float(tok) for tok in line.split())


def nearest_centroid(point: Vector, centroids: Sequence[Vector]) -> int:
    """Index of the centroid closest to ``point`` (squared L2)."""
    best, best_d = 0, math.inf
    for idx, c in enumerate(centroids):
        d = sum((a - b) ** 2 for a, b in zip(point, c))
        if d < best_d:
            best, best_d = idx, d
    return best


def make_kmeans_iteration_job(
    inputs: Sequence[str | Path],
    centroids: Sequence[Vector],
    name: str = "kmeans-iter",
) -> JobSpec:
    """One assignment+update iteration as a MapReduce job."""
    centroids = [tuple(c) for c in centroids]

    def map_fn(ctx: MapContext) -> None:
        for line in _CODEC.iter_lines(ctx.data):
            if not line.strip():
                continue
            point = parse_point(line)
            ctx.emit(nearest_centroid(point, centroids), (point, 1))

    def reduce_fn(
        key: Hashable, values: Sequence[tuple[Vector, int]]
    ) -> Iterable[tuple[Hashable, Vector]]:
        dim = len(values[0][0])
        acc = [0.0] * dim
        count = 0
        for vec, n in values:
            for i, x in enumerate(vec):
                acc[i] += x
            count += n
        yield (key, tuple(a / count for a in acc))

    def container() -> Container:
        return HashContainer(_VectorSumCombiner())

    return JobSpec(
        name=name,
        inputs=tuple(Path(p) for p in inputs),
        map_fn=map_fn,
        reduce_fn=reduce_fn,
        container_factory=container,
        codec=_CODEC,
    )


@dataclass
class KMeansResult:
    centroids: list[Vector]
    iterations: int
    converged: bool


def run_kmeans(
    inputs: Sequence[str | Path],
    initial_centroids: Sequence[Vector],
    max_iters: int = 10,
    tol: float = 1e-6,
    options: RuntimeOptions | None = None,
    use_session: bool = False,
) -> KMeansResult:
    """Iterate MapReduce jobs until centroids settle.

    ``use_session=True`` runs iterations through an
    :class:`repro.core.iterative.IterativeSession` (requires a chunked
    ``options``): the input is ingested once and later iterations map
    straight from the in-memory cache — the Twister-style reuse the
    paper's persistent container descends from.
    """
    if max_iters < 1:
        raise ConfigError("max_iters must be >= 1")
    centroids = [tuple(c) for c in initial_centroids]
    if not centroids:
        raise ConfigError("need at least one initial centroid")
    session = None
    if use_session:
        from repro.core.iterative import IterativeSession

        if options is None:
            raise ConfigError("use_session requires chunked RuntimeOptions")
        session = IterativeSession(inputs, _CODEC, options)
        run_one = session.run
    else:
        runtime = PhoenixRuntime(options or RuntimeOptions.baseline())
        run_one = runtime.run
    for iteration in range(1, max_iters + 1):
        job = make_kmeans_iteration_job(inputs, centroids)
        result = run_one(job)
        updated = dict(result.output)
        new_centroids = [
            tuple(updated.get(idx, centroids[idx])) for idx in range(len(centroids))
        ]
        movement = max(
            math.dist(old, new) for old, new in zip(centroids, new_centroids)
        )
        centroids = new_centroids
        if movement <= tol:
            if session is not None:
                session.close()
            return KMeansResult(centroids, iteration, True)
    if session is not None:
        session.close()
    return KMeansResult(centroids, max_iters, False)
