"""Matrix multiply — the Phoenix suite's dense-compute workload.

Phoenix's matrix_multiply hands each map task a block of A's rows to
multiply against the (shared, in-memory) B.  Here A's rows arrive as
input lines (``row_idx v0 v1 ...``), B is captured in the job closure,
map emits ``(row_idx, row @ B)`` and reduce is the identity — the merge
phase orders the product's rows.

A compute-bound map phase with a tiny ingest makes this the far end of
the Conclusion 1 spectrum: the chunk pipeline hides nearly *all* ingest
(the opposite of Fig. 7's link-bound word count).
"""

from __future__ import annotations

from pathlib import Path
from typing import Hashable, Iterable, Sequence

import numpy as np

from repro.containers import ArrayContainer
from repro.core.job import JobSpec, MapContext
from repro.errors import WorkloadError
from repro.io.records import WholeLineCodec

_CODEC = WholeLineCodec()


def write_matrix_rows(path: str | Path, matrix: np.ndarray) -> int:
    """Serialize a 2-D matrix as ``row_idx v0 v1 ...`` lines."""
    if matrix.ndim != 2:
        raise WorkloadError("need a 2-D matrix")
    lines = []
    for idx, row in enumerate(matrix):
        lines.append(
            (str(idx) + " " + " ".join(repr(float(v)) for v in row)).encode()
        )
    data = b"\n".join(lines) + b"\n"
    Path(path).write_bytes(data)
    return len(data)


def parse_row(line: bytes) -> tuple[int, np.ndarray]:
    """Parse a ``row_idx v0 v1 ...`` line into (index, vector)."""
    parts = line.split()
    if len(parts) < 2:
        raise WorkloadError(f"matrix row line too short: {line[:40]!r}")
    return int(parts[0]), np.array([float(p) for p in parts[1:]])


def make_matmul_job(
    inputs: Sequence[str | Path],
    b_matrix: np.ndarray,
    name: str = "matmul",
) -> JobSpec:
    """Compute A @ B where A's rows come from ``inputs``."""
    if b_matrix.ndim != 2:
        raise WorkloadError("B must be 2-D")
    b = np.asarray(b_matrix, dtype=float)

    def map_fn(ctx: MapContext) -> None:
        for line in _CODEC.iter_lines(ctx.data):
            if not line.strip():
                continue
            row_idx, row = parse_row(line)
            if row.shape[0] != b.shape[0]:
                raise WorkloadError(
                    f"row {row_idx} has {row.shape[0]} cols, B has "
                    f"{b.shape[0]} rows"
                )
            ctx.emit(row_idx, tuple(float(x) for x in row @ b))

    def reduce_fn(
        key: Hashable, values: Sequence[tuple[float, ...]]
    ) -> Iterable[tuple[Hashable, tuple[float, ...]]]:
        for value in values:
            yield (key, value)

    return JobSpec(
        name=name,
        inputs=tuple(Path(p) for p in inputs),
        map_fn=map_fn,
        reduce_fn=reduce_fn,
        container_factory=ArrayContainer,
        codec=_CODEC,
    )


def result_matrix(output: list[tuple[int, tuple[float, ...]]]) -> np.ndarray:
    """Assemble the job output back into a dense product matrix."""
    if not output:
        raise WorkloadError("empty matmul output")
    rows = dict(output)
    n = max(rows) + 1
    if len(rows) != n:
        missing = sorted(set(range(n)) - set(rows))
        raise WorkloadError(f"missing product rows: {missing[:5]}")
    return np.array([rows[i] for i in range(n)])
