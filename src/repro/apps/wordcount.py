"""Word count — the paper's ingest-bottleneck benchmark (155 GB).

Map parses its split into words and emits ``(word, 1)``; the hash
container combines on insert (SumCombiner), so reduce only folds partial
sums.  The "more complicated map phase, namely checking a container
before inserting a key" (section VI.B) is exactly this emit path — it is
what makes word count's map long enough to overlap well with ingest.
"""

from __future__ import annotations

from collections import Counter
from pathlib import Path
from typing import Hashable, Iterable, Sequence

from repro.containers import HashContainer, SumCombiner
from repro.core.job import JobSpec, MapContext
from repro.io.records import TextCodec

_CODEC = TextCodec()


def wordcount_map(ctx: MapContext) -> None:
    """Emit (word, 1) for every word in the split."""
    for word in _CODEC.iter_words(ctx.data):
        ctx.emit(word, 1)


def wordcount_reduce(
    key: Hashable, values: Sequence[int]
) -> Iterable[tuple[Hashable, int]]:
    """Fold partial sums (the combiner already did most of the work)."""
    yield (key, sum(values))


def make_wordcount_job(
    inputs: Sequence[str | Path], name: str = "wordcount"
) -> JobSpec:
    """A word count job over one or many text files."""
    return JobSpec(
        name=name,
        inputs=tuple(Path(p) for p in inputs),
        map_fn=wordcount_map,
        reduce_fn=wordcount_reduce,
        container_factory=lambda: HashContainer(SumCombiner()),
        codec=_CODEC,
    )


def reference_wordcount(inputs: Sequence[str | Path]) -> dict[bytes, int]:
    """Naive single-pass counts for verification."""
    counts: Counter[bytes] = Counter()
    for path in inputs:
        data = Path(path).read_bytes()
        counts.update(_CODEC.iter_words(data))
    return dict(counts)
