"""Sharded hash container with on-insert combining.

The Phoenix++ default: each key hashes to a cell; emitting checks the
cell and combines.  Good when the intermediate set is much smaller than
the input (word count), poor for sort-shaped jobs with unique keys — the
per-emit key lookup and the reduce-phase sweep over cells are exactly the
costs the paper calls out in section V.B.

Sharding bounds lock contention: each shard has its own mutex, and a map
task only locks the shard its key hashes to.  (Under CPython the GIL
already serializes bytecode, but the locking discipline keeps the
implementation faithful and safe for alternative interpreters.)
"""

from __future__ import annotations

import threading
from typing import Any, Hashable

from repro.containers.base import (
    Container,
    ContainerDelta,
    ContainerStats,
    Emitter,
)
from repro.containers.combiners import Combiner, ListCombiner
from repro.errors import ContainerError
from repro.util.hashing import stable_hash


class _HashEmitter(Emitter):
    __slots__ = ()

    def emit(self, key: Hashable, value: Any) -> None:
        self.container._insert(key, value)  # type: ignore[attr-defined]


class HashContainer(Container):
    """Thread-safe hash of key -> combined state."""

    def __init__(self, combiner: Combiner | None = None, shards: int = 16) -> None:
        super().__init__()
        if shards < 1:
            raise ContainerError("shards must be >= 1")
        self.combiner = combiner or ListCombiner()
        self._shards = [dict() for _ in range(shards)]
        self._locks = [threading.Lock() for _ in range(shards)]
        self._emits = 0

    def emitter(self, task_id: int) -> Emitter:
        """A task-bound emit handle (shared shards underneath)."""
        return _HashEmitter(self, task_id)

    def _insert(self, key: Hashable, value: Any) -> None:
        self._check_open()
        idx = stable_hash(key) % len(self._shards)
        shard = self._shards[idx]
        with self._locks[idx]:
            self._emits += 1
            if key in shard:
                shard[key] = self.combiner.update(shard[key], value)
            else:
                shard[key] = self.combiner.initial(value)

    def partitions(self, n: int) -> list[list[tuple[Hashable, Any]]]:
        """Reducer partitions by key hash; values are combiner-finished."""
        if n < 1:
            raise ContainerError("need at least one reducer partition")
        if not self.sealed:
            raise ContainerError("partitions() before seal()")
        parts: list[list[tuple[Hashable, Any]]] = [[] for _ in range(n)]
        for shard in self._shards:
            for key, state in shard.items():
                parts[stable_hash(key) % n].append((key, self.combiner.finish(state)))
        return parts

    def drain(self) -> ContainerDelta:
        """Pack combined (key, state) pairs for the parent to absorb.

        States are *pre-finish* combiner states, so absorbing merges
        them with :meth:`~repro.containers.combiners.Combiner.merge`
        instead of re-running ``initial``/``update`` per original emit —
        that is the in-worker-combining payoff: the pipe carries one
        pair per distinct key, not one per emit.
        """
        items = [
            (key, state) for shard in self._shards for key, state in shard.items()
        ]
        return ContainerDelta(kind="hash", emits=self._emits, items=items)

    def absorb(self, delta: ContainerDelta) -> None:
        """Merge a worker's combined pairs into the live shards."""
        if delta.kind != "hash":
            raise ContainerError(
                f"HashContainer cannot absorb a {delta.kind!r} delta"
            )
        self._check_open()
        for key, state in delta.items:
            idx = stable_hash(key) % len(self._shards)
            shard = self._shards[idx]
            with self._locks[idx]:
                if key in shard:
                    shard[key] = self.combiner.merge(shard[key], state)
                else:
                    shard[key] = state
        self._emits += delta.emits

    def stats(self) -> ContainerStats:
        """Emit/key counters across all shards."""
        return ContainerStats(
            emits=self._emits,
            distinct_keys=sum(len(s) for s in self._shards),
            rounds=self.rounds,
        )

    def __len__(self) -> int:
        return sum(len(s) for s in self._shards)
