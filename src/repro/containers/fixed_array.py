"""Fixed-width array container for dense small key spaces.

Phoenix++ ships **three** container families; beyond the hash and the
variable/unlocked arrays this reproduction already has, the third is the
*fixed-width array*: when keys are small dense integers (histogram
buckets, pixel values), the container is just a preallocated array of
combined cells indexed by key — no hashing, no lookups, no locks.

Each map task gets a private NumPy accumulator; ``partitions()`` sums
them (a vectorized reduction) and hands reducers contiguous key ranges,
exactly Phoenix++'s "each reducer operates only on its key range"
discipline.  Only numeric combine-by-sum is supported, which is what the
container family exists for.
"""

from __future__ import annotations

import threading
from typing import Any, Hashable

import numpy as np

from repro.containers.base import (
    Container,
    ContainerDelta,
    ContainerStats,
    Emitter,
)
from repro.errors import ContainerError


class _FixedEmitter(Emitter):
    __slots__ = ("cells", "counter")

    def __init__(self, container: "FixedArrayContainer", task_id: int,
                 cells: np.ndarray) -> None:
        super().__init__(container, task_id)
        self.cells = cells

    def emit(self, key: Hashable, value: Any) -> None:
        container: FixedArrayContainer = self.container  # type: ignore[assignment]
        container._check_open()
        idx = int(key)
        if not 0 <= idx < container.n_keys:
            raise ContainerError(
                f"key {key!r} outside the fixed key range [0, {container.n_keys})"
            )
        self.cells[idx] += value
        container._note_emit()


class FixedArrayContainer(Container):
    """Dense integer keys 0..n_keys-1, combined by summation."""

    def __init__(self, n_keys: int, dtype: str = "int64") -> None:
        super().__init__()
        if n_keys < 1:
            raise ContainerError("n_keys must be >= 1")
        self.n_keys = n_keys
        self.dtype = np.dtype(dtype)
        if self.dtype.kind not in "iuf":
            raise ContainerError("fixed array cells must be numeric")
        self._task_cells: list[np.ndarray] = []
        self._lock = threading.Lock()  # guards registration + emit count
        self._emits = 0

    def _note_emit(self) -> None:
        with self._lock:
            self._emits += 1

    def emitter(self, task_id: int) -> Emitter:
        """A per-task dense accumulator array."""
        cells = np.zeros(self.n_keys, dtype=self.dtype)
        with self._lock:
            self._task_cells.append(cells)
        return _FixedEmitter(self, task_id, cells)

    def combined(self) -> np.ndarray:
        """The summed cell array (available after seal)."""
        if not self.sealed:
            raise ContainerError("combined() before seal()")
        if not self._task_cells:
            return np.zeros(self.n_keys, dtype=self.dtype)
        return np.sum(self._task_cells, axis=0)

    def partitions(self, n: int) -> list[list[tuple[Hashable, Any]]]:
        """Contiguous key ranges; zero cells are skipped (never emitted
        keys produce no reduce calls, matching the other containers)."""
        if n < 1:
            raise ContainerError("need at least one reducer partition")
        total = self.combined()
        parts: list[list[tuple[Hashable, Any]]] = []
        for t in range(n):
            start = (t * self.n_keys) // n
            end = ((t + 1) * self.n_keys) // n
            part = [
                (int(idx), [total[idx].item()])
                for idx in range(start, end)
                if total[idx] != 0
            ]
            parts.append(part)
        return parts

    def drain(self) -> ContainerDelta:
        """Pack the worker's summed cell array (one ndarray, not per-task).

        Summing before transport is the vectorized analog of in-worker
        combining: however many tasks ran in the worker, the pipe
        carries ``n_keys`` cells once.
        """
        if self._task_cells:
            total = np.sum(self._task_cells, axis=0)
        else:
            total = np.zeros(self.n_keys, dtype=self.dtype)
        return ContainerDelta(kind="fixed", emits=self._emits, items=total)

    def absorb(self, delta: ContainerDelta) -> None:
        """Adopt a worker's summed cells as one more task array."""
        if delta.kind != "fixed":
            raise ContainerError(
                f"FixedArrayContainer cannot absorb a {delta.kind!r} delta"
            )
        if len(delta.items) != self.n_keys:
            raise ContainerError(
                f"fixed delta has {len(delta.items)} cells, container has "
                f"{self.n_keys}"
            )
        self._check_open()
        with self._lock:
            self._task_cells.append(np.asarray(delta.items, dtype=self.dtype))
            self._emits += delta.emits

    def stats(self) -> ContainerStats:
        """Emit counters; distinct keys = nonzero cells."""
        nonzero = 0
        if self._task_cells:
            nonzero = int(np.count_nonzero(np.sum(self._task_cells, axis=0)))
        return ContainerStats(emits=self._emits, distinct_keys=nonzero,
                              rounds=self.rounds)

    def __len__(self) -> int:
        return self.stats().distinct_keys
