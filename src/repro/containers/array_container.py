"""Unlocked array container (Phoenix's "unlocked storage").

For sort-shaped applications every key is unique, so combining is wasted
work and key lookups are pure overhead.  Phoenix's answer — adopted by
SupMR for sort (paper section V.B) — is an array all threads write
without synchronization: "each mapper outputs to its key range in the
array and each reducer operates only on its key range".

Here each map task appends to its own private segment (no locks needed —
segments are disjoint by construction), and ``partitions(n)`` hands
reducers contiguous groups of segments.  Persistence across SupMR's many
map rounds falls out naturally: segments accumulate per (round, task).
"""

from __future__ import annotations

import threading
from typing import Any, Hashable

from repro.containers.base import (
    Container,
    ContainerDelta,
    ContainerStats,
    Emitter,
)
from repro.errors import ContainerError


class _SegmentEmitter(Emitter):
    __slots__ = ("segment",)

    def __init__(self, container: "ArrayContainer", task_id: int,
                 segment: list) -> None:
        super().__init__(container, task_id)
        self.segment = segment

    def emit(self, key: Hashable, value: Any) -> None:
        self.container._check_open()
        self.segment.append((key, value))


class ArrayContainer(Container):
    """Per-task append-only segments; zero synchronization on the emit path."""

    def __init__(self) -> None:
        super().__init__()
        self._segments: list[list[tuple[Hashable, Any]]] = []
        self._registry_lock = threading.Lock()

    def emitter(self, task_id: int) -> Emitter:
        """Register a fresh private segment for one map task."""
        segment: list[tuple[Hashable, Any]] = []
        with self._registry_lock:  # only segment *registration* locks
            self._segments.append(segment)
        return _SegmentEmitter(self, task_id, segment)

    def partitions(self, n: int) -> list[list[tuple[Hashable, Any]]]:
        """Group segments into ``n`` reducer partitions.

        Values are wrapped in single-element lists to match the reduce
        signature (`reduce(key, values)`); keys are *not* assumed sorted.
        """
        if n < 1:
            raise ContainerError("need at least one reducer partition")
        if not self.sealed:
            raise ContainerError("partitions() before seal()")
        parts: list[list[tuple[Hashable, Any]]] = [[] for _ in range(n)]
        for idx, segment in enumerate(self._segments):
            bucket = parts[idx % n]
            for key, value in segment:
                bucket.append((key, [value]))
        return parts

    def drain(self) -> ContainerDelta:
        """Pack this container's segments (non-empty only) for transport."""
        emits = sum(len(s) for s in self._segments)
        return ContainerDelta(
            kind="array",
            emits=emits,
            items=[s for s in self._segments if s],
        )

    def absorb(self, delta: ContainerDelta) -> None:
        """Adopt a worker's segments; they stay disjoint by construction."""
        if delta.kind != "array":
            raise ContainerError(
                f"ArrayContainer cannot absorb a {delta.kind!r} delta"
            )
        self._check_open()
        with self._registry_lock:
            self._segments.extend(delta.items)

    def stats(self) -> ContainerStats:
        """Emit counters (every emit is a distinct cell here)."""
        emits = sum(len(s) for s in self._segments)
        return ContainerStats(emits=emits, distinct_keys=emits, rounds=self.rounds)

    def __len__(self) -> int:
        return sum(len(s) for s in self._segments)
