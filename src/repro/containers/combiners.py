"""Combiners: per-key on-insert aggregation for the hash container.

Phoenix++ combines on insert so the intermediate set stays small for jobs
like word count.  A combiner is a tiny strategy object: ``initial(value)``
builds per-key state from the first emit, ``update(state, value)`` folds
in later emits, ``finish(state)`` yields the value list handed to reduce.
"""

from __future__ import annotations

import abc
from typing import Any, Sequence


class Combiner(abc.ABC):
    """Fold emitted values per key as they arrive."""

    @abc.abstractmethod
    def initial(self, value: Any) -> Any:
        """Per-key state from the first emitted value."""

    @abc.abstractmethod
    def update(self, state: Any, value: Any) -> Any:
        """Fold one more value into the per-key state."""

    def finish(self, state: Any) -> Sequence[Any]:
        """Values handed to the reducer for this key."""
        return [state]

    def merge(self, state: Any, other: Any) -> Any:
        """Fold two per-key states into one (parallel partial merge).

        The process backend combines per worker, then the parent merges
        each key's partial states; ``merge`` must satisfy
        ``merge(fold(A), fold(B)) == fold(A + B)`` for the job to be
        backend-independent.  Order-sensitive combiners that cannot
        offer that should leave this unimplemented, which disables
        in-worker combining rather than silently changing results.
        """
        raise NotImplementedError(
            f"{type(self).__name__} cannot merge partial states; "
            "the process backend needs merge() for in-worker combining"
        )


class SumCombiner(Combiner):
    """Running sum (word count's combiner)."""

    def initial(self, value: Any) -> Any:
        """Start the sum at the first value."""
        return value

    def update(self, state: Any, value: Any) -> Any:
        """Add the value to the running sum."""
        return state + value

    def merge(self, state: Any, other: Any) -> Any:
        """Partial sums add."""
        return state + other


class CountCombiner(Combiner):
    """Counts emits, ignoring values."""

    def initial(self, value: Any) -> int:
        """First emit counts as one."""
        return 1

    def update(self, state: int, value: Any) -> int:
        """Another emit: increment."""
        return state + 1

    def merge(self, state: int, other: int) -> int:
        """Partial counts add."""
        return state + other


class MinCombiner(Combiner):
    """Keeps the smallest value seen."""
    def initial(self, value: Any) -> Any:
        """Start with the first value."""
        return value

    def update(self, state: Any, value: Any) -> Any:
        """Keep the smaller of state and value."""
        return value if value < state else state

    def merge(self, state: Any, other: Any) -> Any:
        """Min of partial minima."""
        return other if other < state else state


class MaxCombiner(Combiner):
    """Keeps the largest value seen."""
    def initial(self, value: Any) -> Any:
        """Start with the first value."""
        return value

    def update(self, state: Any, value: Any) -> Any:
        """Keep the larger of state and value."""
        return value if value > state else state

    def merge(self, state: Any, other: Any) -> Any:
        """Max of partial maxima."""
        return other if other > state else state


class FirstCombiner(Combiner):
    """Keeps the first value seen (dedup-style jobs)."""

    def initial(self, value: Any) -> Any:
        """Remember the first value."""
        return value

    def update(self, state: Any, value: Any) -> Any:
        """Ignore later values."""
        return state

    def merge(self, state: Any, other: Any) -> Any:
        """The earlier partial (absorb order follows task order) wins."""
        return state


class ListCombiner(Combiner):
    """No combining: all values are kept (the default when reduce needs
    every value, e.g. inverted index)."""

    def initial(self, value: Any) -> list[Any]:
        """Start a value list."""
        return [value]

    def update(self, state: list[Any], value: Any) -> list[Any]:
        """Append the value."""
        state.append(value)
        return state

    def merge(self, state: list[Any], other: list[Any]) -> list[Any]:
        """Concatenate partial value lists in absorb order."""
        state.extend(other)
        return state

    def finish(self, state: list[Any]) -> Sequence[Any]:
        """Hand the full value list to the reducer."""
        return state
