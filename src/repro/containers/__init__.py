"""Intermediate key-value containers (Phoenix++'s container abstraction).

Phoenix++ generalizes across workloads by letting the application choose
the intermediate container (paper section V.B):

* :class:`~repro.containers.hash_container.HashContainer` — keys hash to
  cells; right for word-count-shaped jobs where a huge input collapses to
  a small intermediate set (combining on insert).
* :class:`~repro.containers.array_container.ArrayContainer` — Phoenix's
  "unlocked storage": every map task appends to its own pre-assigned
  segment with no synchronization; right for sort-shaped jobs whose
  intermediate set is as large as the input and whose keys are unique.

SupMR additionally requires containers to be **persistent** across map
rounds (section III.C): `begin_round()` may be called many times, and the
container keeps accumulating — it is created on the first mapper wave and
only torn down after the reducers run.
"""

from repro.containers.array_container import ArrayContainer
from repro.containers.base import Container, ContainerStats, Emitter
from repro.containers.fixed_array import FixedArrayContainer
from repro.containers.combiners import (
    CountCombiner,
    FirstCombiner,
    ListCombiner,
    MaxCombiner,
    MinCombiner,
    SumCombiner,
)
from repro.containers.hash_container import HashContainer

__all__ = [
    "Container",
    "ContainerStats",
    "Emitter",
    "HashContainer",
    "ArrayContainer",
    "FixedArrayContainer",
    "SumCombiner",
    "CountCombiner",
    "ListCombiner",
    "MinCombiner",
    "MaxCombiner",
    "FirstCombiner",
]
