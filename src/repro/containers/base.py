"""Container protocol shared by all intermediate k/v stores."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Hashable, Iterator

from repro.errors import ContainerError


@dataclass
class ContainerStats:
    """Counters the runtime reports in :class:`repro.core.result.JobResult`."""

    emits: int = 0
    distinct_keys: int = 0
    rounds: int = 0


@dataclass(frozen=True)
class ContainerDelta:
    """A container's contents, packed to cross a process boundary.

    The process backend runs each map task against a private container
    in the worker (so combining happens *before* serialization), then
    :meth:`Container.drain`\\ s it into one of these and ships it back;
    the parent folds it into the job's real container with
    :meth:`Container.absorb`.  ``kind`` names the producing container
    family so a mismatched absorb fails loudly, ``emits`` preserves the
    pre-combine emit count for stats, and ``items`` is family-specific
    (key/state pairs, value segments, or a summed histogram array).
    """

    kind: str
    emits: int
    items: Any


class Container(abc.ABC):
    """Abstract intermediate container.

    Lifecycle: ``begin_round()`` before each mapper wave (SupMR calls it
    once per ingest chunk; the container must persist, not reset), then
    emits via task-bound :class:`Emitter` handles, then one
    ``partitions(n)`` call to hand per-reducer work out.
    """

    def __init__(self) -> None:
        self._rounds = 0
        self._sealed = False

    # -- lifecycle ---------------------------------------------------------

    def begin_round(self) -> None:
        """Called when a mapper wave starts.

        Persistent semantics (paper section III.C): the first call
        initializes, subsequent calls MUST keep accumulated state.
        """
        if self._sealed:
            raise ContainerError("begin_round() after the container was sealed")
        self._rounds += 1

    @property
    def rounds(self) -> int:
        return self._rounds

    def seal(self) -> None:
        """No more emits; reducers may start."""
        self._sealed = True

    @property
    def sealed(self) -> bool:
        return self._sealed

    def _check_open(self) -> None:
        if self._sealed:
            raise ContainerError("emit into a sealed container")
        if self._rounds == 0:
            raise ContainerError("emit before the first begin_round()")

    # -- data path -----------------------------------------------------------

    @abc.abstractmethod
    def emitter(self, task_id: int) -> "Emitter":
        """A per-map-task emit handle (cheap; one per task)."""

    @abc.abstractmethod
    def partitions(self, n: int) -> list[list[tuple[Hashable, Any]]]:
        """Split contents into ``n`` reducer partitions of (key, values)."""

    @abc.abstractmethod
    def stats(self) -> ContainerStats:
        """Emit/key counters for reporting."""

    # -- process-boundary transport ------------------------------------------

    def drain(self) -> ContainerDelta:
        """Pack this container's contents for transport to another process.

        Called in a forked worker after its local wave sealed.  Concrete
        containers override; the default refuses so an unported
        container type degrades to the parent-loaded path instead of
        shipping wrong data.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support drain(); "
            "the process backend cannot transport it"
        )

    def absorb(self, delta: ContainerDelta) -> None:
        """Fold a worker's :class:`ContainerDelta` into this container.

        Called in the parent, once per completed map task, in task
        order (so order-sensitive semantics match the serial backend).
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support absorb(); "
            "the process backend cannot transport it"
        )


class Emitter:
    """Map-task-bound handle routing ``emit(key, value)`` to the container."""

    __slots__ = ("container", "task_id")

    def __init__(self, container: Container, task_id: int) -> None:
        self.container = container
        self.task_id = task_id

    def emit(self, key: Hashable, value: Any) -> None:
        """Route one (key, value) pair into the container."""
        raise NotImplementedError  # pragma: no cover - subclasses bind this

    def __call__(self, key: Hashable, value: Any) -> None:
        self.emit(key, value)


def iter_partition_keys(
    partition: list[tuple[Hashable, Any]],
) -> Iterator[Hashable]:
    """Keys of one reducer partition, in partition order."""
    for key, _values in partition:
        yield key
