"""Simulated baseline (Phoenix) job at paper scale.

Phases run strictly in sequence — ingest everything, map wave, reduce,
pairwise merge — reproducing Fig. 1 (sort) and Fig. 5a (word count) and
the "none" rows of Table II.
"""

from __future__ import annotations

from typing import Any

from repro.core.result import PhaseTimings
from repro.simhw.cpu import CpuClass
from repro.simhw.events import Simulator
from repro.simhw.machine import ScaleUpMachine, paper_machine
from repro.simrt.costmodel import AppCostProfile
from repro.simrt.phases import (
    PhaseLog,
    SimJobResult,
    ingest,
    map_wave,
    merge_pairwise,
    merge_pway,
    reduce_phase,
)


def simulate_phoenix_job(
    profile: AppCostProfile,
    input_bytes: float,
    monitor_interval: float = 1.0,
    machine: ScaleUpMachine | None = None,
    source: Any = None,
    merge_algorithm: str = "pairwise",
) -> SimJobResult:
    """Run the baseline job on the (default: paper) simulated machine.

    ``source`` overrides the ingest device (e.g. an HDFS reader);
    ``merge_algorithm`` may be set to ``"pway"`` for the merge ablation.
    """
    if machine is None:
        sim = Simulator()
        machine = paper_machine(sim, monitor_interval=monitor_interval)
    else:
        sim = machine.sim
    log = PhaseLog(machine)

    def job():
        t0 = sim.now
        yield from ingest(machine, input_bytes, profile, source)
        log.record("read", t0)

        t0 = sim.now
        yield from map_wave(machine, input_bytes, profile)
        log.record("map", t0)

        t0 = sim.now
        yield from reduce_phase(machine, input_bytes, profile, map_rounds=1)
        log.record("reduce", t0)

        t0 = sim.now
        inter = profile.intermediate_bytes(input_bytes)
        if merge_algorithm == "pairwise":
            yield from merge_pairwise(machine, inter, profile)
        else:
            yield from merge_pway(machine, inter, profile)
        log.record("merge", t0)

        t0 = sim.now
        yield from machine.compute(profile.setup_baseline_s, CpuClass.SYS)
        log.record("cleanup", t0)

    machine.monitor.start()
    proc = sim.process(job(), name="phoenix-sim")
    proc.callbacks.append(lambda _ev: machine.monitor.stop())
    sim.run()

    timings = PhaseTimings(
        read_s=log.duration("read"),
        map_s=log.duration("map"),
        reduce_s=log.duration("reduce"),
        merge_s=log.duration("merge"),
        total_s=log.spans[-1].end,
        read_map_combined=False,
    )
    return SimJobResult(
        app=profile.name,
        runtime="phoenix",
        input_bytes=input_bytes,
        chunk_bytes=None,
        timings=timings,
        samples=machine.monitor.samples,
        spans=log.spans,
        extras={"merge_algorithm": merge_algorithm},
    )
