"""Simulated baseline (Phoenix) job at paper scale.

Phases run strictly in sequence — ingest everything, map wave, reduce,
pairwise merge — reproducing Fig. 1 (sort) and Fig. 5a (word count) and
the "none" rows of Table II.
"""

from __future__ import annotations

from typing import Any

from repro.core.result import PhaseTimings
from repro.errors import ConfigError
from repro.faults.plan import FaultPlan
from repro.faults.policy import RecoveryPolicy
from repro.faults.simdriver import SimFaultDriver
from repro.simhw.cpu import CpuClass
from repro.simhw.events import Simulator
from repro.simhw.machine import ScaleUpMachine, paper_machine
from repro.simrt.costmodel import AppCostProfile, merge_passes, plan_spills
from repro.simrt.phases import (
    PhaseLog,
    SimJobResult,
    ingest,
    map_wave,
    merge_pairwise,
    merge_pway,
    reduce_phase,
    spill_read,
    spill_rewrite,
    spill_write,
)


def simulate_phoenix_job(
    profile: AppCostProfile,
    input_bytes: float,
    monitor_interval: float = 1.0,
    machine: ScaleUpMachine | None = None,
    source: Any = None,
    merge_algorithm: str = "pairwise",
    memory_budget: float | None = None,
    spill_fan_in: int = 8,
    fault_plan: FaultPlan | None = None,
    recovery: RecoveryPolicy | None = None,
) -> SimJobResult:
    """Run the baseline job on the (default: paper) simulated machine.

    ``source`` overrides the ingest device (e.g. an HDFS reader);
    ``merge_algorithm`` may be set to ``"pway"`` for the merge ablation.
    ``memory_budget`` caps the live intermediate set: each time the map
    phase fills it, a budget-sized run is sorted and spilled to disk
    ("spill" spans; on the real runtime these interleave with mapping —
    the sim charges them right after the wave, which preserves the total
    and keeps the trace legible), and before the merge the runs are
    consolidated to ``spill_fan_in`` sources and streamed back.
    A ``fault_plan`` arms the timed ``sim.*`` hardware sites against the
    machine; the resulting log lands in ``extras['fault_log']``.
    """
    if memory_budget is not None and memory_budget <= 0:
        raise ConfigError("memory_budget must be positive")
    if spill_fan_in < 2:
        raise ConfigError("spill_fan_in must be at least 2")
    if machine is None:
        sim = Simulator()
        machine = paper_machine(sim, monitor_interval=monitor_interval)
    else:
        sim = machine.sim
    log = PhaseLog(machine)

    injector = None
    if fault_plan is not None:
        injector = fault_plan.arm(
            recovery or RecoveryPolicy(), clock=lambda: sim.now
        )
        SimFaultDriver(fault_plan, injector.log, machine=machine).arm()
    inter_total = profile.intermediate_bytes(input_bytes)
    plan = plan_spills(inter_total, memory_budget, profile.spill_combine_ratio)
    n_passes = merge_passes(plan.n_runs + 1, spill_fan_in) if plan.n_runs else 0
    rewritten = {"bytes": 0.0}

    def job():
        t0 = sim.now
        yield from ingest(machine, input_bytes, profile, source)
        log.record("read", t0)

        t0 = sim.now
        yield from map_wave(machine, input_bytes, profile)
        log.record("map", t0)

        if plan.n_runs:
            t0 = sim.now
            for _ in range(plan.n_runs):
                yield from spill_write(machine, memory_budget, profile)
            log.record("spill", t0)

        t0 = sim.now
        yield from reduce_phase(machine, input_bytes, profile, map_rounds=1)
        log.record("reduce", t0)

        if plan.n_runs:
            # Consolidate to the fan-in, then stream the runs back for
            # the external merge.
            t0 = sim.now
            remaining = plan.n_runs + 1  # + resident remainder
            while remaining > spill_fan_in:
                consolidated = spill_fan_in * plan.run_bytes
                yield from spill_rewrite(machine, consolidated)
                rewritten["bytes"] += consolidated
                remaining -= spill_fan_in - 1
            yield from spill_read(machine, plan.spilled_bytes)
            log.record("spill", t0)

        t0 = sim.now
        if merge_algorithm == "pairwise":
            yield from merge_pairwise(machine, inter_total, profile)
        else:
            yield from merge_pway(machine, inter_total, profile)
        log.record("merge", t0)

        t0 = sim.now
        yield from machine.compute(profile.setup_baseline_s, CpuClass.SYS)
        log.record("cleanup", t0)

    machine.monitor.start()
    proc = sim.process(job(), name="phoenix-sim")
    proc.callbacks.append(lambda _ev: machine.monitor.stop())
    sim.run()

    timings = PhaseTimings(
        read_s=log.duration("read"),
        map_s=log.duration("map"),
        reduce_s=log.duration("reduce"),
        merge_s=log.duration("merge"),
        total_s=log.spans[-1].end,
        read_map_combined=False,
        spill_s=log.duration("spill"),
    )
    extras: dict[str, Any] = {"merge_algorithm": merge_algorithm}
    if injector is not None:
        extras["fault_log"] = injector.log
        extras["faults_injected"] = injector.log.injected
    if memory_budget is not None:
        extras.update(
            memory_budget=memory_budget,
            n_spill_runs=plan.n_runs,
            spilled_bytes=plan.spilled_bytes,
            spill_fan_in=spill_fan_in,
            spill_merge_passes=n_passes,
            spill_rewritten_bytes=rewritten["bytes"],
        )
    return SimJobResult(
        app=profile.name,
        runtime="phoenix",
        input_bytes=input_bytes,
        chunk_bytes=None,
        timings=timings,
        samples=machine.monitor.samples,
        spans=log.spans,
        extras=extras,
    )
