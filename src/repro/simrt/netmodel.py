"""Analytic cost of the multi-host exchange: when do peers pay off?

The scale-up thesis of the paper is that one fat node beats a cluster
*until* the cluster's aggregate memory bandwidth overtakes the network
tax of moving intermediate data.  This model prices exactly the tax the
``repro.net`` transport pays: each reduce partition pulls every remote
source run over a framed TCP stream in :data:`frame_bytes` range
requests, each request costing one round trip plus serialized transfer
time.  It answers, before standing up any agents, "does adding hosts
help *this* exchange volume on *this* link?" — the same
crossover question Fig. 5's disk-count sweep answers for spindles.

The model is deliberately first-order: no congestion, no slow start,
fully overlapped hosts.  It upper-bounds the win of going multi-host,
which is the honest direction for a scale-up paper — if even the
optimistic model says the network loses, no measurement will save it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import SimulationError

#: Default range-request size — mirrors ``repro.net.exchange.CHUNK_BYTES``.
DEFAULT_FRAME_BYTES = 256 * 1024


@dataclass(frozen=True)
class NetProfile:
    """One link's first-order cost parameters.

    ``bandwidth_bps`` is the sustained point-to-point rate,
    ``rtt_s`` the request/response round trip each range request pays,
    and ``frame_bytes`` the range-request size (smaller frames resume
    cheaper after a drop but pay the round trip more often).
    """

    bandwidth_bps: float
    rtt_s: float
    frame_bytes: int = DEFAULT_FRAME_BYTES

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise SimulationError("bandwidth_bps must be positive")
        if self.rtt_s < 0:
            raise SimulationError("rtt_s must be >= 0")
        if self.frame_bytes <= 0:
            raise SimulationError("frame_bytes must be positive")


#: ~10 GbE with LAN latency: the cluster the paper's scale-out
#: baselines ran on.
LAN_10G = NetProfile(bandwidth_bps=1.25e9, rtt_s=100e-6)

#: ~1 GbE commodity network — the Hadoop-era baseline fabric.
LAN_1G = NetProfile(bandwidth_bps=1.25e8, rtt_s=200e-6)


def remote_fetch_s(profile: NetProfile, volume_bytes: float) -> float:
    """Seconds to pull one run of ``volume_bytes`` over the link.

    ``ceil(volume / frame_bytes)`` sequential range requests, each
    costing one round trip plus its serialized bytes — the request
    pattern :func:`repro.net.exchange.fetch_run_remote` actually issues.
    A zero-byte run still costs one round trip (the stat).
    """
    if volume_bytes < 0:
        raise SimulationError("volume_bytes must be >= 0")
    frames = max(1, math.ceil(volume_bytes / profile.frame_bytes))
    return frames * profile.rtt_s + volume_bytes / profile.bandwidth_bps


def exchange_s(
    profile: NetProfile,
    shuffle_bytes: float,
    num_hosts: int,
    streams_per_host: int = 1,
) -> float:
    """Seconds the all-to-all exchange adds to a ``num_hosts`` run.

    With uniform partitioning a ``1/num_hosts`` fraction of the shuffle
    volume is already host-local (free — it takes the same-host file
    path); the rest crosses the wire.  Hosts transfer concurrently and
    each may run ``streams_per_host`` parallel fetch streams, so the
    critical path is one host's share over its aggregate ingest rate.
    """
    if shuffle_bytes < 0:
        raise SimulationError("shuffle_bytes must be >= 0")
    if num_hosts < 1:
        raise SimulationError("num_hosts must be >= 1")
    if streams_per_host < 1:
        raise SimulationError("streams_per_host must be >= 1")
    if num_hosts == 1:
        return 0.0
    remote_fraction = (num_hosts - 1) / num_hosts
    per_host_bytes = shuffle_bytes * remote_fraction / num_hosts
    per_stream_bytes = per_host_bytes / streams_per_host
    return remote_fetch_s(profile, per_stream_bytes)


def multi_host_runtime_s(
    profile: NetProfile,
    compute_s: float,
    shuffle_bytes: float,
    num_hosts: int,
    streams_per_host: int = 1,
) -> float:
    """Predicted wall clock with the job split across ``num_hosts``.

    Compute scales ideally (the optimistic bound); the exchange tax is
    added serially, the way the runtime's reduce phase actually blocks
    on its fetches.
    """
    if compute_s < 0:
        raise SimulationError("compute_s must be >= 0")
    return compute_s / num_hosts + exchange_s(
        profile, shuffle_bytes, num_hosts, streams_per_host
    )


def speedup(
    profile: NetProfile,
    compute_s: float,
    shuffle_bytes: float,
    num_hosts: int,
    streams_per_host: int = 1,
) -> float:
    """Single-host runtime over ``num_hosts`` runtime (> 1 = win)."""
    multi = multi_host_runtime_s(
        profile, compute_s, shuffle_bytes, num_hosts, streams_per_host
    )
    if multi <= 0:
        return math.inf
    return compute_s / multi


def crossover_hosts(
    profile: NetProfile,
    compute_s: float,
    shuffle_bytes: float,
    max_hosts: int = 64,
    streams_per_host: int = 1,
) -> "int | None":
    """Smallest host count whose predicted runtime beats one host.

    ``None`` when no count up to ``max_hosts`` wins — the paper's
    scale-up regime, where the exchange tax eats the compute split and
    the right cluster size is one fat node.
    """
    if max_hosts < 2:
        raise SimulationError("max_hosts must be >= 2")
    solo = multi_host_runtime_s(profile, compute_s, shuffle_bytes, 1)
    for hosts in range(2, max_hosts + 1):
        if multi_host_runtime_s(
            profile, compute_s, shuffle_bytes, hosts, streams_per_host
        ) < solo:
            return hosts
    return None
