"""Simulated HDFS case study (paper section VI.C.3, Fig. 7).

Word count over 30 GB served by a 32-node HDFS behind one 1 Gbit link:

* **original runtime** — copy the 30 GB onto the node (link-bound), then
  run the whole computation;
* **SupMR** — ingest chunks stream over the link while map waves run.

The link (~119 MB/s goodput) dwarfs the map phase, so utilization is high
during ingest but the absolute speedup is tiny — Conclusion 4.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simhw.events import Simulator
from repro.simhw.hdfs import HdfsCluster, HdfsSpec
from repro.simhw.machine import paper_machine
from repro.simrt.costmodel import AppCostProfile, PAPER_WORDCOUNT
from repro.simrt.phases import SimJobResult
from repro.simrt.phoenix_sim import simulate_phoenix_job
from repro.simrt.supmr_sim import simulate_supmr_job


@dataclass(frozen=True)
class HdfsCaseStudyResult:
    """Both runs plus the headline delta the paper reports (~7 s)."""

    baseline: SimJobResult
    supmr: SimJobResult

    @property
    def speedup_seconds(self) -> float:
        return self.baseline.timings.total_s - self.supmr.timings.total_s

    @property
    def speedup_factor(self) -> float:
        return self.baseline.timings.total_s / self.supmr.timings.total_s


def simulate_hdfs_case_study(
    input_bytes: float = 30e9,
    chunk_bytes: float = 1e9,
    profile: AppCostProfile = PAPER_WORDCOUNT,
    hdfs_spec: HdfsSpec | None = None,
    monitor_interval: float = 1.0,
) -> HdfsCaseStudyResult:
    """Run baseline and SupMR word count ingesting from simulated HDFS."""
    spec = hdfs_spec or HdfsSpec()

    sim_a = Simulator()
    machine_a = paper_machine(sim_a, monitor_interval=monitor_interval)
    cluster_a = HdfsCluster(sim_a, spec)
    baseline = simulate_phoenix_job(
        profile, input_bytes, machine=machine_a, source=cluster_a.reader()
    )

    sim_b = Simulator()
    machine_b = paper_machine(sim_b, monitor_interval=monitor_interval)
    cluster_b = HdfsCluster(sim_b, spec)
    supmr = simulate_supmr_job(
        profile,
        input_bytes,
        chunk_bytes,
        machine=machine_b,
        source=cluster_b.reader(),
    )
    return HdfsCaseStudyResult(baseline=baseline, supmr=supmr)
