"""Simulated HDFS case study (paper section VI.C.3, Fig. 7).

Word count over 30 GB served by a 32-node HDFS behind one 1 Gbit link:

* **original runtime** — copy the 30 GB onto the node (link-bound), then
  run the whole computation;
* **SupMR** — ingest chunks stream over the link while map waves run.

The link (~119 MB/s goodput) dwarfs the map phase, so utilization is high
during ingest but the absolute speedup is tiny — Conclusion 4.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.log import FaultLog
from repro.faults.plan import FaultPlan
from repro.faults.policy import RecoveryPolicy
from repro.faults.simdriver import SimFaultDriver
from repro.simhw.events import Simulator
from repro.simhw.hdfs import HdfsCluster, HdfsSpec
from repro.simhw.machine import paper_machine
from repro.simrt.costmodel import AppCostProfile, PAPER_WORDCOUNT
from repro.simrt.phases import SimJobResult
from repro.simrt.phoenix_sim import simulate_phoenix_job
from repro.simrt.supmr_sim import simulate_supmr_job


@dataclass(frozen=True)
class HdfsCaseStudyResult:
    """Both runs plus the headline delta the paper reports (~7 s)."""

    baseline: SimJobResult
    supmr: SimJobResult
    #: Cluster-side fault logs (datanode loss, link flaps) for each run;
    #: None when the study ran without a fault plan.  Machine-side logs
    #: live in each run's ``extras['fault_log']``.
    baseline_cluster_log: FaultLog | None = None
    supmr_cluster_log: FaultLog | None = None

    @property
    def speedup_seconds(self) -> float:
        """Baseline total minus SupMR total, in simulated seconds."""
        return self.baseline.timings.total_s - self.supmr.timings.total_s

    @property
    def speedup_factor(self) -> float:
        """Baseline total over SupMR total."""
        return self.baseline.timings.total_s / self.supmr.timings.total_s


def simulate_hdfs_case_study(
    input_bytes: float = 30e9,
    chunk_bytes: float = 1e9,
    profile: AppCostProfile = PAPER_WORDCOUNT,
    hdfs_spec: HdfsSpec | None = None,
    monitor_interval: float = 1.0,
    fault_plan: FaultPlan | None = None,
    recovery: RecoveryPolicy | None = None,
) -> HdfsCaseStudyResult:
    """Run baseline and SupMR word count ingesting from simulated HDFS.

    With a ``fault_plan``, both runs suffer the same faults: the
    cluster-side sites (``sim.hdfs.datanode_loss``, ``sim.net.flap``)
    strike each run's HDFS cluster — reads rebalance across the
    surviving datanodes, degraded mode in action — while the machine
    sites and the SupMR straggler site arm inside the job simulations.
    """
    spec = hdfs_spec or HdfsSpec()

    def cluster_driver(sim: Simulator, cluster: HdfsCluster) -> FaultLog | None:
        if fault_plan is None:
            return None
        log = FaultLog(clock=lambda: sim.now)
        SimFaultDriver(fault_plan, log, cluster=cluster).arm()
        return log

    sim_a = Simulator()
    machine_a = paper_machine(sim_a, monitor_interval=monitor_interval)
    cluster_a = HdfsCluster(sim_a, spec)
    log_a = cluster_driver(sim_a, cluster_a)
    baseline = simulate_phoenix_job(
        profile, input_bytes, machine=machine_a, source=cluster_a.reader(),
        fault_plan=fault_plan, recovery=recovery,
    )

    sim_b = Simulator()
    machine_b = paper_machine(sim_b, monitor_interval=monitor_interval)
    cluster_b = HdfsCluster(sim_b, spec)
    log_b = cluster_driver(sim_b, cluster_b)
    supmr = simulate_supmr_job(
        profile,
        input_bytes,
        chunk_bytes,
        machine=machine_b,
        source=cluster_b.reader(),
        fault_plan=fault_plan,
        recovery=recovery,
    )
    return HdfsCaseStudyResult(
        baseline=baseline,
        supmr=supmr,
        baseline_cluster_log=log_a,
        supmr_cluster_log=log_b,
    )
