"""Simulated phase building blocks shared by the simulated runtimes.

Each phase is a generator process over a :class:`ScaleUpMachine`:

* :func:`ingest` — one thread blocks on the ingest source (iowait);
* :func:`map_wave` — spawn a wave of contexts-wide map threads;
* :func:`reduce_phase` — all contexts busy for the modelled duration;
* :func:`merge_pairwise` — initial parallel block sorts, then 2-way merge
  rounds with halving worker counts (the Fig. 1 step-down);
* :func:`merge_pway` — the same block sorts, then one p-way pass;
* :func:`spill_write` / :func:`spill_read` / :func:`spill_rewrite` —
  out-of-core spill traffic: sort + run write when the memory budget is
  hit, streaming read-back before the external merge, and fan-in-bounded
  consolidation passes between the two.

:class:`PhaseLog` records wall-clock spans; :class:`SimJobResult` bundles
Table II-style timings with the collectl trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.core.result import PhaseTimings
from repro.errors import SimulationError
from repro.simhw.machine import ScaleUpMachine
from repro.simhw.monitor import UtilizationSample
from repro.simhw.process import AllOf
from repro.simrt.costmodel import AppCostProfile
from repro.sortlib.merge_sort import merge_rounds_schedule


@dataclass(frozen=True)
class PhaseSpan:
    name: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class PhaseLog:
    """Ordered record of phase spans for one simulated job."""

    def __init__(self, machine: ScaleUpMachine) -> None:
        self.machine = machine
        self.spans: list[PhaseSpan] = []

    def record(self, name: str, start: float) -> None:
        """Close a span named ``name`` that began at ``start``."""
        self.spans.append(PhaseSpan(name, start, self.machine.sim.now))

    def duration(self, name: str) -> float:
        """Total duration across all spans with this name."""
        return sum(s.duration for s in self.spans if s.name == name)

    def span_bounds(self, name: str) -> tuple[float, float]:
        """(first start, last end) across spans with this name."""
        matches = [s for s in self.spans if s.name == name]
        if not matches:
            raise SimulationError(f"no phase named {name!r} was recorded")
        return matches[0].start, matches[-1].end


@dataclass
class SimJobResult:
    """Simulated-job outcome: Table II timings plus the collectl trace."""

    app: str
    runtime: str
    input_bytes: float
    chunk_bytes: float | None
    timings: PhaseTimings
    samples: list[UtilizationSample]
    spans: list[PhaseSpan]
    extras: dict[str, Any] = field(default_factory=dict)

    def mean_total_utilization(self, t0: float = 0.0, t1: float = float("inf")) -> float:
        """Mean total utilization % over a window."""
        window = [s for s in self.samples if t0 <= s.time <= t1]
        if not window:
            return 0.0
        return sum(s.total_pct for s in window) / len(window)


# -- phase processes (generators; spawn with sim.process or yield from) -----


def ingest(machine: ScaleUpMachine, nbytes: float, profile: AppCostProfile,
           source: Any = None) -> Iterator:
    """One ingest thread pulls ``nbytes`` at the app's effective rate.

    ``source`` defaults to the machine's RAID-0; the transfer is capped at
    ``profile.ingest_bw`` (an app never exceeds its measured effective
    ingest rate, even on an idle array).
    """
    machine.cpu.io_blocked += 1
    try:
        if source is not None:
            yield source.read(nbytes)
        else:
            yield machine.disk._read_chan.transfer(
                nbytes, cap=profile.ingest_bw, tag="ingest"
            )
    finally:
        machine.cpu.io_blocked -= 1


def map_wave(machine: ScaleUpMachine, nbytes: float,
             profile: AppCostProfile, straggler_s: float = 0.0) -> Iterator:
    """Spawn a contexts-wide wave of mapper threads over ``nbytes``.

    ``straggler_s`` extends one thread of the wave by that many seconds —
    the fault-injected slow task; the wave (and so the round) completes
    when the straggler (or its speculative copy) does.
    """
    n = machine.spec.contexts
    yield from machine.spawn_wave(n)
    per_thread_s = profile.map_wall_s(nbytes, n)
    durations = [per_thread_s] * n
    durations[0] += max(0.0, straggler_s)
    workers = [
        machine.sim.process(machine.compute(dur), name=f"map{i}")
        for i, dur in enumerate(durations)
    ]
    yield AllOf(machine.sim, workers)
    yield from machine.join_wave(n)


def spill_write(machine: ScaleUpMachine, live_bytes: float,
                profile: AppCostProfile) -> Iterator:
    """One spill: sort the live container, then write the run to disk.

    The sort is a single-threaded in-memory scan at the app's block-sort
    rate (the spill runs inline on the inserting thread while the wave
    stalls); the write is charged to the machine's disk write channel as
    iowait, shrunk by the app's combine-on-spill ratio.
    """
    if live_bytes <= 0:
        return
    yield from machine.scan_memory(live_bytes, profile.sort_block_bw)
    machine.cpu.io_blocked += 1
    try:
        yield machine.disk.write(live_bytes * profile.spill_combine_ratio)
    finally:
        machine.cpu.io_blocked -= 1


def spill_read(machine: ScaleUpMachine, nbytes: float) -> Iterator:
    """Stream spilled run bytes back off the disk (iowait)."""
    if nbytes <= 0:
        return
    machine.cpu.io_blocked += 1
    try:
        yield machine.disk.read(nbytes)
    finally:
        machine.cpu.io_blocked -= 1


def spill_rewrite(machine: ScaleUpMachine, nbytes: float) -> Iterator:
    """One external-merge consolidation pass over ``nbytes`` of runs.

    Streams the source runs off the disk and writes the single merged
    run back; both directions are charged as iowait (the heap scan at
    memory rates is negligible next to the disk).
    """
    if nbytes <= 0:
        return
    machine.cpu.io_blocked += 1
    try:
        yield machine.disk.read(nbytes)
        yield machine.disk.write(nbytes)
    finally:
        machine.cpu.io_blocked -= 1


def reduce_phase(machine: ScaleUpMachine, input_bytes: float,
                 profile: AppCostProfile, map_rounds: int,
                 chunk_bytes: float | None = None) -> Iterator:
    """All contexts busy for the modelled reduce duration."""
    n = machine.spec.contexts
    wall_s = profile.reduce_wall_s(input_bytes, map_rounds, chunk_bytes)
    if wall_s <= 0:
        return
    workers = [
        machine.sim.process(machine.compute(wall_s), name=f"reduce{i}")
        for i in range(n)
    ]
    yield AllOf(machine.sim, workers)


def _block_sorts(machine: ScaleUpMachine, inter_bytes: float,
                 profile: AppCostProfile, n_runs: int) -> Iterator:
    """Initial parallel small-list sorts (start of either merge)."""
    per_run = inter_bytes / n_runs
    workers = [
        machine.sim.process(
            machine.scan_memory(per_run, profile.sort_block_bw),
            name=f"blocksort{i}",
        )
        for i in range(n_runs)
    ]
    yield AllOf(machine.sim, workers)


def merge_pairwise(machine: ScaleUpMachine, inter_bytes: float,
                   profile: AppCostProfile, n_runs: int | None = None) -> Iterator:
    """Phoenix merge: block sorts, then 2-way rounds with halving workers."""
    n_runs = n_runs or machine.spec.contexts
    if inter_bytes <= 0:
        return
    yield from _block_sorts(machine, inter_bytes, profile, n_runs)
    run_len = max(1, int(inter_bytes // n_runs))
    for rnd in merge_rounds_schedule([run_len] * n_runs):
        per_worker_bytes = inter_bytes * (rnd.items_scanned / (run_len * n_runs))
        per_worker_bytes /= rnd.merges
        workers = [
            machine.sim.process(
                machine.scan_memory(per_worker_bytes, profile.merge_scan_bw),
                name=f"merge-r{rnd.index}w{i}",
            )
            for i in range(rnd.merges)
        ]
        yield AllOf(machine.sim, workers)


def merge_pway(machine: ScaleUpMachine, inter_bytes: float,
               profile: AppCostProfile, n_runs: int | None = None) -> Iterator:
    """SupMR merge: block sorts, then one p-way pass with all contexts."""
    n_runs = n_runs or machine.spec.contexts
    if inter_bytes <= 0:
        return
    yield from _block_sorts(machine, inter_bytes, profile, n_runs)
    p = machine.spec.contexts
    per_worker = inter_bytes / p
    bw = profile.pway_scan_bw(n_runs)
    workers = [
        machine.sim.process(
            machine.scan_memory(per_worker, bw), name=f"pway{i}"
        )
        for i in range(p)
    ]
    yield AllOf(machine.sim, workers)
