"""Multi-tenant bandwidth-contention predictions.

The service assigns each dispatched job an allocator share of the
configured node bandwidth and enforces it with a token bucket
(:mod:`repro.qos`).  This module answers, *before* running anything,
"how much slower does tenant A get when tenant B shows up?" — using the
**same** :class:`~repro.qos.allocator.BandwidthAllocator` classes the
service and the fluid-flow simulator use, so the prediction and the
enforcement share one arithmetic.

The model is fluid and piecewise-constant: all tenants start at t=0,
rates are re-allocated every time a tenant finishes (its surplus flows
to the survivors, exactly like
:class:`repro.simhw.resources.BandwidthResource` re-shares a channel),
and a tenant's finish time is when its byte volume drains.  Tests
compare these predictions against *real* throttled runs: wall-clock for
a throttled job is lower-bounded by ``bytes / rate`` minus one burst
allowance, and the predicted completion *order* must match reality.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.qos.allocator import make_allocator

#: Residual bytes below this count as drained (float-accumulation slop,
#: same scale as the allocator epsilon).
_EPSILON = 1e-9


@dataclass(frozen=True)
class TenantLoad:
    """One tenant's offered load for a contention prediction.

    ``volume_bytes`` is how much I/O the tenant must move end to end;
    ``demand_bps`` its declared bandwidth ask (``math.inf`` = "whatever
    the node gives me"); ``weight``/``priority`` feed the allocator the
    same way the service's dispatch-time registration does.
    """

    name: str
    volume_bytes: float
    demand_bps: float = math.inf
    weight: float = 1.0
    priority: int = 0

    def __post_init__(self) -> None:
        if self.volume_bytes <= 0:
            raise SimulationError(
                f"tenant {self.name!r}: volume_bytes must be positive"
            )
        if self.demand_bps <= 0:
            raise SimulationError(
                f"tenant {self.name!r}: demand_bps must be positive"
            )


def solo_completion_s(load: TenantLoad, capacity_bps: float) -> float:
    """Seconds the tenant needs with the node to itself.

    Its rate is the smaller of its demand and the node capacity — a
    token bucket never delivers more than its configured rate even on an
    idle node.
    """
    if capacity_bps <= 0:
        raise SimulationError("capacity_bps must be positive")
    return load.volume_bytes / min(load.demand_bps, capacity_bps)


def predict_completions(
    loads: "list[TenantLoad]",
    capacity_bps: float,
    policy: str = "max-min",
) -> dict[str, float]:
    """Predicted finish time (seconds from t=0) for each tenant.

    Piecewise-constant fluid model: between completions every active
    tenant drains at its allocator rate; at each completion the
    allocator re-shares the capacity among the survivors.  Deterministic
    in its inputs.  Raises :class:`~repro.errors.SimulationError` if the
    policy starves every remaining tenant (zero aggregate rate with
    bytes still pending), which cannot happen under ``max-min`` but can
    under a saturated ``priority`` level set — mirroring why the service
    pairs strict priority with queue-side aging.
    """
    if capacity_bps <= 0:
        raise SimulationError("capacity_bps must be positive")
    names = [load.name for load in loads]
    if len(set(names)) != len(names):
        raise SimulationError("tenant names must be unique")
    remaining = {load.name: float(load.volume_bytes) for load in loads}
    active = list(loads)
    finish: dict[str, float] = {}
    now = 0.0
    while active:
        allocator = make_allocator(policy, capacity_bps)
        for load in active:
            allocator.register(
                load.name, load.demand_bps,
                weight=load.weight, priority=load.priority,
            )
        rates = allocator.allocate()
        horizon = min(
            (remaining[load.name] / rates[load.name]
             for load in active if rates[load.name] > 0),
            default=math.inf,
        )
        if math.isinf(horizon):
            starved = ", ".join(sorted(load.name for load in active))
            raise SimulationError(
                f"policy {policy!r} starves tenant(s) {starved} "
                "(zero allocated rate with bytes remaining)"
            )
        now += horizon
        still_active: list[TenantLoad] = []
        for load in active:
            remaining[load.name] -= rates[load.name] * horizon
            if remaining[load.name] <= _EPSILON:
                remaining[load.name] = 0.0
                finish[load.name] = now
            else:
                still_active.append(load)
        active = still_active
    return finish


def predict_slowdowns(
    loads: "list[TenantLoad]",
    capacity_bps: float,
    policy: str = "max-min",
) -> dict[str, float]:
    """Contended completion over solo completion, per tenant (>= 1.0).

    A slowdown of 1.0 means contention cost the tenant nothing (its
    demand fit alongside everyone else's); 2.0 means it finished in
    twice its solo time.  Work conservation of the allocators guarantees
    the value never drops below 1.0 (modulo float slop).
    """
    completions = predict_completions(loads, capacity_bps, policy=policy)
    return {
        load.name: completions[load.name] / solo_completion_s(
            load, capacity_bps
        )
        for load in loads
    }


def throttled_floor_s(
    volume_bytes: float, rate_bps: float, burst_bytes: float = 0.0
) -> float:
    """Lower bound on the wall-clock of a real run throttled at ``rate_bps``.

    A token bucket that starts full forgives up to one burst of bytes
    before the rate binds, so a real throttled run satisfies
    ``elapsed >= (volume - burst) / rate``.  Tests use this to check the
    enforcement side against the model without asserting exact timings
    on shared CI hardware.
    """
    if rate_bps <= 0:
        raise SimulationError("rate_bps must be positive")
    return max(0.0, (volume_bytes - burst_bytes) / rate_bps)
