"""Calibrated per-application cost model.

Every constant below is derived from the paper's own Table II and testbed
description, not invented — the derivations are spelled out per field so
a reader can re-do the arithmetic.  The paper uses **SI units** (its
"384 MB/s" RAID-0 ingesting 155 GB in 403.9 s only works out with
GB = 1e9 B), so this module defines SI constants and the simulated
experiments use them throughout.

Shared geometry: 32 hardware contexts, 3-HDD RAID-0 at 384 MB/s max read.

Word count (155 GB), from Table II:
* ingest 403.90 s  => effective ingest bw 155e9/403.90 = 383.8 MB/s
  (the RAID's full rate — word count reads big sequential text);
* map 67.41 s with 32 contexts => per-context map throughput
  155e9/(67.41*32) = 71.9 MB/s (parse + hash-container emit);
* reduce 0.03 s baseline; with 155 chunk rounds reduce grows to 1.08 s
  => per-round persistent-container penalty (1.08-0.03)/155 = 6.8 ms;
* merge 0.01 s — the intermediate set is a few distinct words
  (intermediate_ratio ~ 2e-5 of input bytes).

Sort (60 GB), from Table II:
* ingest 182.78 s => effective 328.3 MB/s (100-byte records; the paper's
  sort ingest path allocates per record and does not reach the RAID max);
* map 6.33 s => per-context 296.2 MB/s (pointer setup, no combining);
* merge decomposes as initial parallel block sorts (S) plus either
  pairwise rounds or one p-way pass.  With 32 runs the pairwise schedule
  scans all bytes once per round with 16,8,4,2,1 workers, i.e.
  sum(1/w) = 1.9375 full-scan-equivalents; the p-way pass scans once
  with 32 workers each slowed by the heap's log2(32) = 5 comparisons per
  element.  Solving

      S + 1.9375 * B/w = 191.23        (Table II merge, none)
      S + (5/32) * B/w  = 61.14        (Table II merge, 1 GB)

  with B = 60e9 gives B/w = 73.03 s => per-thread 2-way scan bandwidth
  w = 821.6 MB/s, and S = 49.73 s => per-thread block-sort bandwidth
  60e9/32/49.73 = 37.7 MB/s;
* reduce 7.72 s baseline => 0.1287 s per SI GB; with 60 rounds reduce is
  9.04 s => per-round penalty (9.04-7.72)/60 = 22 ms.

OpenMP baseline (Fig. 3): total is 192 s slower than MapReduce sort's
397.31 s => 589.3 s; subtracting shared ingest (182.78 s) and the same
parallel sort (61.14 s) leaves 345.4 s of single-threaded parse
=> parse bandwidth 173.7 MB/s.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError

#: SI units — the unit system the paper's arithmetic uses.
MB_SI = 1_000_000.0
GB_SI = 1_000_000_000.0


@dataclass(frozen=True)
class AppCostProfile:
    """Per-application throughput/overhead parameters (all rates in B/s)."""

    name: str
    ingest_bw: float  # effective sequential read rate off primary storage
    map_bw_per_ctx: float  # map throughput per hardware context
    parse_bw_single: float  # single-threaded parse (OpenMP-style baseline)
    reduce_s_per_gb: float  # baseline reduce seconds per SI GB of input
    container_round_penalty_s: float  # extra reduce time per map round
    intermediate_ratio: float  # intermediate bytes per input byte
    sort_block_bw: float  # per-thread initial run sort rate (merge phase)
    merge_scan_bw: float  # per-thread 2-way merge scan rate
    #: Additional per-round reduce penalty proportional to the chunk size
    #: in SI GB (bigger chunks grow the persistent container by more per
    #: round).  Solved from the two chunked word-count rows of Table II:
    #: 154*(f + 1*g) = 1.08-0.03 and 3*(f + 50*g) = 0.08-0.03 give
    #: f = 6.62 ms, g = 0.201 ms/GB.
    container_round_penalty_s_per_gb: float = 0.0
    #: Fixed per-pipeline-round overhead: thread wave churn, chunk buffer
    #: allocation, container segment registration.  Calibrated from the
    #: chunked-vs-none ingest deltas of Table II: word count
    #: (406.14 - 403.9 - map tail)/155 rounds = 12.5 ms; sort
    #: (196.86 - 182.78 - map tail)/60 rounds = 235 ms (sort's rounds
    #: allocate input-sized chunk buffers and register 32 container
    #: segments each, so its rounds are far heavier).
    round_overhead_s: float = 0.0
    #: Setup+cleanup residual of the baseline runtime — the paper notes
    #: "all job execution times do not add up to the total because we do
    #: not list the cleanup or setup times"; this is that residual
    #: (total minus the four phase columns) from Table II's "none" rows.
    setup_baseline_s: float = 0.0
    #: Same residual for the SupMR rows (smaller for sort: the persistent
    #: container replaces the biggest teardown/reinit).
    setup_supmr_s: float = 0.0
    #: Bytes written per live intermediate byte when a spill drains the
    #: container through the combiner (1.0 = no combine-on-spill
    #: reduction; hash-style containers are already per-key aggregates so
    #: their drains do not shrink further).
    spill_combine_ratio: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.spill_combine_ratio <= 1.0:
            raise ConfigError(
                f"{self.name}: spill_combine_ratio must be in (0, 1]"
            )
        for field in (
            "ingest_bw", "map_bw_per_ctx", "parse_bw_single",
            "sort_block_bw", "merge_scan_bw",
        ):
            if getattr(self, field) <= 0:
                raise ConfigError(f"{self.name}: {field} must be positive")
        if self.intermediate_ratio < 0 or self.reduce_s_per_gb < 0:
            raise ConfigError(f"{self.name}: negative cost parameter")

    # -- derived phase costs -------------------------------------------------

    def map_wall_s(self, nbytes: float, contexts: int) -> float:
        """Wall-clock of one map wave over ``nbytes`` with ``contexts`` threads."""
        return nbytes / (contexts * self.map_bw_per_ctx)

    def reduce_wall_s(
        self, input_bytes: float, map_rounds: int, chunk_bytes: float | None = None
    ) -> float:
        """Reduce phase: baseline cost + persistent-container round penalty."""
        extra_rounds = max(0, map_rounds - 1)
        per_round = self.container_round_penalty_s
        if chunk_bytes is not None:
            per_round += self.container_round_penalty_s_per_gb * (chunk_bytes / GB_SI)
        return self.reduce_s_per_gb * (input_bytes / GB_SI) + per_round * extra_rounds

    def intermediate_bytes(self, input_bytes: float) -> float:
        """Bytes of intermediate k/v data for an input size."""
        return input_bytes * self.intermediate_ratio

    def pway_scan_bw(self, n_runs: int) -> float:
        """Per-thread p-way merge rate: 2-way scan slowed by the heap's
        log2(k) comparisons per element."""
        return self.merge_scan_bw / max(1.0, math.log2(max(2, n_runs)))


#: Word count on the paper testbed (derivations in the module docstring).
PAPER_WORDCOUNT = AppCostProfile(
    name="wordcount",
    ingest_bw=383.8 * MB_SI,
    map_bw_per_ctx=71.9 * MB_SI,
    parse_bw_single=173.7 * MB_SI,
    reduce_s_per_gb=0.03 / 155.0,
    container_round_penalty_s=6.62e-3,
    container_round_penalty_s_per_gb=0.201e-3,
    # ~4 MB of distinct-word cells for a 155 GB Zipf corpus; sized so the
    # merge column lands at Table II's ~0.01 s noise level.
    intermediate_ratio=2.5e-5,
    sort_block_bw=37.7 * MB_SI,
    merge_scan_bw=821.6 * MB_SI,
    round_overhead_s=0.0125,
    # Table II word count: 471.75 - (403.90+67.41+0.03+0.01) = 0.40;
    # 407.58 - (406.14+1.08+0.01) = 0.35.
    setup_baseline_s=0.40,
    setup_supmr_s=0.35,
)

#: Sort on the paper testbed.
PAPER_SORT = AppCostProfile(
    name="sort",
    ingest_bw=328.3 * MB_SI,
    map_bw_per_ctx=296.2 * MB_SI,
    parse_bw_single=173.7 * MB_SI,
    reduce_s_per_gb=7.72 / 60.0,
    container_round_penalty_s=22e-3,
    intermediate_ratio=1.0,
    sort_block_bw=37.7 * MB_SI,
    merge_scan_bw=821.6 * MB_SI,
    round_overhead_s=0.235,
    # Table II sort: 397.31 - (182.78+6.33+7.72+191.23) = 9.25;
    # 272.58 - (196.86+9.04+61.14) = 5.54.
    setup_baseline_s=9.25,
    setup_supmr_s=5.54,
)


@dataclass(frozen=True)
class SpillPlan:
    """How a memory budget fragments an intermediate set into runs.

    The out-of-core container spills exactly when the live intermediate
    set reaches the budget, so ``n_runs = floor(inter/budget)`` budget-
    sized runs hit the disk (shrunk by the app's combine-on-spill ratio)
    and the remainder stays resident for the merge.
    """

    n_runs: int  # spilled run files
    run_bytes: float  # bytes written per run (post-combine)
    spilled_bytes: float  # total bytes written across all runs
    resident_bytes: float  # live intermediate left in memory at merge time


def plan_spills(
    inter_bytes: float, budget_bytes: float | None, combine_ratio: float = 1.0
) -> SpillPlan:
    """Predict the spill behaviour of ``inter_bytes`` under a byte budget.

    ``budget_bytes=None`` (or a budget the intermediate set never
    reaches) yields the in-memory plan: zero runs, everything resident.
    """
    if budget_bytes is None or inter_bytes < budget_bytes:
        return SpillPlan(0, 0.0, 0.0, inter_bytes)
    if budget_bytes <= 0:
        raise ConfigError("memory budget must be positive")
    n_runs = int(inter_bytes // budget_bytes)
    run_bytes = budget_bytes * combine_ratio
    return SpillPlan(
        n_runs=n_runs,
        run_bytes=run_bytes,
        spilled_bytes=n_runs * run_bytes,
        resident_bytes=inter_bytes - n_runs * budget_bytes,
    )


def merge_passes(n_sources: int, fan_in: int) -> int:
    """Consolidation passes before one final merge fits the fan-in.

    Mirrors the external merge: while more than ``fan_in`` sources
    remain, the oldest ``fan_in`` are merged into one on-disk run
    (net change ``fan_in - 1`` per pass).
    """
    if fan_in < 2:
        raise ConfigError("merge fan-in must be at least 2")
    if n_sources < 0:
        raise ConfigError("n_sources must be non-negative")
    passes = 0
    remaining = n_sources
    while remaining > fan_in:
        remaining -= fan_in - 1
        passes += 1
    return passes


def chunk_sizes(total_bytes: float, chunk_bytes: float | None) -> list[float]:
    """Byte sizes of the ingest chunk stream (None => one whole-input chunk)."""
    if total_bytes <= 0:
        raise ConfigError("total_bytes must be positive")
    if chunk_bytes is None:
        return [total_bytes]
    if chunk_bytes <= 0:
        raise ConfigError("chunk_bytes must be positive")
    sizes: list[float] = []
    remaining = total_bytes
    while remaining > 1e-6:
        take = min(chunk_bytes, remaining)
        sizes.append(take)
        remaining -= take
    return sizes
