"""Simulated MapReduce runtimes on the simulated testbed.

These drive :mod:`repro.simhw` machines through the same phase structure
as the executable runtimes, using the calibrated per-application cost
model in :mod:`repro.simrt.costmodel` — this is how the repository
regenerates the paper's 60-155 GB experiments (Table II, Figs. 1/3/5/6/7)
on hardware that cannot natively run them (see DESIGN.md, substitution
note).
"""

from repro.simrt.costmodel import (
    PAPER_SORT,
    PAPER_WORDCOUNT,
    AppCostProfile,
    GB_SI,
    MB_SI,
)
from repro.simrt.hdfs_case import simulate_hdfs_case_study
from repro.simrt.netmodel import (
    LAN_1G,
    LAN_10G,
    NetProfile,
    crossover_hosts,
    exchange_s,
    multi_host_runtime_s,
    remote_fetch_s,
    speedup,
)
from repro.simrt.openmp_sim import simulate_openmp_sort
from repro.simrt.phases import PhaseSpan, SimJobResult
from repro.simrt.phoenix_sim import simulate_phoenix_job
from repro.simrt.supmr_sim import simulate_supmr_job

__all__ = [
    "AppCostProfile",
    "PAPER_WORDCOUNT",
    "PAPER_SORT",
    "MB_SI",
    "GB_SI",
    "PhaseSpan",
    "SimJobResult",
    "NetProfile",
    "LAN_1G",
    "LAN_10G",
    "remote_fetch_s",
    "exchange_s",
    "multi_host_runtime_s",
    "speedup",
    "crossover_hosts",
    "simulate_phoenix_job",
    "simulate_supmr_job",
    "simulate_openmp_sort",
    "simulate_hdfs_case_study",
]
