"""Analytic scale-out (Hadoop-shaped) comparator.

The paper's conclusion frames utilization and energy as "significant
factors in comparing this approach to an 'equivalent' scale-out
implementation", citing the scale-up-vs-scale-out studies [2], [7].
This module provides that comparator: a deliberately simple, documented
analytic model of an N-node Hadoop-style job, good enough to place the
scale-up numbers in context (absolute fidelity to any particular cluster
is out of scope — the model's role is the crossover shape).

Model (per phase, all nodes symmetric, data pre-distributed in HDFS with
node-local reads — Hadoop's happy path):

* **map** — each node streams its 1/N share off local disk while mapping
  (Hadoop pipelines record reading into map), so the phase is limited by
  the slower of local disk and the node's map throughput;
* **shuffle** — the intermediate set crosses the network once; each node
  receives ~1/N of it through its NIC (full-bisection assumption); the
  paper notes this is "notoriously slow on scale-out";
* **reduce+merge** — each node sorts/merges its share at the same rates
  the scale-up profile uses, scaled to the node's context count;
* a fixed per-job coordination overhead (job setup, heartbeats,
  straggler slack) that scale-up does not pay.

Energy: node power model x N x job duration.

The module also models the *sharded* scale-up runtime
(:mod:`repro.shard`) analytically — :class:`ShardedSpec` /
:func:`estimate_sharded_job` — so the fault-tolerance tax (the
intermediate-state exchange, respawn and straggler slack) can be placed
against both the plain scale-up run and the Hadoop-shaped cluster.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.simrt.costmodel import AppCostProfile, GB_SI, MB_SI


@dataclass(frozen=True)
class ScaleOutSpec:
    """One commodity worker node and the cluster fabric."""

    nodes: int = 16
    contexts_per_node: int = 8
    node_disk_bw: float = 100 * MB_SI
    node_nic_bw: float = 119 * MB_SI  # 1 Gbit goodput
    node_idle_w: float = 80.0
    node_active_w_per_ctx: float = 6.0
    #: Fixed coordination overhead per job (setup, heartbeats, stragglers).
    coordination_s: float = 15.0

    def __post_init__(self) -> None:
        if self.nodes < 1 or self.contexts_per_node < 1:
            raise ConfigError("nodes and contexts_per_node must be >= 1")
        if min(self.node_disk_bw, self.node_nic_bw) <= 0:
            raise ConfigError("node bandwidths must be positive")


@dataclass(frozen=True)
class ScaleOutEstimate:
    """Phase breakdown and energy for one scale-out job."""

    nodes: int
    map_s: float
    shuffle_s: float
    reduce_merge_s: float
    coordination_s: float
    mean_power_w: float

    @property
    def total_s(self) -> float:
        return self.map_s + self.shuffle_s + self.reduce_merge_s + self.coordination_s

    @property
    def energy_j(self) -> float:
        return self.mean_power_w * self.total_s

    @property
    def energy_wh(self) -> float:
        return self.energy_j / 3600.0


def estimate_scaleout_job(
    profile: AppCostProfile,
    input_bytes: float,
    spec: ScaleOutSpec | None = None,
) -> ScaleOutEstimate:
    """Analytic phase times for the Hadoop-shaped equivalent job.

    Per-context application rates are taken from the scale-up
    ``profile`` — the same code doing the same work per byte — so the
    comparison isolates the architecture, not the implementation.
    """
    spec = spec or ScaleOutSpec()
    if input_bytes <= 0:
        raise ConfigError("input_bytes must be positive")
    share = input_bytes / spec.nodes

    # Map: streaming read + map, pipelined; slower stage governs.
    node_map_bw = profile.map_bw_per_ctx * spec.contexts_per_node
    map_s = share / min(spec.node_disk_bw, node_map_bw)

    # Shuffle: intermediate set crosses the fabric once, NIC-bound.
    inter = profile.intermediate_bytes(input_bytes)
    shuffle_s = (inter / spec.nodes) / spec.node_nic_bw

    # Reduce + merge on each node's share (p-way single pass; Hadoop's
    # reducers merge-sort streams, modelled at the profile's scan rates).
    inter_share = inter / spec.nodes
    reduce_s = profile.reduce_s_per_gb * (share / GB_SI)
    block_sort_s = inter_share / spec.contexts_per_node / profile.sort_block_bw
    pway_s = inter_share / (
        spec.contexts_per_node * profile.pway_scan_bw(spec.contexts_per_node)
    )
    reduce_merge_s = reduce_s + block_sort_s + pway_s

    # Power: map/reduce phases run hot, shuffle mostly idles the CPUs.
    total = map_s + shuffle_s + reduce_merge_s + spec.coordination_s
    busy_fraction = (map_s + reduce_merge_s) / total if total > 0 else 0.0
    node_power = (spec.node_idle_w
                  + busy_fraction * spec.contexts_per_node
                  * spec.node_active_w_per_ctx)
    return ScaleOutEstimate(
        nodes=spec.nodes,
        map_s=map_s,
        shuffle_s=shuffle_s,
        reduce_merge_s=reduce_merge_s,
        coordination_s=spec.coordination_s,
        mean_power_w=node_power * spec.nodes,
    )


@dataclass(frozen=True)
class ShardedSpec:
    """The sharded scale-up runtime's split, exchange and fault knobs.

    One machine, ``contexts`` hardware contexts split evenly across
    ``shards`` supervised worker process groups (``repro.shard``).  The
    exchange moves the intermediate set between shard outboxes through
    the local disk at ``exchange_bw``; fault knobs describe *expected*
    failures, so the estimate is the mean job time, not a tail bound.
    """

    shards: int = 4
    contexts: int = 32
    #: Run-file exchange rate (write + CRC-verified adoption read).
    exchange_bw: float = 500 * MB_SI
    #: Probability any given shard worker dies once during the map phase.
    shard_loss_prob: float = 0.0
    #: Coordinator cost per death: fork + re-dispatch (+ journal restore).
    respawn_overhead_s: float = 0.5
    #: Whether completed ingest rounds are journaled; without a journal a
    #: respawned shard redoes its whole map share, with one it resumes.
    journaled: bool = True
    #: Probability any given shard straggles, and how much slower it runs.
    straggler_prob: float = 0.0
    straggler_slowdown: float = 1.5
    #: Speculative twins: a straggler is raced by a fresh copy launched at
    #: roughly the healthy-shard finish time, capping the tail at ~2x.
    speculative: bool = True
    #: Fixed coordinator overhead (spawn, heartbeat sweeps, lease checks).
    coordination_s: float = 0.5

    def __post_init__(self) -> None:
        if self.shards < 1 or self.contexts < 1:
            raise ConfigError("shards and contexts must be >= 1")
        if self.exchange_bw <= 0:
            raise ConfigError("exchange_bw must be positive")
        if not 0.0 <= self.shard_loss_prob <= 1.0:
            raise ConfigError("shard_loss_prob must be a probability")
        if not 0.0 <= self.straggler_prob <= 1.0:
            raise ConfigError("straggler_prob must be a probability")
        if self.straggler_slowdown < 1.0:
            raise ConfigError("straggler_slowdown must be >= 1.0")

    @property
    def contexts_per_shard(self) -> int:
        """Contexts each shard's mapper pool gets (floor, at least 1)."""
        return max(1, self.contexts // self.shards)


@dataclass(frozen=True)
class ShardedEstimate:
    """Expected phase breakdown for one sharded scale-up job."""

    shards: int
    map_s: float
    exchange_s: float
    reduce_merge_s: float
    recovery_s: float
    coordination_s: float

    @property
    def total_s(self) -> float:
        return (self.map_s + self.exchange_s + self.reduce_merge_s
                + self.recovery_s + self.coordination_s)


def estimate_sharded_job(
    profile: AppCostProfile,
    input_bytes: float,
    spec: ShardedSpec | None = None,
) -> ShardedEstimate:
    """Expected phase times for the fault-tolerant sharded runtime.

    All shards share one machine, so the map phase is bounded below by
    the single ingest device (``profile.ingest_bw``) regardless of the
    shard count — sharding buys fault isolation, not ingest bandwidth.
    The exchange writes the intermediate set as run files and reads it
    back under CRC verification (two passes at ``exchange_bw``).
    Failure costs enter as expectations: each shard dies with
    ``shard_loss_prob`` and pays a respawn (plus redoing half its map
    share on average when not journaled); a straggling shard stretches
    the map tail by ``straggler_slowdown``, capped near 2x when a
    speculative twin races it from the healthy-shard finish line.
    """
    spec = spec or ShardedSpec()
    if input_bytes <= 0:
        raise ConfigError("input_bytes must be positive")
    share = input_bytes / spec.shards

    # Map: per-shard mapper pools, all fed by one ingest device.
    shard_map_s = profile.map_wall_s(share, spec.contexts_per_shard)
    map_s = max(input_bytes / profile.ingest_bw, shard_map_s)

    # Exchange: the intermediate set crosses the local disk twice
    # (outbox write, CRC-verified adoption read).
    inter = profile.intermediate_bytes(input_bytes)
    exchange_s = 2.0 * inter / spec.exchange_bw

    # Reduce + merge over each shard's owned partitions, concurrent.
    inter_share = inter / spec.shards
    reduce_s = profile.reduce_s_per_gb * (share / GB_SI)
    block_sort_s = (inter_share / spec.contexts_per_shard
                    / profile.sort_block_bw)
    pway_s = inter_share / (
        spec.contexts_per_shard * profile.pway_scan_bw(spec.shards)
    )
    reduce_merge_s = reduce_s + block_sort_s + pway_s

    # Expected recovery: respawns, journal-dependent redo, straggler tail.
    expected_losses = spec.shards * spec.shard_loss_prob
    redo_s = 0.0 if spec.journaled else 0.5 * shard_map_s
    recovery_s = expected_losses * (spec.respawn_overhead_s + redo_s)
    if spec.straggler_prob > 0.0 and spec.shards > 1:
        any_straggler = 1.0 - (1.0 - spec.straggler_prob) ** spec.shards
        stretch = spec.straggler_slowdown
        if spec.speculative:
            # The twin starts when the healthy shards finish (~1x) and
            # redoes the share from scratch; first result wins.
            stretch = min(stretch, 2.0)
        recovery_s += any_straggler * (stretch - 1.0) * shard_map_s

    return ShardedEstimate(
        shards=spec.shards,
        map_s=map_s,
        exchange_s=exchange_s,
        reduce_merge_s=reduce_merge_s,
        recovery_s=recovery_s,
        coordination_s=spec.coordination_s,
    )


def crossover_nodes(
    profile: AppCostProfile,
    input_bytes: float,
    scaleup_total_s: float,
    spec: ScaleOutSpec | None = None,
    max_nodes: int = 1024,
) -> int | None:
    """Smallest cluster size whose estimated total beats the scale-up run.

    Returns None if no size up to ``max_nodes`` wins (shuffle and
    coordination floors can make scale-out never catch up for
    merge-light jobs).
    """
    spec = spec or ScaleOutSpec()
    for n in range(1, max_nodes + 1):
        candidate = ScaleOutSpec(
            nodes=n,
            contexts_per_node=spec.contexts_per_node,
            node_disk_bw=spec.node_disk_bw,
            node_nic_bw=spec.node_nic_bw,
            node_idle_w=spec.node_idle_w,
            node_active_w_per_ctx=spec.node_active_w_per_ctx,
            coordination_s=spec.coordination_s,
        )
        if estimate_scaleout_job(profile, input_bytes, candidate).total_s \
                < scaleup_total_s:
            return n
    return None
