"""Simulated OpenMP sort baseline (Fig. 3).

Sequential ingest, **single-threaded** parse into key/value pairs, then
the fully parallel multiway mergesort.  The compute (sort) phase is far
shorter than scale-up MapReduce's merge phase, but the serial parse makes
total time-to-result slower — the paper's argument for why the MapReduce
abstraction wins on scale-up despite a slower compute phase.
"""

from __future__ import annotations

from repro.simhw.events import Simulator
from repro.simhw.machine import ScaleUpMachine, paper_machine
from repro.simrt.costmodel import AppCostProfile
from repro.simrt.phases import PhaseLog, SimJobResult, ingest, merge_pway
from repro.core.result import PhaseTimings


def simulate_openmp_sort(
    profile: AppCostProfile,
    input_bytes: float,
    monitor_interval: float = 1.0,
    machine: ScaleUpMachine | None = None,
) -> SimJobResult:
    """Ingest -> 1-thread parse -> parallel sort, on the simulated testbed."""
    if machine is None:
        sim = Simulator()
        machine = paper_machine(sim, monitor_interval=monitor_interval)
    else:
        sim = machine.sim
    log = PhaseLog(machine)

    def job():
        t0 = sim.now
        yield from ingest(machine, input_bytes, profile)
        log.record("read", t0)

        # Single-threaded parse: one busy context for the whole input.
        t0 = sim.now
        yield from machine.compute(input_bytes / profile.parse_bw_single)
        log.record("parse", t0)

        # The parallel sort: block sorts + one p-way pass (what
        # __gnu_parallel::sort / OpenMP's sort does).
        t0 = sim.now
        yield from merge_pway(
            machine, profile.intermediate_bytes(input_bytes), profile
        )
        log.record("sort", t0)

    machine.monitor.start()
    proc = sim.process(job(), name="openmp-sim")
    proc.callbacks.append(lambda _ev: machine.monitor.stop())
    sim.run()

    timings = PhaseTimings(
        read_s=log.duration("read"),
        map_s=log.duration("parse"),  # the parse fills the map column
        reduce_s=0.0,
        merge_s=log.duration("sort"),
        total_s=log.spans[-1].end,
        read_map_combined=False,
    )
    return SimJobResult(
        app=profile.name,
        runtime="openmp",
        input_bytes=input_bytes,
        chunk_bytes=None,
        timings=timings,
        samples=machine.monitor.samples,
        spans=log.spans,
        extras={"parse_threads": 1},
    )
