"""Simulated SupMR job at paper scale.

The n+1-round ingest chunk pipeline over the simulated machine: the
first chunk ingests serially, then each round overlaps the ingest of
chunk i+1 with a full map wave on chunk i (plus the calibrated per-round
overhead), a final map wave handles the last chunk, and the job finishes
with reduce (charged the persistent-container round penalty) and the
p-way merge.  Reproduces the chunked rows of Table II and Figs. 5b/5c/6.
"""

from __future__ import annotations

from typing import Any

from repro.core.result import PhaseTimings, RoundTiming
from repro.errors import ConfigError
from repro.faults.log import ACTION_RESPAWNED, ACTION_SPECULATIVE
from repro.faults.plan import (
    SITE_SIM_STRAGGLER,
    SITE_SIM_WORKER_CRASH,
    FaultPlan,
)
from repro.faults.policy import RecoveryPolicy
from repro.faults.simdriver import SimFaultDriver
from repro.simhw.cpu import CpuClass
from repro.simhw.events import Simulator
from repro.simhw.machine import ScaleUpMachine, paper_machine
from repro.simhw.process import AllOf
from repro.simrt.costmodel import AppCostProfile, chunk_sizes
from repro.simrt.phases import (
    PhaseLog,
    SimJobResult,
    ingest,
    map_wave,
    merge_pairwise,
    merge_pway,
    reduce_phase,
    spill_read,
    spill_rewrite,
    spill_write,
)


def simulate_supmr_job(
    profile: AppCostProfile,
    input_bytes: float,
    chunk_bytes: float,
    monitor_interval: float = 1.0,
    machine: ScaleUpMachine | None = None,
    source: Any = None,
    merge_algorithm: str = "pway",
    pipelined: bool = True,
    memory_budget: float | None = None,
    spill_fan_in: int = 8,
    fault_plan: FaultPlan | None = None,
    recovery: RecoveryPolicy | None = None,
) -> SimJobResult:
    """Run the SupMR pipeline on the (default: paper) simulated machine.

    ``pipelined=False`` runs the identical round structure without
    overlap (ingest then map per round) — the pipeline-ablation knob.
    ``memory_budget`` caps the live intermediate set: whenever a map
    round pushes it to the budget, the container is sorted and spilled
    to the machine's disk ("spill" spans), and before the merge the runs
    are consolidated to ``spill_fan_in`` sources and streamed back.

    A ``fault_plan`` arms the simulated-hardware sites: timed disk
    slowdowns/failures strike the machine via
    :class:`~repro.faults.simdriver.SimFaultDriver`, and the
    ``sim.map.straggler`` site slows one mapper per afflicted wave —
    detected against ``recovery.straggler_threshold`` and, when
    ``recovery.speculative``, cut short by a speculative re-execution
    that starts at detection time.  The resulting
    :class:`~repro.faults.log.FaultLog` lands in ``extras['fault_log']``.
    """
    if memory_budget is not None and memory_budget <= 0:
        raise ConfigError("memory_budget must be positive")
    if spill_fan_in < 2:
        raise ConfigError("spill_fan_in must be at least 2")
    if machine is None:
        sim = Simulator()
        machine = paper_machine(sim, monitor_interval=monitor_interval)
    else:
        sim = machine.sim
    log = PhaseLog(machine)
    sizes = chunk_sizes(input_bytes, chunk_bytes)

    injector = None
    if fault_plan is not None:
        policy = recovery or RecoveryPolicy()
        injector = fault_plan.arm(policy, clock=lambda: sim.now)
        SimFaultDriver(fault_plan, injector.log, machine=machine).arm()

    def straggler_extra(wave_index: int, wave_bytes: float) -> float:
        """Extra wall-clock one slow mapper adds to this wave, if any."""
        if injector is None:
            return 0.0
        decision = injector.check(SITE_SIM_STRAGGLER, scope=(wave_index,))
        if decision is None:
            return 0.0
        policy = injector.policy
        base = profile.map_wall_s(wave_bytes, machine.spec.contexts)
        factor = decision.spec.factor if decision.spec.factor is not None else 3.0
        slow = base * factor
        if policy.speculative:
            # The scheduler notices the task past threshold x base and
            # launches a fresh copy; the wave ends when the copy does.
            detected = base * policy.straggler_threshold
            effective = min(slow, detected + base)
            if effective < slow:
                injector.log.record(
                    SITE_SIM_STRAGGLER, ACTION_SPECULATIVE,
                    f"wave {wave_index}: speculative copy saved "
                    f"{slow - effective:.3g}s "
                    f"({slow:.3g}s straggler cut to {effective:.3g}s)",
                    scope=str(wave_index),
                )
        else:
            effective = slow
        return max(0.0, effective - base)

    def crash_extra(wave_index: int, wave_bytes: float) -> float:
        """Extra wall-clock one crashed-and-respawned mapper adds.

        The ``sim.worker.crash`` site kills one worker mid-wave; the
        exit is detected immediately (no lease wait), the worker is
        respawned, and its task re-executes from scratch — the wave ends
        one task-time late.  ``factor`` scales the lost fraction of the
        task (default: crash at the very end, a full re-execution).
        """
        if injector is None:
            return 0.0
        decision = injector.check(SITE_SIM_WORKER_CRASH, scope=(wave_index,))
        if decision is None:
            return 0.0
        base = profile.map_wall_s(wave_bytes, machine.spec.contexts)
        fraction = (
            min(1.0, decision.spec.factor)
            if decision.spec.factor is not None else 1.0
        )
        lost = base * fraction
        injector.log.record(
            SITE_SIM_WORKER_CRASH, ACTION_RESPAWNED,
            f"wave {wave_index}: worker crashed {fraction:.0%} through its "
            f"task; respawn re-executes {lost:.3g}s of map work",
            scope=str(wave_index),
        )
        return lost

    def wave_extra(wave_index: int, wave_bytes: float) -> float:
        """Total slowdown a wave suffers from stragglers and crashes."""
        return (
            straggler_extra(wave_index, wave_bytes)
            + crash_extra(wave_index, wave_bytes)
        )
    rounds: list[RoundTiming] = []
    spill = {"live": 0.0, "runs": 0, "spilled": 0.0,
             "passes": 0, "rewritten": 0.0}

    def absorb_and_spill(mapped_bytes: float):
        # Intermediate from the finished wave lands in the container;
        # spill budget-sized runs while the live set is at/over budget.
        spill["live"] += profile.intermediate_bytes(mapped_bytes)
        while memory_budget is not None and spill["live"] >= memory_budget:
            t0 = sim.now
            yield from spill_write(machine, memory_budget, profile)
            log.record("spill", t0)
            spill["live"] -= memory_budget
            spill["runs"] += 1
            spill["spilled"] += memory_budget * profile.spill_combine_ratio

    def external_merge_prep():
        # Consolidate runs down to the fan-in, then stream everything
        # back for the final merge pass.
        if not spill["runs"]:
            return
        t0 = sim.now
        run_out = memory_budget * profile.spill_combine_ratio
        remaining = spill["runs"] + 1  # spilled runs + resident remainder
        while remaining > spill_fan_in:
            consolidated = spill_fan_in * run_out
            yield from spill_rewrite(machine, consolidated)
            spill["rewritten"] += consolidated
            remaining -= spill_fan_in - 1
            spill["passes"] += 1
        yield from spill_read(machine, spill["spilled"])
        log.record("spill", t0)

    def job():
        t0 = sim.now
        # Round 0: serial ingest of the first chunk.
        r0 = sim.now
        yield from ingest(machine, sizes[0], profile, source)
        rounds.append(RoundTiming(0, sim.now - r0, 0.0, int(sizes[0])))

        # Overlapped rounds: ingest chunk i while mapping chunk i-1.
        for i in range(1, len(sizes)):
            r0 = sim.now
            extra = wave_extra(i - 1, sizes[i - 1])
            if pipelined:
                ing = sim.process(
                    ingest(machine, sizes[i], profile, source), name=f"ingest{i}"
                )
                mw = sim.process(
                    map_wave(machine, sizes[i - 1], profile, straggler_s=extra),
                    name=f"mapwave{i-1}",
                )
                yield AllOf(sim, [ing, mw])
            else:
                # Ablation: same round structure, no overlap.
                yield from map_wave(
                    machine, sizes[i - 1], profile, straggler_s=extra
                )
                yield from ingest(machine, sizes[i], profile, source)
            yield from absorb_and_spill(sizes[i - 1])
            yield from machine.compute(profile.round_overhead_s, CpuClass.SYS)
            rounds.append(
                RoundTiming(i, sim.now - r0, sim.now - r0, int(sizes[i]))
            )

        # Final round: map the last chunk.
        r0 = sim.now
        yield from map_wave(
            machine, sizes[-1], profile,
            straggler_s=wave_extra(len(sizes) - 1, sizes[-1]),
        )
        yield from absorb_and_spill(sizes[-1])
        rounds.append(RoundTiming(len(sizes), 0.0, sim.now - r0, 0))
        log.record("read_map", t0)

        t0 = sim.now
        yield from reduce_phase(
            machine, input_bytes, profile, map_rounds=len(sizes),
            chunk_bytes=chunk_bytes,
        )
        log.record("reduce", t0)

        yield from external_merge_prep()

        t0 = sim.now
        inter = profile.intermediate_bytes(input_bytes)
        if merge_algorithm == "pway":
            yield from merge_pway(machine, inter, profile)
        else:
            yield from merge_pairwise(machine, inter, profile)
        log.record("merge", t0)

        t0 = sim.now
        yield from machine.compute(profile.setup_supmr_s, CpuClass.SYS)
        log.record("cleanup", t0)

    machine.monitor.start()
    proc = sim.process(job(), name="supmr-sim")
    proc.callbacks.append(lambda _ev: machine.monitor.stop())
    sim.run()

    timings = PhaseTimings(
        read_s=log.duration("read_map"),
        map_s=0.0,
        reduce_s=log.duration("reduce"),
        merge_s=log.duration("merge"),
        total_s=log.spans[-1].end,
        read_map_combined=True,
        rounds=tuple(rounds),
        spill_s=log.duration("spill"),
    )
    extras = {
        "merge_algorithm": merge_algorithm,
        "n_chunks": len(sizes),
        "pipelined": pipelined,
    }
    if injector is not None:
        extras["fault_log"] = injector.log
        extras["faults_injected"] = injector.log.injected
    if memory_budget is not None:
        extras.update(
            memory_budget=memory_budget,
            n_spill_runs=spill["runs"],
            spilled_bytes=spill["spilled"],
            spill_fan_in=spill_fan_in,
            spill_merge_passes=spill["passes"],
            spill_rewritten_bytes=spill["rewritten"],
        )
    return SimJobResult(
        app=profile.name,
        runtime="supmr",
        input_bytes=input_bytes,
        chunk_bytes=chunk_bytes,
        timings=timings,
        samples=machine.monitor.samples,
        spans=log.spans,
        extras=extras,
    )
