"""Non-MapReduce baselines the paper compares against."""

from repro.baselines.openmp_sort import OpenMPSortResult, openmp_sort

__all__ = ["openmp_sort", "OpenMPSortResult"]
