"""The OpenMP sort baseline (paper section II, Fig. 3).

Structure the paper describes: ingest the file and parse it into
key-value pairs **sequentially, with one thread**, then run the parallel
multiway mergesort.  Its compute (sort) phase beats scale-up MapReduce's,
but the sequential ingest+parse prefix makes its *time-to-result* slower
— MapReduce's map phase parses in parallel for free.

This executable version preserves that structure on real bytes; the
paper-scale timing shape is modelled in :mod:`repro.simrt.openmp_sim`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.io.records import TeraRecordCodec
from repro.sortlib.parallel_sort import parallel_sort


@dataclass(frozen=True)
class OpenMPSortResult:
    """Output plus the three-phase timing split of Fig. 3."""

    output: list[tuple[bytes, bytes]]
    ingest_s: float
    parse_s: float
    sort_s: float

    @property
    def total_s(self) -> float:
        return self.ingest_s + self.parse_s + self.sort_s

    @property
    def compute_s(self) -> float:
        """The phase the paper calls 'compute' (the sort itself)."""
        return self.sort_s


def openmp_sort(
    inputs: Sequence[str | Path],
    parallelism: int = 4,
    codec: TeraRecordCodec | None = None,
) -> OpenMPSortResult:
    """Sequential ingest + sequential parse + parallel multiway mergesort."""
    codec = codec or TeraRecordCodec()

    t0 = time.perf_counter()
    blobs = [Path(p).read_bytes() for p in inputs]
    ingest_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    pairs: list[tuple[bytes, bytes]] = []
    for blob in blobs:
        pairs.extend(codec.iter_pairs(blob))
    parse_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    ordered = parallel_sort(pairs, parallelism, key=lambda kv: kv[0])
    sort_s = time.perf_counter() - t0

    return OpenMPSortResult(
        output=ordered, ingest_s=ingest_s, parse_s=parse_s, sort_s=sort_s
    )
