"""Process exit codes shared by the one-shot CLI and the job service.

Scripts branch on these, so they are part of the public contract:

* ``0`` — success;
* ``1`` — runtime failure (an unexpected :class:`~repro.errors.ReproError`);
* ``2`` — usage/configuration error (bad flags, invalid option combos);
* ``3`` — fault budget exhausted (:class:`~repro.errors.RetryExhausted`
  or :class:`~repro.errors.QuarantineOverflow`);
* ``4`` — the job deadline expired and a partial (DEGRADED) result was
  returned.

``repro submit --wait`` and ``repro result`` exit with the same code the
equivalent one-shot invocation would have, so automation cannot tell the
two paths apart.
"""

from __future__ import annotations

from repro.errors import (
    ChunkingError,
    ConfigError,
    PeerUnreachable,
    QuarantineOverflow,
    ReproError,
    RetryExhausted,
    WorkloadError,
)

EXIT_OK = 0
EXIT_FAILURE = 1
EXIT_USAGE = 2
EXIT_FAULTS = 3
EXIT_DEADLINE = 4


def classify_exception(exc: BaseException) -> int:
    """The exit code a library error maps to."""
    if isinstance(exc, (ConfigError, WorkloadError, ChunkingError,
                        PeerUnreachable)):
        # bad flags, invalid option combos, unusable inputs, or a
        # --peers entry with no agent behind it at startup (mid-job
        # peer loss is absorbed by the fallback ladder and never
        # raises this)
        return EXIT_USAGE
    if isinstance(exc, (RetryExhausted, QuarantineOverflow)):
        return EXIT_FAULTS
    if isinstance(exc, ReproError):
        return EXIT_FAILURE
    raise exc


def classify_result(counters: "dict[str, object]") -> int:
    """The exit code for a finished job: 0, or 4 when the whole-job
    deadline expired and the result is partial."""
    return EXIT_DEADLINE if counters.get("deadline_expired") else EXIT_OK
