"""``repro.cluster``: the job service's self-healing agent pool.

Glues three existing layers together: the ``supmr agent`` daemons of
:mod:`repro.net`, the long-lived job service of :mod:`repro.service`,
and the QoS allocator of :mod:`repro.qos`.  The registry tracks every
known agent, actively health-checks it between jobs, and hands the
scheduler healthy, load-ordered placements; the health module is the
per-agent ``healthy → suspect → quarantined`` state machine with
flap damping and jittered quarantine backoff.
"""

from repro.cluster.health import (
    HEALTH_STATES,
    STATE_HEALTHY,
    STATE_QUARANTINED,
    STATE_SUSPECT,
    AgentHealth,
    HealthPolicy,
)
from repro.cluster.registry import AgentRecord, AgentRegistry

__all__ = [
    "AgentHealth",
    "AgentRecord",
    "AgentRegistry",
    "HealthPolicy",
    "HEALTH_STATES",
    "STATE_HEALTHY",
    "STATE_QUARANTINED",
    "STATE_SUSPECT",
]
