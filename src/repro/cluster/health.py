"""Per-agent health state machine: ``healthy → suspect → quarantined``.

Pure bookkeeping — no sockets, no threads, no wall clock of its own.
The registry feeds probe outcomes in (``record_success`` /
``record_failure``) with an explicit ``now``, and reads dispatchability
back out, so every transition is unit-testable with a fake clock and
the whole machine replays deterministically.

The states:

* **healthy** — probes answer; the scheduler may place work here.
  Re-probed every ``probe_interval_s``.
* **suspect** — a probe failed (or a runner reported the host lost
  mid-job).  No new work lands here, but the agent gets quick retries
  (``suspect_retry_s``): one success restores it, ``quarantine_after``
  consecutive failures condemn it.
* **quarantined** — repeatedly failing *or* flapping.  Re-probes back
  off exponentially with deterministic per-agent jitter
  (:func:`repro.util.backoff.exponential_jitter` seeded from the
  address), so a large pool of dead agents does not synchronize its
  probe storms.  Recovery demands ``recover_after`` consecutive
  successful probes — one lucky pong does not un-quarantine a flapper.

Flap damping: every ``healthy → suspect`` fall counts as one flap, and
an agent that accumulates ``flap_quarantine`` of them goes straight to
quarantine on its next fall instead of bouncing through suspect again —
the registry stops handing work to a host that keeps coming back just
long enough to lose it.  A full quarantine recovery clears the tally.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.util.backoff import exponential_jitter
from repro.util.hashing import stable_hash

#: Probes answer; placeable.
STATE_HEALTHY = "healthy"
#: Last probe failed (or the runner reported the host lost); not
#: placeable, retried quickly.
STATE_SUSPECT = "suspect"
#: Condemned (consecutive failures or flapping); re-probed on backoff.
STATE_QUARANTINED = "quarantined"

HEALTH_STATES = (STATE_HEALTHY, STATE_SUSPECT, STATE_QUARANTINED)


@dataclass(frozen=True)
class HealthPolicy:
    """Knobs for the probe cadence and the state transitions."""

    #: Seconds between probes of a healthy agent.
    probe_interval_s: float = 1.0
    #: Seconds between the quick retries of a suspect agent.
    suspect_retry_s: float = 0.25
    #: Consecutive failures that turn suspect into quarantined.
    quarantine_after: int = 3
    #: Consecutive successes a quarantined agent needs to recover.
    recover_after: int = 2
    #: ``healthy → suspect`` falls before the next fall quarantines.
    flap_quarantine: int = 3
    #: Base / cap of the quarantined re-probe backoff.
    backoff_base_s: float = 0.5
    backoff_cap_s: float = 15.0

    def __post_init__(self) -> None:
        if self.probe_interval_s <= 0:
            raise ConfigError("probe_interval_s must be positive")
        if self.suspect_retry_s <= 0:
            raise ConfigError("suspect_retry_s must be positive")
        if self.quarantine_after < 1:
            raise ConfigError("quarantine_after must be >= 1")
        if self.recover_after < 1:
            raise ConfigError("recover_after must be >= 1")
        if self.flap_quarantine < 1:
            raise ConfigError("flap_quarantine must be >= 1")
        if not 0 < self.backoff_base_s <= self.backoff_cap_s:
            raise ConfigError(
                "backoff_base_s must be positive and <= backoff_cap_s"
            )


@dataclass
class AgentHealth:
    """One agent's live health record (owned by the registry)."""

    addr: str
    policy: HealthPolicy = field(default_factory=HealthPolicy)
    #: New agents start *suspect*: unproven hosts take no work until
    #: their first probe answers, so a typo'd ``--agents`` entry never
    #: receives a job.
    state: str = STATE_SUSPECT
    probes: int = 0
    consecutive_failures: int = 0
    consecutive_successes: int = 0
    flaps: int = 0
    backoff_attempt: int = 0
    last_latency_s: "float | None" = None
    last_error: str = ""
    #: Monotonic deadline of the next probe (0.0 = due immediately).
    next_probe_at: float = 0.0

    # -- queries -----------------------------------------------------------

    @property
    def placeable(self) -> bool:
        """May the scheduler hand this agent work right now?"""
        return self.state == STATE_HEALTHY

    def due(self, now: float) -> bool:
        """Is a probe owed at monotonic time ``now``?"""
        return now >= self.next_probe_at

    # -- transitions ---------------------------------------------------------

    def record_success(self, now: float, latency_s: float) -> str:
        """Fold in one successful probe; returns the new state."""
        self.probes += 1
        self.consecutive_failures = 0
        self.last_latency_s = latency_s
        self.last_error = ""
        if self.state == STATE_HEALTHY:
            self.next_probe_at = now + self.policy.probe_interval_s
        elif self.state == STATE_SUSPECT:
            # suspicion was transient — one answer restores service
            self.state = STATE_HEALTHY
            self.consecutive_successes = 0
            self.backoff_attempt = 0
            self.next_probe_at = now + self.policy.probe_interval_s
        else:  # quarantined: demand sustained good behaviour
            self.consecutive_successes += 1
            if self.consecutive_successes >= self.policy.recover_after:
                self.state = STATE_HEALTHY
                self.consecutive_successes = 0
                self.backoff_attempt = 0
                self.flaps = 0  # a full recovery earns a clean slate
                self.next_probe_at = now + self.policy.probe_interval_s
            else:
                self.next_probe_at = now + self.policy.suspect_retry_s
        return self.state

    def record_failure(self, now: float, error: str) -> str:
        """Fold in one failed probe; returns the new state."""
        self.probes += 1
        self.consecutive_successes = 0
        self.consecutive_failures += 1
        self.last_error = error
        if self.state == STATE_HEALTHY:
            self.flaps += 1
            if self.flaps >= self.policy.flap_quarantine:
                self._quarantine(now)
            else:
                self.state = STATE_SUSPECT
                self.next_probe_at = now + self.policy.suspect_retry_s
        elif self.state == STATE_SUSPECT:
            if self.consecutive_failures >= self.policy.quarantine_after:
                self._quarantine(now)
            else:
                self.next_probe_at = now + self.policy.suspect_retry_s
        else:  # already quarantined: back off further
            self.backoff_attempt += 1
            self.next_probe_at = now + self._backoff()
        return self.state

    def mark_lost(self, now: float, reason: str) -> str:
        """A runner reported this host lost mid-job: demote immediately.

        Counts as a flap when the agent was healthy (it was handed work
        and dropped it — the exact behaviour flap damping exists for)
        and pulls the next probe forward to *now* so truth is
        re-established promptly rather than on the old schedule.
        """
        self.last_error = reason
        if self.state == STATE_HEALTHY:
            self.consecutive_failures = max(self.consecutive_failures, 1)
            self.flaps += 1
            if self.flaps >= self.policy.flap_quarantine:
                self._quarantine(now)
                return self.state
            self.state = STATE_SUSPECT
        self.next_probe_at = now
        return self.state

    def _quarantine(self, now: float) -> None:
        self.state = STATE_QUARANTINED
        self.backoff_attempt = 0
        self.next_probe_at = now + self._backoff()

    def _backoff(self) -> float:
        """Jittered quarantine re-probe delay, deterministic per agent."""
        return exponential_jitter(
            self.backoff_attempt,
            base=self.policy.backoff_base_s,
            cap=self.policy.backoff_cap_s,
            seed=stable_hash(self.addr),
        )
