"""The service's agent pool: registration, probing, placement.

One :class:`AgentRegistry` owns every ``supmr agent`` the daemon knows
about — the ``--agents`` bootstrap list plus anything added or removed
through the ``register``/``deregister`` RPCs — and answers the two
questions dispatch needs:

* *who is healthy right now?* — :meth:`probe_round` drives each agent's
  :class:`~repro.cluster.health.AgentHealth` state machine from real
  pings (:func:`repro.net.remote.ping_agent`), honoring each record's
  own probe schedule (healthy cadence, suspect quick-retry, quarantined
  backoff).  The seeded ``cluster.agent.flap`` fault site turns
  individual probe results into failures, so flap-to-quarantine runs
  replay deterministically under test.
* *where should this job go?* — :meth:`place` draws up to ``want``
  healthy agents ordered by in-flight load (then registration order),
  so concurrent jobs spread across hosts instead of piling onto the
  first entry, and charges the chosen agents one in-flight job each
  until :meth:`release`.

Thread-safety: probing runs on an executor thread while the asyncio
scheduler places and releases; every mutation holds the registry lock.
The actual network pings happen *outside* the lock — a stalled probe
must never block dispatch.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.cluster.health import (
    STATE_HEALTHY,
    AgentHealth,
    HealthPolicy,
)
from repro.faults.plan import SITE_CLUSTER_AGENT_FLAP
from repro.net.peers import format_addr, split_addr
from repro.util.logging import get_logger

logger = get_logger(__name__)

#: Default deadline for one health probe (connect + ping + pong).
DEFAULT_PROBE_TIMEOUT_S = 2.0


def _default_pinger(addr: str, timeout_s: float) -> tuple[float, dict]:
    from repro.net.remote import ping_agent

    return ping_agent(addr, timeout_s=timeout_s)


@dataclass
class AgentRecord:
    """One registered agent: health + load + last advertised stats."""

    health: AgentHealth
    #: Registration order (placement tie-breaker: deterministic spread).
    index: int
    #: Job ids currently placed on this agent.
    inflight: set = field(default_factory=set)
    #: Last pong payload (worker count, agent counters).
    info: dict = field(default_factory=dict)


class AgentRegistry:
    """Thread-safe agent pool with active health checks."""

    def __init__(
        self,
        agents: "tuple[str, ...] | list[str]" = (),
        policy: "HealthPolicy | None" = None,
        probe_timeout_s: float = DEFAULT_PROBE_TIMEOUT_S,
        injector: Any = None,
        pinger: "Callable[[str, float], tuple[float, dict]] | None" = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.policy = policy or HealthPolicy()
        self.probe_timeout_s = probe_timeout_s
        self._injector = injector
        self._pinger = pinger or _default_pinger
        self._clock = clock
        self._lock = threading.Lock()
        self._agents: dict[str, AgentRecord] = {}
        self._next_index = 0
        for addr in agents:
            self.register(addr)

    # -- membership ----------------------------------------------------------

    @staticmethod
    def canonical(addr: str) -> str:
        """The ``host:port`` form records are keyed by (typed error on
        bad syntax)."""
        return format_addr(*split_addr(addr))

    def register(self, addr: str) -> tuple[str, bool]:
        """Add one agent; returns ``(canonical_addr, created)``.

        Idempotent: re-registering a known address is a no-op rather
        than a reset — a supervisor re-announcing its agent must not
        wipe the health history.
        """
        canonical = self.canonical(addr)
        with self._lock:
            if canonical in self._agents:
                return canonical, False
            self._agents[canonical] = AgentRecord(
                health=AgentHealth(addr=canonical, policy=self.policy),
                index=self._next_index,
            )
            self._next_index += 1
        logger.debug("registry: agent %s registered", canonical)
        return canonical, True

    def deregister(self, addr: str) -> bool:
        """Remove one agent; True when it was known.

        Jobs already placed on it keep running (the runner's host-loss
        ladder owns that outcome); the agent simply takes no new work.
        """
        canonical = self.canonical(addr)
        with self._lock:
            removed = self._agents.pop(canonical, None) is not None
        if removed:
            logger.debug("registry: agent %s deregistered", canonical)
        return removed

    def __len__(self) -> int:
        with self._lock:
            return len(self._agents)

    def addrs(self) -> tuple[str, ...]:
        """Every registered address, in registration order."""
        with self._lock:
            return tuple(self._agents)

    # -- probing -------------------------------------------------------------

    @property
    def settled(self) -> bool:
        """Has every registered agent been probed at least once?

        Dispatch gates placement-hungry jobs on this so the first job
        after daemon start is placed from *measured* health, not from
        the optimistic assumption that the bootstrap list is alive.
        """
        with self._lock:
            return all(r.health.probes > 0 for r in self._agents.values())

    def probe_round(self) -> int:
        """Probe every agent whose schedule says it is due; returns the
        number probed.  Network I/O happens outside the lock."""
        now = self._clock()
        with self._lock:
            due = [
                (addr, rec) for addr, rec in self._agents.items()
                if rec.health.due(now)
            ]
        for addr, rec in due:
            forced = None
            if self._injector is not None:
                # Seeded flap: the decision is a pure function of
                # (seed, site, (addr, probe#)), so the same plan yields
                # the same failed probes wherever the threads land.
                forced = self._injector.check(
                    SITE_CLUSTER_AGENT_FLAP, scope=(addr, rec.health.probes)
                )
            if forced is not None:
                with self._lock:
                    state = rec.health.record_failure(
                        self._clock(), "injected probe failure "
                        f"({SITE_CLUSTER_AGENT_FLAP})",
                    )
                logger.debug("registry: %s injected-fail -> %s", addr, state)
                continue
            try:
                latency_s, info = self._pinger(addr, self.probe_timeout_s)
            except Exception as exc:  # noqa: BLE001 - any probe failure
                with self._lock:
                    state = rec.health.record_failure(
                        self._clock(), f"{type(exc).__name__}: {exc}"
                    )
                logger.debug("registry: %s probe failed -> %s (%s)",
                             addr, state, exc)
            else:
                with self._lock:
                    rec.health.record_success(self._clock(), latency_s)
                    if isinstance(info, dict):
                        rec.info = {
                            "workers": info.get("workers"),
                            "counters": info.get("counters") or {},
                        }
        return len(due)

    def mark_lost(self, addr: str, reason: str = "host lost mid-job") -> None:
        """Fold a runner-observed host loss into the health record."""
        try:
            canonical = self.canonical(addr)
        except Exception:  # noqa: BLE001 - counter garbage is not fatal
            return
        with self._lock:
            rec = self._agents.get(canonical)
            if rec is None:
                return
            state = rec.health.mark_lost(self._clock(), reason)
        logger.debug("registry: %s marked lost -> %s", canonical, state)

    # -- placement -----------------------------------------------------------

    def healthy(self) -> tuple[str, ...]:
        """Addresses currently accepting work, in placement order."""
        with self._lock:
            ready = [
                (len(rec.inflight), rec.index, addr)
                for addr, rec in self._agents.items()
                if rec.health.placeable
            ]
        ready.sort()
        return tuple(addr for _, _, addr in ready)

    def place(self, job_id: str, want: int) -> tuple[str, ...]:
        """Choose up to ``want`` healthy *idle* agents for one job and
        lease them to it.  Empty when none is free — the caller runs
        the job locally.

        Leases are **exclusive**: an agent already carrying a running
        job's lease is never handed to a second concurrent job.  The
        agent control protocol is single-coordinator — a second
        coordinator's hello steals the control session and the two
        jobs' worker results cross, so one job silently adopts the
        other's exchange outboxes (and its digest).  A narrower
        placement (or a local run) is always digest-identical; a
        shared agent is not.
        """
        if want < 1:
            return ()
        with self._lock:
            ready = sorted(
                (rec.index, addr)
                for addr, rec in self._agents.items()
                if rec.health.placeable and not rec.inflight
            )
            chosen = tuple(addr for _, addr in ready[:want])
            for addr in chosen:
                self._agents[addr].inflight.add(job_id)
        return chosen

    def release(self, job_id: str) -> None:
        """Drop one job's in-flight charge from every agent."""
        with self._lock:
            for rec in self._agents.values():
                rec.inflight.discard(job_id)

    def inflight_total(self) -> int:
        """Total live leases across the pool (one per agent per job)."""
        with self._lock:
            return sum(len(r.inflight) for r in self._agents.values())

    # -- reporting -----------------------------------------------------------

    def snapshot(self) -> list[dict]:
        """JSON-safe rows for the ``agents`` RPC / CLI."""
        with self._lock:
            rows = []
            for addr, rec in self._agents.items():
                h = rec.health
                rows.append({
                    "addr": addr,
                    "state": h.state,
                    "latency_ms": (
                        round(h.last_latency_s * 1000.0, 3)
                        if h.last_latency_s is not None else None
                    ),
                    "inflight": len(rec.inflight),
                    "probes": h.probes,
                    "flaps": h.flaps,
                    "last_error": h.last_error,
                    "workers": rec.info.get("workers"),
                })
            return rows

    def healthy_count(self) -> int:
        """How many agents are currently in the healthy state."""
        with self._lock:
            return sum(
                1 for r in self._agents.values()
                if r.health.state == STATE_HEALTHY
            )
