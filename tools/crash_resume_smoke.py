#!/usr/bin/env python
"""CI smoke: SIGKILL a checkpointed wordcount mid-run, resume, diff digests.

Exercises the whole crash-safety story end to end through the real CLI:

1. generate a corpus and run wordcount uninterrupted, recording the
   output digest;
2. start the same job with ``--checkpoint-dir``, poll the journal, and
   ``kill -9`` the process as soon as at least one ingest round is
   journaled;
3. run again with ``--resume`` and require the digest to match step 1.

Exits non-zero (failing the CI job) on any divergence.  If the job
finishes before the kill lands (fast runner), the input is doubled and
the round trip retried a few times before giving up as inconclusive.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
ENV = dict(os.environ, PYTHONPATH=str(REPO / "src"))

_DIGEST_RE = re.compile(r"^\s*digest:\s*([0-9a-f]{64})\s*$", re.MULTILINE)


def run_cli(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True, text=True, env=ENV, timeout=600,
    )


def digest_of(proc: subprocess.CompletedProcess) -> str:
    match = _DIGEST_RE.search(proc.stdout)
    if proc.returncode != 0 or match is None:
        sys.exit(
            f"CLI run failed (rc={proc.returncode}):\n"
            f"{proc.stdout}\n{proc.stderr}"
        )
    return match.group(1)


def kill_mid_run(corpus: Path, ckpt: Path, chunk: str) -> bool:
    """Start a checkpointed run; SIGKILL once a round is journaled."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "wordcount", str(corpus),
         "--chunk-size", chunk, "--checkpoint-dir", str(ckpt)],
        env=ENV, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    journal = ckpt / "journal.json"
    deadline = time.monotonic() + 300
    try:
        while time.monotonic() < deadline and proc.poll() is None:
            if journal.exists():
                try:
                    state = json.loads(journal.read_text())["payload"]
                except (ValueError, KeyError, OSError):
                    time.sleep(0.002)
                    continue
                if state["completed_rounds"] and state["stage"] == "mapping":
                    proc.send_signal(signal.SIGKILL)
                    proc.wait(timeout=60)
                    print(
                        f"  killed mid-run with rounds "
                        f"{state['completed_rounds']} journaled"
                    )
                    return True
            time.sleep(0.002)
        proc.wait(timeout=60)
        return False
    finally:
        if proc.poll() is None:  # pragma: no cover - defensive
            proc.kill()


def main() -> int:
    tmp = Path(tempfile.mkdtemp(prefix="crash-resume-smoke-"))
    corpus = tmp / "corpus.txt"
    size, chunk = "2MB", "64KB"
    for attempt in range(3):
        print(f"attempt {attempt + 1}: corpus={size} chunk={chunk}")
        gen = run_cli("gen", "text", str(corpus), "--size", size, "--seed", "5")
        if gen.returncode != 0:
            sys.exit(f"corpus generation failed:\n{gen.stderr}")

        reference = digest_of(run_cli(
            "wordcount", str(corpus), "--chunk-size", chunk,
        ))
        print(f"  reference digest {reference}")

        ckpt = tmp / f"ckpt-{attempt}"
        if not kill_mid_run(corpus, ckpt, chunk):
            print("  job finished before the kill; growing the input")
            size = f"{4 * (attempt + 1)}MB"
            continue

        resumed = run_cli(
            "wordcount", str(corpus), "--chunk-size", chunk,
            "--checkpoint-dir", str(ckpt), "--resume",
        )
        resumed_digest = digest_of(resumed)
        if "resume: restored" not in resumed.stdout:
            sys.exit(f"resumed run did not report a resume:\n{resumed.stdout}")
        if resumed_digest != reference:
            sys.exit(
                f"DIGEST MISMATCH after resume: "
                f"{resumed_digest} != {reference}"
            )
        print(f"  resumed digest   {resumed_digest} (identical)")
        print("crash/resume round trip OK")
        return 0
    sys.exit("could not kill the job mid-run after 3 attempts")


if __name__ == "__main__":
    sys.exit(main())
