#!/usr/bin/env python
"""CI smoke: two tenants share a bandwidth-capped daemon end to end.

Exercises the whole QoS story through the real CLI and wire protocol:

1. record one-shot *unthrottled* digests for a heavy job and an
   interactive job;
2. start the daemon with a ``--node-bandwidth`` cap and submit both
   concurrently under different tenants, each declaring an I/O demand
   that alone would saturate the node;
3. require the interactive job to finish within a bound derived from
   its fair share (it must not wait behind the heavy tenant's bytes),
   both digests to match their unthrottled one-shot runs (throttling
   delays I/O, never changes it), and per-job throttle counters to
   show the bucket actually metered the bytes;
4. after both jobs finish and the daemon shuts down, require the
   service to report zero assigned bandwidth — no leaked tokens.

Exits non-zero (failing the CI job) on any divergence.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
SRC = str(REPO / "src")
ENV = dict(os.environ)
ENV["PYTHONPATH"] = SRC + (
    os.pathsep + ENV["PYTHONPATH"] if ENV.get("PYTHONPATH") else ""
)
sys.path.insert(0, SRC)

from repro.service.client import ServiceClient  # noqa: E402
from repro.service.jobspec import ServiceJobSpec  # noqa: E402
from repro.service.state import STATE_DONE  # noqa: E402

#: Node cap and inputs sized so the heavy job is rate-bound for several
#: seconds while the interactive job's bytes fit in a fraction of that.
NODE_BW = "1MB"
HEAVY_SIZE = "4MB"
INTERACTIVE_SIZE = "128KB"
#: The interactive job at half the node (its max-min share) moves its
#: bytes in ~0.25s; allow generous slack for process startup and CI.
INTERACTIVE_BOUND_S = 30.0


def run_cli(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True, text=True, env=ENV, timeout=600,
    )


def one_shot_digest(*args: str) -> str:
    proc = run_cli(*args, "--json")
    if proc.returncode != 0:
        sys.exit(
            f"one-shot run failed (rc={proc.returncode}):\n"
            f"{proc.stdout}\n{proc.stderr}"
        )
    return json.loads(proc.stdout)["digest"]


def start_daemon(state_dir: Path) -> subprocess.Popen:
    state_dir.mkdir(parents=True, exist_ok=True)
    log = open(state_dir / "daemon.log", "ab")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--state-dir", str(state_dir), "--max-jobs", "2",
         "--node-bandwidth", NODE_BW, "--qos-policy", "max-min"],
        env=ENV, stdout=log, stderr=subprocess.STDOUT,
    )
    log.close()
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if (state_dir / "endpoint.json").exists():
            return proc
        if proc.poll() is not None:
            sys.exit("daemon exited before advertising its endpoint; see "
                     + str(state_dir / "daemon.log"))
        time.sleep(0.02)
    proc.kill()
    sys.exit("daemon did not come up within 30s")


def main() -> int:
    tmp = Path(tempfile.mkdtemp(prefix="qos-smoke-"))
    heavy_input = tmp / "heavy.txt"
    interactive_input = tmp / "interactive.txt"
    run_cli("gen", "text", str(heavy_input), "--size", HEAVY_SIZE,
            "--seed", "41")
    run_cli("gen", "text", str(interactive_input), "--size",
            INTERACTIVE_SIZE, "--seed", "42")

    print("qos smoke: recording unthrottled one-shot digests")
    expected = {
        "heavy": one_shot_digest(
            "wordcount", str(heavy_input), "--chunk-size", "64KB"),
        "interactive": one_shot_digest(
            "wordcount", str(interactive_input), "--chunk-size", "64KB"),
    }

    heavy_spec = ServiceJobSpec(
        app="wordcount", inputs=(str(heavy_input),), chunk_size="64KB",
        tenant="heavy", io_budget=NODE_BW,
    )
    interactive_spec = ServiceJobSpec(
        app="wordcount", inputs=(str(interactive_input),),
        chunk_size="64KB", tenant="interactive", io_budget="512KB",
    )

    state_dir = tmp / "svc"
    daemon = start_daemon(state_dir)
    client = ServiceClient.from_state_dir(state_dir)

    print(f"qos smoke: node capped at {NODE_BW}/s; submitting "
          f"heavy ({HEAVY_SIZE}) + interactive ({INTERACTIVE_SIZE}) "
          "concurrently")
    client.submit(heavy_spec)
    submitted = time.monotonic()
    client.submit(interactive_spec)

    failures: list[str] = []
    interactive_rec = client.wait(
        interactive_spec.job_id(), timeout_s=300)
    interactive_elapsed = time.monotonic() - submitted
    heavy_rec = client.wait(heavy_spec.job_id(), timeout_s=600)

    if interactive_elapsed > INTERACTIVE_BOUND_S:
        failures.append(
            f"interactive job took {interactive_elapsed:.1f}s — it waited "
            f"behind the heavy tenant (bound {INTERACTIVE_BOUND_S:.0f}s)"
        )
    else:
        print(f"  interactive finished in {interactive_elapsed:.1f}s "
              f"(bound {INTERACTIVE_BOUND_S:.0f}s)")

    for label, rec in (("heavy", heavy_rec), ("interactive", interactive_rec)):
        if rec.state != STATE_DONE:
            failures.append(f"{label} job: {rec.state} ({rec.error})")
            continue
        if rec.digest != expected[label]:
            failures.append(
                f"{label} job: throttled digest {rec.digest} != "
                f"unthrottled one-shot {expected[label]}"
            )
        else:
            print(f"  {label}: digest matches the unthrottled run")
        report = client.result(rec.job_id).get("report") or {}
        counters = report.get("counters") or {}
        if not counters.get("throttle_bytes"):
            failures.append(
                f"{label} job: no throttle_bytes counter — the token "
                "bucket never metered its I/O"
            )
        else:
            print(f"  {label}: metered {counters['throttle_bytes']} bytes "
                  f"at {counters.get('io_budget_bps')} B/s, "
                  f"waited {counters.get('throttle_wait_s', 0.0):.2f}s")

    status = client.status()
    leaked = status.get("io_assigned_bps", 0)
    if leaked:
        failures.append(
            f"daemon still reports {leaked} B/s assigned after both jobs "
            "finished — leaked tokens"
        )
    else:
        print("  zero bandwidth assigned after completion (no leaks)")
    shed = (status.get("counters") or {}).get("shed", 0)
    if shed:
        failures.append(f"daemon shed {shed} job(s); none should shed here")

    client.shutdown()
    daemon.wait(timeout=30)

    if failures:
        sys.exit("qos smoke FAILED:\n  " + "\n  ".join(failures))
    print("qos smoke PASSED: capped node shared across tenants; "
          "interactive latency bounded; digests unchanged; no leaks")
    return 0


if __name__ == "__main__":
    sys.exit(main())
