#!/usr/bin/env python
"""CI smoke: kill -9 the job daemon mid-job; restart; diff every digest.

Exercises the whole service crash-safety story end to end through the
real CLI and wire protocol:

1. record one-shot digests for three jobs — a plain chunked wordcount,
   a ``--shards 2`` run, and a fault-injected run;
2. start the daemon, submit all three, and ``kill -9`` the daemon as
   soon as the big job has journaled at least one ingest round;
3. restart the daemon over the same state dir (recovery reaps the
   orphaned runner and re-queues interrupted jobs), wait for all three
   jobs, and require every digest to match its one-shot run — with the
   interrupted job *resuming* from its journal rather than restarting.

Exits non-zero (failing the CI job) on any divergence.  If the big job
finishes before the kill lands (fast runner), the input is doubled and
the round trip retried a few times before giving up as inconclusive.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
SRC = str(REPO / "src")
ENV = dict(os.environ)
ENV["PYTHONPATH"] = SRC + (
    os.pathsep + ENV["PYTHONPATH"] if ENV.get("PYTHONPATH") else ""
)
sys.path.insert(0, SRC)

from repro.service.client import ServiceClient  # noqa: E402
from repro.service.jobspec import ServiceJobSpec  # noqa: E402
from repro.service.state import STATE_DONE, ServiceState  # noqa: E402


def run_cli(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True, text=True, env=ENV, timeout=600,
    )


def one_shot_digest(*args: str) -> str:
    proc = run_cli(*args, "--json")
    if proc.returncode != 0:
        sys.exit(
            f"one-shot run failed (rc={proc.returncode}):\n"
            f"{proc.stdout}\n{proc.stderr}"
        )
    return json.loads(proc.stdout)["digest"]


def start_daemon(state_dir: Path) -> subprocess.Popen:
    state_dir.mkdir(parents=True, exist_ok=True)
    log = open(state_dir / "daemon.log", "ab")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--state-dir", str(state_dir), "--max-jobs", "2"],
        env=ENV, stdout=log, stderr=subprocess.STDOUT,
    )
    log.close()
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if (state_dir / "endpoint.json").exists():
            return proc
        if proc.poll() is not None:
            sys.exit("daemon exited before advertising its endpoint; see "
                     + str(state_dir / "daemon.log"))
        time.sleep(0.02)
    proc.kill()
    sys.exit("daemon did not come up within 30s")


def await_first_round(journal: Path, timeout_s: float) -> bool:
    """True once the journal holds >= 1 completed round (still mapping)."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if journal.exists():
            try:
                state = json.loads(journal.read_text())["payload"]
            except (ValueError, KeyError):
                time.sleep(0.002)
                continue
            if state["completed_rounds"] and state["stage"] == "mapping":
                return True
            if state["stage"] != "mapping":
                return False  # job already past the kill window
        time.sleep(0.002)
    return False


def one_round_trip(tmp: Path, attempt: int, big_size: str) -> "bool | None":
    """One kill/restart cycle; True = pass, None = inconclusive."""
    small = tmp / "small.txt"
    if not small.exists():
        run_cli("gen", "text", str(small), "--size", "256KB")
    big = tmp / f"big-{attempt}.txt"
    run_cli("gen", "text", str(big), "--size", big_size, "--seed",
            str(40 + attempt))

    plain_spec = ServiceJobSpec(
        app="wordcount", inputs=(str(big),), chunk_size="64KB",
    )
    shard_spec = ServiceJobSpec(
        app="wordcount", inputs=(str(small),), chunk_size="32KB", shards=2,
    )
    fault_spec = ServiceJobSpec(
        app="wordcount", inputs=(str(small),), chunk_size="32KB",
        faults="ingest.read=once",
    )
    expected = {
        plain_spec.job_id(): one_shot_digest(
            "wordcount", str(big), "--chunk-size", "64KB"),
        shard_spec.job_id(): one_shot_digest(
            "wordcount", str(small), "--chunk-size", "32KB", "--shards", "2"),
        fault_spec.job_id(): one_shot_digest(
            "wordcount", str(small), "--chunk-size", "32KB",
            "--faults", "ingest.read=once"),
    }

    state_dir = tmp / f"svc-{attempt}"
    daemon = start_daemon(state_dir)
    client = ServiceClient.from_state_dir(state_dir)
    specs = {spec.job_id(): spec
             for spec in (plain_spec, shard_spec, fault_spec)}
    for spec in (plain_spec, shard_spec, fault_spec):
        client.submit(spec)

    state = ServiceState(state_dir)
    journal = state.checkpoint_dir(plain_spec.job_id()) / "journal.json"
    caught = await_first_round(journal, timeout_s=60.0)
    daemon.kill()  # SIGKILL: no drain, no requeue, records say "running"
    daemon.wait()
    record = state.load_record(plain_spec.job_id())
    if not caught or record is None or record.finished:
        print(f"  attempt {attempt}: big job finished before the kill "
              "landed; growing the input")
        return None

    # kill -9 leaves the old endpoint.json behind; drop it so start_daemon
    # waits for the *new* daemon's advertisement, not the stale one.
    (state_dir / "endpoint.json").unlink(missing_ok=True)
    daemon = start_daemon(state_dir)  # recovery requeues + reaps orphans
    client = ServiceClient.from_state_dir(state_dir)
    for spec in specs.values():
        reply = client.submit(spec)  # idempotent: reattaches
        if not reply.get("reattached"):
            sys.exit(f"resubmission of {reply['job_id']} did not reattach")
    failures = []
    for job_id, spec in specs.items():
        rec = client.wait(job_id, timeout_s=300)
        label = ("plain" if spec is plain_spec
                 else "sharded" if spec is shard_spec else "faulted")
        if rec.state != STATE_DONE:
            failures.append(f"{label} job {job_id}: {rec.state} ({rec.error})")
        elif rec.digest != expected[job_id]:
            failures.append(
                f"{label} job {job_id}: digest {rec.digest} != one-shot "
                f"{expected[job_id]}"
            )
        else:
            mark = " (resumed)" if rec.resumed else ""
            print(f"  {label}: digest match{mark}")
        if spec is plain_spec and rec.state == STATE_DONE and not rec.resumed:
            failures.append(
                f"plain job {job_id} re-ran from scratch instead of "
                "resuming its journal"
            )
    client.shutdown()
    daemon.wait(timeout=30)
    if failures:
        sys.exit("service smoke FAILED:\n  " + "\n  ".join(failures))
    return True


def main() -> int:
    tmp = Path(tempfile.mkdtemp(prefix="service-smoke-"))
    sizes = ("3MB", "6MB", "12MB")
    for attempt, size in enumerate(sizes):
        print(f"service smoke: attempt {attempt} (big input {size})")
        if one_round_trip(tmp, attempt, size):
            print("service smoke PASSED: daemon killed -9 mid-job; "
                  "restart resumed from the journal; all digests match")
            return 0
    sys.exit("service smoke inconclusive: the big job kept finishing "
             "before the kill landed")


if __name__ == "__main__":
    sys.exit(main())
