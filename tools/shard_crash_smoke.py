#!/usr/bin/env python
"""CI smoke: SIGKILL one shard worker mid-job, require identical digests.

Exercises the sharded coordinator's organic failover end to end through
the real CLI:

1. generate a corpus and run ``--shards 1`` uninterrupted, recording the
   output digest (the unsharded-equivalent reference);
2. start the same job with ``--shards 3 --shard-dir``, poll the
   published ``worker-<sid>.pid`` files, and ``kill -9`` one shard
   worker as soon as its pid appears;
3. require the run to finish successfully anyway (the coordinator
   respawns the dead shard, or reassigns its partitions if the kill
   lands in the reduce phase) with a digest byte-identical to step 1.

Exits non-zero (failing the CI job) on any divergence.  If the job
finishes before the kill lands (fast runner), the input is grown and
the round trip retried a few times before giving up as inconclusive.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
ENV = dict(os.environ, PYTHONPATH=str(REPO / "src"))

_DIGEST_RE = re.compile(r"^\s*digest:\s*([0-9a-f]{64})\s*$", re.MULTILINE)

SHARDS = 3
VICTIM = 1  # which shard's worker gets the SIGKILL


def run_cli(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True, text=True, env=ENV, timeout=600,
    )


def digest_of(proc: subprocess.CompletedProcess) -> str:
    match = _DIGEST_RE.search(proc.stdout)
    if proc.returncode != 0 or match is None:
        sys.exit(
            f"CLI run failed (rc={proc.returncode}):\n"
            f"{proc.stdout}\n{proc.stderr}"
        )
    return match.group(1)


def kill_one_shard_worker(corpus: Path, shard_dir: Path, chunk: str) -> "tuple[str, bool]":
    """Run the sharded job, SIGKILL shard VICTIM's worker; return (stdout, killed)."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "wordcount", str(corpus),
         "--chunk-size", chunk, "--shards", str(SHARDS),
         "--shard-dir", str(shard_dir), "--top", "0"],
        env=ENV, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    pid_file = shard_dir / f"worker-{VICTIM}.pid"
    killed = False
    deadline = time.monotonic() + 300
    while time.monotonic() < deadline and proc.poll() is None:
        if not killed and pid_file.exists():
            try:
                pid = int(pid_file.read_text().strip())
            except (ValueError, OSError):
                time.sleep(0.002)
                continue
            try:
                os.kill(pid, signal.SIGKILL)
            except ProcessLookupError:
                # The worker finished between publish and kill; the
                # caller grows the input and retries.
                break
            killed = True
            print(f"  SIGKILLed shard {VICTIM} worker (pid {pid})")
        time.sleep(0.002)
    stdout, stderr = proc.communicate(timeout=600)
    if proc.returncode != 0:
        sys.exit(
            f"sharded run failed after the kill (rc={proc.returncode}):\n"
            f"{stdout}\n{stderr}"
        )
    return stdout, killed


def main() -> int:
    tmp = Path(tempfile.mkdtemp(prefix="shard-crash-smoke-"))
    corpus = tmp / "corpus.txt"
    size, chunk = "2MB", "64KB"
    for attempt in range(3):
        print(f"attempt {attempt + 1}: corpus={size} chunk={chunk}")
        gen = run_cli("gen", "text", str(corpus), "--size", size, "--seed", "5")
        if gen.returncode != 0:
            sys.exit(f"corpus generation failed:\n{gen.stderr}")

        reference = digest_of(run_cli(
            "wordcount", str(corpus), "--chunk-size", chunk,
            "--shards", "1", "--top", "0",
        ))
        print(f"  reference digest {reference} (--shards 1)")

        shard_dir = tmp / f"shards-{attempt}"
        stdout, killed = kill_one_shard_worker(corpus, shard_dir, chunk)
        if not killed:
            print("  job finished before the kill; growing the input")
            size = f"{4 * (attempt + 1)}MB"
            continue

        match = _DIGEST_RE.search(stdout)
        if match is None:
            sys.exit(f"no digest in the sharded run's output:\n{stdout}")
        sharded_digest = match.group(1)
        if sharded_digest != reference:
            sys.exit(
                f"DIGEST MISMATCH after shard kill: "
                f"{sharded_digest} != {reference}"
            )
        print(f"  sharded digest   {sharded_digest} (identical)")
        print("shard-kill failover round trip OK")
        return 0
    sys.exit("could not kill a shard worker mid-run after 3 attempts")


if __name__ == "__main__":
    sys.exit(main())
