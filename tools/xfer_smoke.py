#!/usr/bin/env python
"""CI smoke: shm and pipe transports agree on faulted and sharded jobs.

Drives the real CLI end to end across the PR8 transport matrix:

1. generate a corpus and run a supervised process-backend wordcount
   with seeded worker kills (``worker.crash=once`` — hangs are left to
   the test suite: the CLI's 30s default lease would dominate a smoke)
   under the pipe transport with fork-per-wave pools — the PR-3-shaped
   baseline — recording its output digest;
2. rerun the identical job under the shared-memory transport with the
   persistent pre-forked pool (and once more with prefetch readers) and
   require byte-identical digests;
3. run the job sharded (``--shards 2``) with a seeded shard loss under
   both transports and require the same digest again;
4. after every run, require that no ``rxf*`` shared-memory segment is
   left behind in ``/dev/shm`` — the no-leak guarantee, including the
   crash paths the fault plan just exercised.

Exits non-zero (failing the CI job) on any divergence or leak.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
ENV = dict(os.environ, PYTHONPATH=str(REPO / "src"))

_DIGEST_RE = re.compile(r"^\s*digest:\s*([0-9a-f]{64})\s*$", re.MULTILINE)

FAULTS = "worker.crash=once"
SHARD_FAULTS = "shard.worker_loss=once"


def run_cli(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True, text=True, env=ENV, timeout=600,
    )


def digest_of(proc: subprocess.CompletedProcess, label: str) -> str:
    match = _DIGEST_RE.search(proc.stdout)
    if proc.returncode != 0 or match is None:
        sys.exit(
            f"{label} failed (rc={proc.returncode}):\n"
            f"{proc.stdout}\n{proc.stderr}"
        )
    return match.group(1)


def shm_segments() -> set[str]:
    try:
        return {e for e in os.listdir("/dev/shm") if e.startswith("rxf")}
    except OSError:
        return set()


def main() -> int:
    before = shm_segments()
    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="xfer_smoke_") as tmp:
        corpus = Path(tmp) / "corpus.txt"
        gen = run_cli("gen", "text", str(corpus), "--size", "256KB",
                      "--seed", "5")
        if gen.returncode != 0:
            sys.exit(f"corpus generation failed:\n{gen.stdout}\n{gen.stderr}")

        base = ("wordcount", str(corpus), "--chunk-size", "16KB",
                "--backend", "process", "--mappers", "4", "--reducers", "3")

        def faulted(label: str, *extra: str) -> str:
            proc = run_cli(*base, "--faults", FAULTS, "--fault-seed", "7",
                           *extra)
            digest = digest_of(proc, label)
            leaked = shm_segments() - before
            if leaked:
                failures.append(f"{label}: leaked segments {sorted(leaked)}")
            print(f"{label:28s} digest {digest[:12]}")
            return digest

        reference = faulted("faulted pipe/fork-per-wave",
                            "--transport", "pipe", "--no-persistent-pool")
        for label, extra in (
            ("faulted shm/persistent-pool", ("--transport", "shm")),
            ("faulted shm/pool/prefetch",
             ("--transport", "shm", "--ingest-readers", "2")),
        ):
            if faulted(label, *extra) != reference:
                failures.append(f"{label}: digest diverged from pipe baseline")

        def sharded(label: str, transport: str) -> str:
            proc = run_cli(*base, "--shards", "2",
                           "--faults", SHARD_FAULTS, "--fault-seed", "3",
                           "--transport", transport)
            digest = digest_of(proc, label)
            leaked = shm_segments() - before
            if leaked:
                failures.append(f"{label}: leaked segments {sorted(leaked)}")
            print(f"{label:28s} digest {digest[:12]}")
            return digest

        shard_pipe = sharded("sharded+lost pipe", "pipe")
        shard_shm = sharded("sharded+lost shm", "shm")
        if shard_pipe != shard_shm:
            failures.append("sharded job: shm digest diverged from pipe")
        if shard_pipe != reference:
            failures.append(
                "sharded job digest diverged from the unsharded reference"
            )

    if failures:
        print("\nXFER SMOKE FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("xfer smoke passed: all digests identical, /dev/shm clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
