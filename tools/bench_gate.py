#!/usr/bin/env python
"""Benchmark gate: time the execution backends and fail on regression.

Runs the reference jobs (wordcount, terasort, histogram) through the
SupMR runtime under each requested backend, records best-of-N wall
times plus a sha256 over every job's output pairs, and writes the
results to ``BENCH_pr3.json``.

The gate fails (non-zero exit) when:

* any backend's output digest diverges from the serial reference
  (backends must change *speed*, never *answers*);
* a baseline file is given and any (job, backend) time regressed more
  than ``--threshold`` beyond its baseline — only enforced when the
  baseline was recorded on a box with the same CPU count, since wall
  times from different core counts are not comparable;
* the box has >= 2 CPUs and the process backend fails to beat the
  thread backend by ``--min-speedup`` on wordcount (the CPU-bound
  workload the process backend exists for).  On a single-core box the
  speedup check is *skipped and recorded as skipped* — fork overhead
  with no parallelism to pay for it is expected to lose there.

``--qos`` switches to the QoS overhead gate (``BENCH_pr7.json``): it
interleaves unthrottled wordcount runs (``io_budget`` unset — the
token-bucket code must bypass entirely) with runs under an effectively
unlimited budget (bucket engaged, never waiting), and fails when either
costs more than ``--qos-overhead`` (default 3%) over the plain run.
The throttle is allowed to *delay* I/O only when a budget binds; the
plumbing itself must be free.

Usage::

    PYTHONPATH=src python tools/bench_gate.py --quick
    PYTHONPATH=src python tools/bench_gate.py --baseline BENCH_pr3.json
    PYTHONPATH=src python tools/bench_gate.py --update   # refresh baseline
    PYTHONPATH=src python tools/bench_gate.py --quick --qos --out BENCH_pr7.json
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import random
import statistics
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.apps.histogram import make_histogram_job  # noqa: E402
from repro.apps.sortapp import make_sort_job  # noqa: E402
from repro.apps.wordcount import make_wordcount_job  # noqa: E402
from repro.core.options import RuntimeOptions  # noqa: E402
from repro.core.supmr import SupMRRuntime  # noqa: E402
from repro.parallel.backends import fork_available  # noqa: E402
from repro.workloads.teragen import generate_terasort_file  # noqa: E402

WORDS = (
    "map reduce merge sort chunk spill bandwidth disk memory pipeline "
    "ingest combine shard scale worker split record budget fault retry"
).split()


def make_corpus(root: Path, scale: int, seed: int = 1234) -> dict:
    """Write the seeded input files; returns paths keyed by job name."""
    rng = random.Random(seed)
    text = root / "corpus.txt"
    with open(text, "wb") as f:
        for _ in range(2000 * scale):
            line = " ".join(rng.choice(WORDS) for _ in range(12))
            f.write(line.encode() + b"\n")
    tera = root / "tera.txt"
    generate_terasort_file(tera, 3000 * scale, seed=seed)
    numbers = root / "numbers.txt"
    with open(numbers, "wb") as f:
        for _ in range(5000 * scale):
            f.write(b"%d\n" % rng.randrange(0, 256))
    return {"wordcount": text, "sort": tera, "histogram": numbers}


def make_job(name: str, paths: dict):
    """Build the named reference job over the generated corpus."""
    if name == "wordcount":
        return make_wordcount_job([paths["wordcount"]])
    if name == "sort":
        return make_sort_job([paths["sort"]])
    if name == "histogram":
        return make_histogram_job(
            [paths["histogram"]], lo=0, hi=256, n_buckets=64
        )
    raise ValueError(name)


def digest_output(output) -> str:
    """sha256 over the job's output pairs, order-sensitive."""
    h = hashlib.sha256()
    for key, value in output:
        h.update(repr(key).encode())
        h.update(b"\x00")
        h.update(repr(value).encode())
        h.update(b"\x01")
    return h.hexdigest()


def run_once(job_name: str, backend: str, paths: dict) -> tuple[float, str]:
    """One timed run; returns (seconds, output digest)."""
    options = RuntimeOptions.supmr_interfile(
        "256KB", num_mappers=4, num_reducers=4
    ).with_(executor_backend=backend)
    job = make_job(job_name, paths)
    start = time.perf_counter()
    result = SupMRRuntime(options).run(job)
    elapsed = time.perf_counter() - start
    return elapsed, digest_output(result.output)


def run_qos_once(job_name: str, paths: dict, io_budget) -> tuple[float, str]:
    """One timed run with or without an I/O budget (serial backend)."""
    options = RuntimeOptions.supmr_interfile(
        "256KB", num_mappers=4, num_reducers=4
    )
    if io_budget is not None:
        options = options.with_(io_budget=io_budget)
    job = make_job(job_name, paths)
    start = time.perf_counter()
    result = SupMRRuntime(options).run(job)
    elapsed = time.perf_counter() - start
    return elapsed, digest_output(result.output)


#: The PR8 transport matrix: (transport, persistent_pool, ingest_readers).
TRANSPORT_ARMS = {
    "pipe-fork": ("pipe", False, 1),      # PR-3-shaped baseline
    "shm-pool": ("shm", True, 1),         # zero-copy + pre-forked pool
    "shm-pool-prefetch": ("shm", True, 2),  # + multi-queue ingest
}


def run_transport_once(job_name: str, paths: dict, arm: str) -> tuple[float, str]:
    """One timed process-backend run under one transport-matrix arm."""
    transport, persistent, readers = TRANSPORT_ARMS[arm]
    options = RuntimeOptions.supmr_interfile(
        "256KB", num_mappers=4, num_reducers=4
    ).with_(
        executor_backend="process",
        transport=transport,
        persistent_pool=persistent,
        ingest_readers=readers,
    )
    job = make_job(job_name, paths)
    start = time.perf_counter()
    result = SupMRRuntime(options).run(job)
    elapsed = time.perf_counter() - start
    return elapsed, digest_output(result.output)


def transport_gate(args) -> int:
    """The PR8 gate: the shm transport + persistent pool must not lose.

    Interleaves process-backend runs across the transport matrix
    (pipe + fork-per-wave baseline vs shared-memory + pre-forked pool,
    with and without prefetch readers) and fails when any arm's output
    digest diverges.  The speedup leg (``shm-pool`` beating
    ``pipe-fork`` by ``--min-xfer-speedup`` on wordcount) is enforced
    only on a multi-core box whose same-arm noise floor can resolve it;
    a single-core box records the ratio and skips, same idiom as the
    PR3 speedup gate.
    """
    if not fork_available():
        print("transport gate skipped: os.fork unavailable")
        return 0
    from repro.xfer import shm_available

    scale = 4 if args.quick else 8
    repeats = 3 if args.quick else 5
    cpus = os.cpu_count() or 1
    arms = list(TRANSPORT_ARMS)
    if not shm_available():
        print("transport gate: no usable /dev/shm; shm arms resolve to pipe")
    failures: list[str] = []
    results: dict = {
        "bench": "pr8-transport-gate",
        "cpu_count": cpus,
        "shm_available": shm_available(),
        "quick": args.quick,
        "repeats": repeats,
        "scale": scale,
        "arms": {arm: dict(zip(("transport", "persistent_pool",
                                "ingest_readers"), TRANSPORT_ARMS[arm]))
                 for arm in arms},
        "jobs": {},
    }
    with tempfile.TemporaryDirectory(prefix="bench_gate_") as tmp:
        paths = make_corpus(Path(tmp), scale)
        for job_name in ("wordcount", "sort"):
            times: dict[str, list[float]] = {arm: [] for arm in arms}
            digests: dict[str, str] = {}
            for rep in range(repeats):
                order = list(arms)
                if rep % 2:
                    order.reverse()
                for arm in order:
                    elapsed, digest = run_transport_once(job_name, paths, arm)
                    times[arm].append(elapsed)
                    digests[arm] = digest
            best = {arm: min(ts) for arm, ts in times.items()}
            noise = max(
                statistics.median(ts) / min(ts) - 1.0
                for ts in times.values()
            )
            results["jobs"][job_name] = {
                arm: {"best_s": round(best[arm], 4),
                      "all_s": [round(t, 4) for t in times[arm]],
                      "sha256": digests[arm]}
                for arm in arms
            }
            results["jobs"][job_name]["noise"] = round(noise, 4)
            for arm in arms:
                print(f"{job_name:10s} {arm:18s} best {best[arm]:7.3f}s  "
                      f"sha {digests[arm][:12]}")
            reference = digests["pipe-fork"]
            for arm, digest in digests.items():
                if digest != reference:
                    failures.append(
                        f"{job_name}: {arm} output diverged "
                        f"(sha {digest[:12]} != {reference[:12]})"
                    )
    # Speedup leg: why the zero-copy transport and pre-forked pool exist.
    wc = results["jobs"]["wordcount"]
    ratio = wc["pipe-fork"]["best_s"] / max(wc["shm-pool"]["best_s"], 1e-9)
    noise = wc["noise"]
    speedup_row: dict = {
        "min_required": args.min_xfer_speedup,
        "wordcount_shm_pool_vs_pipe_fork": round(ratio, 3),
    }
    if cpus < 2:
        speedup_row["enforced"] = False
        speedup_row["skip_reason"] = f"single-core box (cpu_count={cpus})"
        print(f"transport speedup gate skipped: cpu_count={cpus} < 2 "
              f"(measured {ratio:.2f}x)")
    elif noise > max(args.min_xfer_speedup - 1.0, 0.0):
        speedup_row["enforced"] = False
        speedup_row["skip_reason"] = (
            f"noise floor {noise:.1%} cannot resolve the gate"
        )
        print(f"transport speedup gate skipped: same-arm repeats differ "
              f"by {noise:.1%} (measured {ratio:.2f}x)")
    else:
        speedup_row["enforced"] = True
        if ratio < args.min_xfer_speedup:
            failures.append(
                f"shm-pool only {ratio:.2f}x vs pipe-fork on wordcount "
                f"(need {args.min_xfer_speedup}x on {cpus} cpus)"
            )
        print(f"transport speedup gate: shm-pool {ratio:.2f}x pipe-fork "
              f"(need {args.min_xfer_speedup}x)")
    results["speedup"] = speedup_row
    results["failures"] = failures
    if not failures or args.update:
        Path(args.out).write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {args.out}")
    if failures:
        print("\nBENCH GATE FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("transport gate passed")
    return 0


def qos_gate(args) -> int:
    """The PR7 gate: the throttle plumbing must cost < ``--qos-overhead``.

    ``plain`` runs with ``io_budget`` unset (fast-path bypass — no
    bucket object exists); ``metered`` runs under a budget far above the
    box's disk bandwidth (the bucket charges every byte but never
    sleeps).  Repeats are interleaved so drift (thermal, page cache)
    hits both arms equally; best-of-N discards scheduler noise.
    """
    # a 3% gate needs runs long enough that scheduler noise sits well
    # under it, so quick mode still uses a 6x corpus and best-of-5
    scale = 6 if args.quick else 12
    repeats = 5 if args.quick else 7
    cpus = os.cpu_count() or 1
    failures: list[str] = []
    results: dict = {
        "bench": "pr7-qos-overhead-gate",
        "cpu_count": cpus,
        "quick": args.quick,
        "repeats": repeats,
        "scale": scale,
        "max_overhead": args.qos_overhead,
        "jobs": {},
    }
    arms = {"plain": None, "metered": "64GB"}
    with tempfile.TemporaryDirectory(prefix="bench_gate_") as tmp:
        paths = make_corpus(Path(tmp), scale)
        for job_name in ("wordcount", "sort"):
            times: dict[str, list[float]] = {arm: [] for arm in arms}
            digests: dict[str, str] = {}
            for rep in range(repeats):
                # alternate the arm order so slow drift (thermal, page
                # cache) penalises both arms equally, not always the
                # second one
                order = list(arms.items())
                if rep % 2:
                    order.reverse()
                for arm, budget in order:
                    elapsed, digest = run_qos_once(job_name, paths, budget)
                    times[arm].append(elapsed)
                    digests[arm] = digest
            best = {arm: min(ts) for arm, ts in times.items()}
            overhead = best["metered"] / max(best["plain"], 1e-9) - 1.0
            # the box's own noise floor: how much same-arm repeats
            # disagree.  A wall-clock gate cannot resolve a 3% effect
            # on a box whose identical runs differ by more than that —
            # skip-and-record there (same idiom as the single-core
            # speedup skip), enforce everywhere else.
            noise = max(
                statistics.median(ts) / min(ts) - 1.0
                for ts in times.values()
            )
            enforced = noise <= args.qos_overhead
            results["jobs"][job_name] = {
                arm: {"best_s": round(best[arm], 4),
                      "all_s": [round(t, 4) for t in times[arm]],
                      "sha256": digests[arm]}
                for arm in arms
            }
            results["jobs"][job_name]["overhead"] = round(overhead, 4)
            results["jobs"][job_name]["noise"] = round(noise, 4)
            results["jobs"][job_name]["enforced"] = enforced
            print(f"{job_name:10s} plain {best['plain']:7.3f}s  "
                  f"metered {best['metered']:7.3f}s  "
                  f"overhead {overhead:+.1%}  (noise {noise:.1%})")
            if digests["plain"] != digests["metered"]:
                failures.append(
                    f"{job_name}: metered output diverged "
                    f"(sha {digests['metered'][:12]} != "
                    f"{digests['plain'][:12]})"
                )
            if not enforced:
                results["jobs"][job_name]["skip_reason"] = (
                    f"noise floor {noise:.1%} exceeds the "
                    f"{args.qos_overhead:.0%} gate"
                )
                print(f"  overhead gate skipped for {job_name}: same-arm "
                      f"repeats differ by {noise:.1%}")
            elif overhead > args.qos_overhead:
                failures.append(
                    f"{job_name}: throttle plumbing costs {overhead:+.1%} "
                    f"(max {args.qos_overhead:.0%}, noise {noise:.1%})"
                )
    results["failures"] = failures
    if not failures or args.update:
        Path(args.out).write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {args.out}")
    if failures:
        print("\nBENCH GATE FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("qos overhead gate passed")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller corpus, 2 repeats (CI smoke)")
    parser.add_argument("--backends", default="serial,thread,process",
                        help="comma-separated backends to time")
    parser.add_argument("--out", default="BENCH_pr3.json",
                        help="where to write results")
    parser.add_argument("--baseline", default=None,
                        help="prior BENCH_pr3.json to compare against")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed fractional slowdown vs baseline")
    parser.add_argument("--min-speedup", type=float, default=1.5,
                        help="required process/thread speedup on multicore")
    parser.add_argument("--update", action="store_true",
                        help="rewrite --out even if the gate fails")
    parser.add_argument("--qos", action="store_true",
                        help="run the PR7 QoS overhead gate instead")
    parser.add_argument("--qos-overhead", type=float, default=0.03,
                        help="max fractional cost of the throttle plumbing")
    parser.add_argument("--transport", action="store_true",
                        help="run the PR8 transport/pool gate instead")
    parser.add_argument("--min-xfer-speedup", type=float, default=1.05,
                        help="required shm-pool/pipe-fork speedup on "
                             "multicore (transport gate)")
    args = parser.parse_args(argv)

    if args.qos:
        if args.out == "BENCH_pr3.json":
            args.out = "BENCH_pr7.json"
        return qos_gate(args)
    if args.transport:
        if args.out == "BENCH_pr3.json":
            args.out = "BENCH_pr8.json"
        return transport_gate(args)

    backends = [b.strip() for b in args.backends.split(",") if b.strip()]
    if "process" in backends and not fork_available():
        print("bench_gate: os.fork unavailable; dropping process backend")
        backends = [b for b in backends if b != "process"]

    scale = 1 if args.quick else 4
    repeats = 2 if args.quick else 3
    cpus = os.cpu_count() or 1
    failures: list[str] = []
    results: dict = {
        "bench": "pr3-backend-gate",
        "cpu_count": cpus,
        "quick": args.quick,
        "repeats": repeats,
        "scale": scale,
        "jobs": {},
    }

    with tempfile.TemporaryDirectory(prefix="bench_gate_") as tmp:
        paths = make_corpus(Path(tmp), scale)
        for job_name in ("wordcount", "sort", "histogram"):
            row: dict = {}
            digests: dict[str, str] = {}
            for backend in backends:
                times = []
                for _ in range(repeats):
                    elapsed, digest = run_once(job_name, backend, paths)
                    times.append(elapsed)
                digests[backend] = digest
                row[backend] = {"best_s": round(min(times), 4),
                                "all_s": [round(t, 4) for t in times],
                                "sha256": digest}
                print(f"{job_name:10s} {backend:8s} best "
                      f"{min(times):7.3f}s  sha {digest[:12]}")
            reference = digests.get("serial") or next(iter(digests.values()))
            for backend, digest in digests.items():
                if digest != reference:
                    failures.append(
                        f"{job_name}: {backend} output diverged "
                        f"(sha {digest[:12]} != {reference[:12]})"
                    )
            results["jobs"][job_name] = row

    # Multicore speedup gate: the reason the process backend exists.
    speedup_row: dict = {"min_required": args.min_speedup}
    if "process" in backends and "thread" in backends:
        wc = results["jobs"]["wordcount"]
        ratio = wc["thread"]["best_s"] / max(wc["process"]["best_s"], 1e-9)
        speedup_row["wordcount_process_vs_thread"] = round(ratio, 3)
        if cpus < 2:
            # Documented skip: with one core, forked workers run serially
            # and only pay the fork + pickle overhead.  The gate records
            # the ratio for the curious but does not enforce it.
            speedup_row["enforced"] = False
            speedup_row["skip_reason"] = f"single-core box (cpu_count={cpus})"
            print(f"speedup gate skipped: cpu_count={cpus} < 2 "
                  f"(measured {ratio:.2f}x)")
        else:
            speedup_row["enforced"] = True
            if ratio < args.min_speedup:
                failures.append(
                    f"process backend only {ratio:.2f}x vs thread on "
                    f"wordcount (need {args.min_speedup}x on {cpus} cpus)"
                )
            print(f"speedup gate: process {ratio:.2f}x thread "
                  f"(need {args.min_speedup}x)")
    results["speedup"] = speedup_row

    # Regression gate vs a recorded baseline from the same class of box.
    if args.baseline and Path(args.baseline).exists():
        baseline = json.loads(Path(args.baseline).read_text())
        if baseline.get("cpu_count") != cpus:
            print(f"baseline skipped: recorded on cpu_count="
                  f"{baseline.get('cpu_count')}, this box has {cpus}")
        elif baseline.get("quick") != args.quick:
            print("baseline skipped: quick/full mode mismatch")
        else:
            for job_name, row in results["jobs"].items():
                base_row = baseline.get("jobs", {}).get(job_name, {})
                for backend, cell in row.items():
                    base = base_row.get(backend, {}).get("best_s")
                    if not base:
                        continue
                    slowdown = cell["best_s"] / base - 1.0
                    if slowdown > args.threshold:
                        failures.append(
                            f"{job_name}/{backend}: {cell['best_s']:.3f}s is "
                            f"{slowdown:+.0%} vs baseline {base:.3f}s "
                            f"(threshold {args.threshold:.0%})"
                        )

    results["failures"] = failures
    if not failures or args.update:
        Path(args.out).write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {args.out}")
    if failures:
        print("\nBENCH GATE FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("bench gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
