#!/usr/bin/env python
"""CI smoke: multi-host shard runs survive agent loss and severed wires.

Drives the real CLI end to end across the PR9 network layer:

1. generate a ~6 MB corpus and record the digest of a plain local
   ``--shards 3`` wordcount — the ground truth every networked run
   must reproduce byte for byte;
2. start two real ``supmr agent`` daemons on localhost and run the
   same job with ``--peers``: the workers fork on the agents, the
   reduce fetches cross the framed TCP transport, and the digest must
   match;
3. rerun with a seeded ``net.conn.drop=once`` plan so control frames
   and a mid-exchange transfer are severed — the resend/resume
   machinery must absorb it with the same digest;
4. rerun and ``SIGKILL`` one agent ~1 s into the map phase — the
   coordinator must move the dead host's shards home in-run (exit 0,
   same digest, ``net_host_losses`` counted);
5. after every run, require that no agent, worker, or coordinator
   process survives and no shared-memory segment is left in
   ``/dev/shm`` — the no-orphan guarantee, including the SIGKILL path.

Exits non-zero (failing the CI job) on any divergence, orphan, or leak.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
ENV = dict(os.environ, PYTHONPATH=str(REPO / "src"))

_DIGEST_RE = re.compile(r"^\s*digest:\s*([0-9a-f]{64})\s*$", re.MULTILINE)


def run_cli(*args: str, timeout: int = 600) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True, text=True, env=ENV, timeout=timeout,
    )


def digest_of(proc: subprocess.CompletedProcess, label: str) -> str:
    match = _DIGEST_RE.search(proc.stdout)
    if proc.returncode != 0 or match is None:
        sys.exit(
            f"{label} failed (rc={proc.returncode}):\n"
            f"{proc.stdout}\n{proc.stderr}"
        )
    return match.group(1)


def shm_segments() -> set[str]:
    try:
        return set(os.listdir("/dev/shm"))
    except OSError:
        return set()


def stray_processes() -> list[str]:
    """Command lines of any leftover agent/worker/coordinator process."""
    strays: list[str] = []
    for pid_dir in Path("/proc").iterdir():
        if not pid_dir.name.isdigit() or int(pid_dir.name) == os.getpid():
            continue
        try:
            cmdline = (pid_dir / "cmdline").read_bytes().replace(
                b"\0", b" "
            ).decode(errors="replace")
        except OSError:
            continue
        if "repro.cli" in cmdline and "net_smoke" not in cmdline:
            strays.append(f"pid {pid_dir.name}: {cmdline.strip()}")
    return strays


class Agent:
    """One real ``supmr agent`` subprocess on an ephemeral port."""

    def __init__(self, tmp: Path, name: str) -> None:
        self.addr_file = tmp / f"{name}.addr"
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "agent",
             "--listen", "127.0.0.1:0",
             "--workdir", str(tmp / name),
             "--addr-file", str(self.addr_file),
             "--grace", "3.0"],
            env=ENV, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        deadline = time.monotonic() + 15.0
        while not self.addr_file.exists():
            if time.monotonic() > deadline:
                sys.exit(f"agent {name} never published its address")
            time.sleep(0.05)
        self.addr = self.addr_file.read_text().strip()

    def sigkill(self) -> None:
        self.proc.kill()
        self.proc.wait(timeout=10)

    def stop(self) -> None:
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
            try:
                self.proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(timeout=5)


def main() -> int:
    before = shm_segments()
    pre_existing = set(stray_processes())
    failures: list[str] = []

    def check_clean(label: str) -> None:
        # Workers watch their parent and agents reap on grace expiry;
        # give the slowest path a moment before calling anything a leak.
        # Only processes this smoke could have created count — whatever
        # was already running on the machine is not our orphan.
        deadline = time.monotonic() + 10.0
        strays = set(stray_processes()) - pre_existing
        leaked = shm_segments() - before
        while (strays or leaked) and time.monotonic() < deadline:
            time.sleep(0.25)
            strays = set(stray_processes()) - pre_existing
            leaked = shm_segments() - before
        for stray in sorted(strays):
            failures.append(f"{label}: orphan process ({stray})")
        if leaked:
            failures.append(f"{label}: leaked /dev/shm entries {sorted(leaked)}")

    with tempfile.TemporaryDirectory(prefix="net_smoke_") as tmp_s:
        tmp = Path(tmp_s)
        corpus = tmp / "corpus.txt"
        gen = run_cli("gen", "text", str(corpus), "--size", "6MB",
                      "--seed", "5")
        if gen.returncode != 0:
            sys.exit(f"corpus generation failed:\n{gen.stdout}\n{gen.stderr}")

        base = ("wordcount", str(corpus), "--chunk-size", "256KB",
                "--shards", "3", "--mappers", "2", "--reducers", "3")

        reference = digest_of(run_cli(*base), "local sharded run")
        print(f"{'local sharded':24s} digest {reference[:12]}")
        check_clean("local sharded")

        def networked(label: str, agents: "list[Agent]", *extra: str,
                      kill_after_s: "float | None" = None) -> dict:
            peers = ",".join(a.addr for a in agents)
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro.cli", *base,
                 "--peers", peers, "--net-timeout", "2", "--json", *extra],
                env=ENV, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                text=True,
            )
            if kill_after_s is not None:
                time.sleep(kill_after_s)
                agents[0].sigkill()
            try:
                out, err = proc.communicate(timeout=600)
            except subprocess.TimeoutExpired:
                proc.kill()
                sys.exit(f"{label}: coordinator hung")
            if proc.returncode != 0:
                sys.exit(f"{label} failed (rc={proc.returncode}):\n"
                         f"{out}\n{err}")
            report = json.loads(out)
            digest = report.get("digest", "")
            if digest != reference:
                failures.append(f"{label}: digest diverged from local run")
            print(f"{label:24s} digest {digest[:12]}  "
                  f"host_losses={report['counters'].get('net_host_losses')}")
            return report

        # 2: plain multi-host parity.
        agents = [Agent(tmp, "a1"), Agent(tmp, "a2")]
        try:
            networked("multi-host", agents)
        finally:
            for a in agents:
                a.stop()
        check_clean("multi-host")

        # 3: severed control frames and a dropped mid-exchange transfer.
        agents = [Agent(tmp, "b1"), Agent(tmp, "b2")]
        try:
            networked("conn-drop", agents,
                      "--faults", "net.conn.drop=once", "--fault-seed", "7")
        finally:
            for a in agents:
                a.stop()
        check_clean("conn-drop")

        # 4: SIGKILL one agent mid-map; the ladder moves its shards home.
        agents = [Agent(tmp, "c1"), Agent(tmp, "c2")]
        try:
            report = networked("agent-sigkill", agents, kill_after_s=1.0)
            if not report["counters"].get("net_host_losses"):
                print("  note: agent died before any shard landed on it "
                      "(timing); digest parity still enforced")
        finally:
            for a in agents:
                a.stop()
        check_clean("agent-sigkill")

    if failures:
        print("\nNET SMOKE FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("net smoke passed: all digests identical, no orphans, "
          "/dev/shm clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
