#!/usr/bin/env python
"""Chaos soak: the self-healing agent pool under kill, partition, flap.

Drives the whole ``repro.cluster`` story end to end through the real
CLI, wire protocol, and subprocess agents:

1. record one-shot digests for a batch of ``--shards 2`` wordcounts —
   the ground truth every clustered run must reproduce byte for byte;
2. start three ``supmr agent`` daemons and a job daemon registered to
   all three (``serve --agents``), with a node bandwidth so every job
   also charges the per-host QoS allocator;
3. submit the batch, then run the chaos script:
   - SIGKILL one agent mid-job (host loss absorbed by the ladder),
   - SIGKILL the daemon itself, restart it over the same state dir
     (recovery requeues onto the survivors),
   - register a replacement agent / deregister the corpse over the
     wire,
   - partition a second agent with SIGSTOP until the health loop
     demotes it, then SIGCONT and require it to be re-admitted,
   - flap a third agent (SIGSTOP/SIGCONT cycles) until the registry
     quarantines it;
4. require every job to reach DONE with its one-shot digest, then
   check the no-leak invariants: zero in-flight placement charges,
   zero assigned bandwidth shares, no orphan process, /dev/shm clean.

Exits non-zero (failing the CI job) on any divergence, orphan, or
leak.  ``--quick`` shrinks the corpus and skips the quarantine
recovery wait so the whole soak fits in ~60 s for CI.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
SRC = str(REPO / "src")
ENV = dict(os.environ)
ENV["PYTHONPATH"] = SRC + (
    os.pathsep + ENV["PYTHONPATH"] if ENV.get("PYTHONPATH") else ""
)
sys.path.insert(0, SRC)

from repro.service.client import ServiceClient  # noqa: E402
from repro.service.jobspec import ServiceJobSpec  # noqa: E402
from repro.service.state import STATE_DONE  # noqa: E402

FAILURES: list[str] = []


def fail(msg: str) -> None:
    print(f"  FAIL: {msg}")
    FAILURES.append(msg)


def run_cli(*args: str, timeout: int = 600) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True, text=True, env=ENV, timeout=timeout,
    )


def one_shot_digest(*args: str) -> str:
    proc = run_cli(*args, "--json")
    if proc.returncode != 0:
        sys.exit(f"one-shot run failed (rc={proc.returncode}):\n"
                 f"{proc.stdout}\n{proc.stderr}")
    return json.loads(proc.stdout)["digest"]


def shm_segments() -> set[str]:
    try:
        return set(os.listdir("/dev/shm"))
    except OSError:
        return set()


def stray_processes() -> list[str]:
    strays: list[str] = []
    for pid_dir in Path("/proc").iterdir():
        if not pid_dir.name.isdigit() or int(pid_dir.name) == os.getpid():
            continue
        try:
            cmdline = (pid_dir / "cmdline").read_bytes().replace(
                b"\0", b" "
            ).decode(errors="replace")
        except OSError:
            continue
        if ("repro.cli" in cmdline or "repro.service.runner" in cmdline) \
                and "cluster_soak" not in cmdline:
            strays.append(f"pid {pid_dir.name}: {cmdline.strip()}")
    return strays


class Agent:
    """One real ``supmr agent`` subprocess on an ephemeral port."""

    def __init__(self, tmp: Path, name: str) -> None:
        self.name = name
        self.addr_file = tmp / f"{name}.addr"
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "agent",
             "--listen", "127.0.0.1:0",
             "--workdir", str(tmp / name),
             "--addr-file", str(self.addr_file),
             "--grace", "2.0"],
            env=ENV, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        deadline = time.monotonic() + 15.0
        while not self.addr_file.exists():
            if time.monotonic() > deadline:
                sys.exit(f"agent {name} never published its address")
            time.sleep(0.05)
        self.addr = self.addr_file.read_text().strip()

    def sigkill(self) -> None:
        self.proc.kill()
        self.proc.wait(timeout=10)

    def pause(self) -> None:
        self.proc.send_signal(signal.SIGSTOP)

    def resume(self) -> None:
        self.proc.send_signal(signal.SIGCONT)

    def stop(self) -> None:
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGCONT)  # in case it is paused
            self.proc.send_signal(signal.SIGTERM)
            try:
                self.proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(timeout=5)


def start_daemon(state_dir: Path, agents: str) -> subprocess.Popen:
    state_dir.mkdir(parents=True, exist_ok=True)
    log = open(state_dir / "daemon.log", "ab")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--state-dir", str(state_dir), "--max-jobs", "2",
         "--max-attempts", "4", "--node-bandwidth", "400MB",
         "--net-timeout", "2",
         "--agents", agents,
         "--health-interval", "0.3", "--probe-timeout", "1.0"],
        env=ENV, stdout=log, stderr=subprocess.STDOUT,
    )
    log.close()
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if (state_dir / "endpoint.json").exists():
            return proc
        if proc.poll() is not None:
            sys.exit("daemon exited before advertising its endpoint; see "
                     + str(state_dir / "daemon.log"))
        time.sleep(0.02)
    proc.kill()
    sys.exit("daemon did not come up within 30s")


def agent_states(client: ServiceClient) -> dict[str, str]:
    return {row["addr"]: row["state"]
            for row in client.agents().get("agents", [])}


def await_state(client: ServiceClient, addr: str, wanted: tuple[str, ...],
                timeout_s: float, label: str) -> str | None:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        state = agent_states(client).get(addr)
        if state in wanted:
            return state
        time.sleep(0.05)
    fail(f"{label}: agent {addr} never reached {wanted} "
         f"(last: {agent_states(client).get(addr)})")
    return None


def flap_to_quarantine(client: ServiceClient, agent: Agent,
                       timeout_s: float) -> bool:
    """SIGSTOP/SIGCONT cycles until the registry quarantines the agent.

    Returns with the agent still *paused*: once the tally trips, any
    answered probe starts the recovery clock (``recover_after``
    successes wipe the flap history), so the quarantine is only
    reliably observable while the agent stays silent.
    """
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        agent.pause()
        pause_until = time.monotonic() + 1.6
        while time.monotonic() < pause_until:
            if agent_states(client).get(agent.addr) == "quarantined":
                return True
            time.sleep(0.05)
        agent.resume()
        time.sleep(0.7)  # long enough to be probed alive again
    fail(f"flapping agent {agent.addr} never quarantined "
         f"(last: {agent_states(client).get(agent.addr)})")
    return False


def agents_cli(state_dir: Path, *extra: str) -> str:
    out = run_cli("agents", "--state-dir", str(state_dir), *extra,
                  timeout=60)
    if out.returncode != 0:
        fail(f"`agents {' '.join(extra)}` CLI exited {out.returncode}: "
             f"{out.stderr.strip()}")
    return out.stdout


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="~60s variant for CI: smaller corpus, no "
                             "quarantine-recovery wait")
    opts = parser.parse_args()

    jobs = 2 if opts.quick else 3
    size = "2MB" if opts.quick else "6MB"

    shm_before = shm_segments()
    pre_existing = set(stray_processes())

    def check_clean(label: str) -> None:
        deadline = time.monotonic() + 15.0
        strays = set(stray_processes()) - pre_existing
        leaked = shm_segments() - shm_before
        while (strays or leaked) and time.monotonic() < deadline:
            time.sleep(0.25)
            strays = set(stray_processes()) - pre_existing
            leaked = shm_segments() - shm_before
        for stray in sorted(strays):
            fail(f"{label}: orphan process ({stray})")
        if leaked:
            fail(f"{label}: leaked /dev/shm entries {sorted(leaked)}")

    with tempfile.TemporaryDirectory(prefix="cluster_soak_") as tmp_s:
        tmp = Path(tmp_s)

        # 1: ground truth.
        specs: dict[str, ServiceJobSpec] = {}
        expected: dict[str, str] = {}
        for i in range(jobs):
            corpus = tmp / f"corpus-{i}.txt"
            gen = run_cli("gen", "text", str(corpus), "--size", size,
                          "--seed", str(20 + i))
            if gen.returncode != 0:
                sys.exit(f"corpus generation failed:\n{gen.stderr}")
            spec = ServiceJobSpec(
                app="wordcount", inputs=(str(corpus),), chunk_size="128KB",
                shards=2, io_budget="100MB",
            )
            specs[spec.job_id()] = spec
            expected[spec.job_id()] = one_shot_digest(
                "wordcount", str(corpus), "--chunk-size", "128KB",
                "--shards", "2")
        print(f"ground truth: {jobs} one-shot digest(s) recorded")

        # 2: three agents, one daemon registered to all of them.
        pool = [Agent(tmp, f"a{i}") for i in range(3)]
        spare: Agent | None = None
        addrs = ",".join(a.addr for a in pool)
        state_dir = tmp / "svc"
        daemon = start_daemon(state_dir, addrs)
        try:
            client = ServiceClient.from_state_dir(state_dir)
            for agent in pool:
                await_state(client, agent.addr, ("healthy",), 20.0, "warmup")
            listing = agents_cli(state_dir)
            if "agent pool: 3 agent(s), settled" not in listing:
                fail(f"`agents` CLI did not show a settled pool:\n{listing}")
            print("pool: 3 agents registered, probed healthy")

            # 3: submit, then chaos.
            for spec in specs.values():
                client.submit(spec)
            time.sleep(1.2)
            pool[0].sigkill()
            print(f"chaos: SIGKILLed agent {pool[0].addr} mid-job")
            time.sleep(1.0)
            pool[1].pause()
            print(f"chaos: partitioned agent {pool[1].addr} (SIGSTOP)")
            time.sleep(0.8)

            daemon.kill()  # no drain: records still say "running"
            daemon.wait(timeout=30)
            # SIGKILL skipped the drain, so the dead daemon's endpoint
            # advertisement survives on disk; clear it or the restart
            # wait below would race against the stale port.
            (state_dir / "endpoint.json").unlink(missing_ok=True)
            daemon = start_daemon(state_dir, addrs)
            client = ServiceClient.from_state_dir(state_dir)
            print("chaos: SIGKILLed the daemon, restarted over the same "
                  "state dir")

            # replacement agent in, corpse out — over the wire.
            spare = Agent(tmp, "spare")
            if not client.register_agent(spare.addr).get("created"):
                fail("registering the replacement agent did not create it")
            if not client.deregister_agent(pool[0].addr).get("removed"):
                fail("deregistering the killed agent did not remove it")
            await_state(client, spare.addr, ("healthy",), 20.0, "replacement")
            print(f"pool: replacement {spare.addr} registered and healthy, "
                  f"corpse deregistered")

            # the partitioned agent must be demoted, then re-admitted.
            demoted = await_state(client, pool[1].addr,
                                  ("suspect", "quarantined"), 20.0,
                                  "partition")
            pool[1].resume()
            if demoted:
                print(f"partition: {pool[1].addr} demoted to {demoted}")
            await_state(client, pool[1].addr, ("healthy",), 30.0,
                        "partition heal")
            print(f"partition: {pool[1].addr} re-admitted after SIGCONT")

            # 4: every job converges to its one-shot digest.
            for job_id, spec in specs.items():
                record = client.wait(job_id, timeout_s=420)
                if record.state != STATE_DONE:
                    fail(f"job {job_id}: {record.state} ({record.error})")
                elif record.digest != expected[job_id]:
                    fail(f"job {job_id}: digest {record.digest} != one-shot "
                         f"{expected[job_id]}")
                else:
                    print(f"job {job_id[:12]}: digest match "
                          f"(attempts={record.attempts})")

            # 5: flap the third agent into quarantine.
            if flap_to_quarantine(client, pool[2], timeout_s=60.0):
                print(f"flap: {pool[2].addr} quarantined")
            listing = agents_cli(state_dir)
            if "quarantined" not in listing:
                fail(f"`agents` CLI does not show the quarantine:\n{listing}")
            if not opts.quick:
                # quarantine is not a death sentence: sustained health
                # (through the jittered re-probe backoff) re-admits.
                pool[2].resume()
                await_state(client, pool[2].addr, ("healthy",), 90.0,
                            "quarantine recovery")
                print(f"flap: {pool[2].addr} recovered to healthy")

            # 6: no-leak invariants.
            ping = client.ping()
            if ping.get("io_assigned_bps", 0) != 0:
                fail(f"leaked bandwidth shares: io_assigned_bps="
                     f"{ping['io_assigned_bps']}")
            for row in client.agents().get("agents", []):
                if row["inflight"] != 0:
                    fail(f"agent {row['addr']} still charged with "
                         f"{row['inflight']} in-flight job(s)")
            counters = ping.get("counters", {})
            print("counters: placed={placed} stale_dispatches="
                  "{stale_dispatches} hosts_lost={hosts_lost}".format(
                      **{k: counters.get(k, 0) for k in
                         ("placed", "stale_dispatches", "hosts_lost")}))
            client.shutdown()
            daemon.wait(timeout=30)
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait(timeout=10)
            for agent in pool:
                agent.stop()
            if spare is not None:
                spare.stop()
        check_clean("soak")

    if FAILURES:
        print(f"\nCLUSTER SOAK FAILED ({len(FAILURES)} issue(s)):")
        for failure in FAILURES:
            print(f"  - {failure}")
        return 1
    print("cluster soak passed: every job terminal with its one-shot "
          "digest, demotions and recoveries observed, no orphans, "
          "no leaked shares")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
